"""Static strategy validation: is the chosen translator well-behaved?

Runs at view-definition time, after the dialog answers are collected
and before any update executes — the determinacy-style analysis that
Franconi & Guagliardo and BIRDS perform for relational view updates,
transposed to the paper's projection tree + policy answers.

Every check is grounded in an actual rejection or hazard of the
VO-CI / VO-CD / VO-R algorithms:

* **CRITICAL** — an enabled operation class or repair rule can *never*
  succeed: a NULLIFY repair over non-nullable or key connecting
  attributes (``_repair_incoming_references`` would emit an illegal
  replace), or an island relation whose projected-out attributes the
  default completer can never fill (every complete insertion dies in
  ``null_completer``).
* **HIGH** — contradictory or side-effecting answers: view-level key
  replacement allowed while database key replacement is prohibited
  (every key change passes validation then rejects in CASE R-3),
  merge-on-key-conflict on a relation whose tuples are shared through
  incoming references (the merge silently rewrites other instances),
  or a circuit among the object's relations (translation paths are
  not uniquely determined).
* **MEDIUM** — sound but partial: PROHIBIT repairs, outside-island
  relations that may not be modified or extended, skeleton inserts
  the policy forbids. These reject only on some databases.
* **LOW** — ambiguity resolved by a documented default: AUTO repairs,
  unreachable switch combinations, fully read-only translators.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.core.dependency_island import IslandAnalysis, NodeRole, analyze_island
from repro.core.updates.policy import (
    ReferenceRepair,
    RelationPolicy,
    TranslatorPolicy,
    null_completer,
)
from repro.core.view_object import ViewObjectDefinition
from repro.strategy.risk import Finding, RiskLevel, RiskReport
from repro.structural.connections import Connection, ConnectionKind

__all__ = ["check_strategy"]


def check_strategy(
    view_object: ViewObjectDefinition,
    policy: Optional[TranslatorPolicy] = None,
    analysis: Optional[IslandAnalysis] = None,
) -> RiskReport:
    """Classify one (view object, policy) configuration.

    Pure and deterministic: reads only the projection tree, the
    structural schema, and the policy switches — never the data — so
    the same answers always produce a byte-identical report.
    """
    policy = policy or TranslatorPolicy.permissive()
    analysis = analysis or analyze_island(view_object)
    checker = _Checker(view_object, policy, analysis)
    return RiskReport(view_object.name, checker.run())


class _Checker:
    def __init__(
        self,
        view_object: ViewObjectDefinition,
        policy: TranslatorPolicy,
        analysis: IslandAnalysis,
    ) -> None:
        self.view_object = view_object
        self.policy = policy
        self.analysis = analysis
        self.graph = view_object.graph
        self.findings: List[Finding] = []
        self.tree_relations = set(view_object.relations())
        self.island_relations = set(analysis.island_relations)

    def run(self) -> List[Finding]:
        any_write = (
            self.policy.allow_insertion
            or self.policy.allow_deletion
            or self.policy.allow_replacement
        )
        if not any_write:
            self.add(
                RiskLevel.LOW,
                "gates.read-only",
                "no operation class is allowed; the translator is "
                "effectively read-only",
            )
            return self.findings
        if self.policy.allow_insertion:
            self.check_insertions()
        if self.policy.allow_deletion:
            self.check_deletions()
        if self.policy.allow_replacement:
            self.check_replacements()
        self.check_structure()
        return self.findings

    def relation_policy(self, relation: str) -> RelationPolicy:
        """Non-mutating lookup: ``TranslatorPolicy.for_relation`` inserts
        a default entry as a side effect, which would change the policy
        answers recorded in the audit log; the checker must stay pure."""
        existing = self.policy.relations.get(relation)
        return existing if existing is not None else RelationPolicy()

    def add(
        self,
        level: RiskLevel,
        code: str,
        message: str,
        relation: Optional[str] = None,
        connection: Optional[str] = None,
    ) -> None:
        self.findings.append(
            Finding(level, code, message, relation=relation, connection=connection)
        )

    # -- insertions (VO-CI) ----------------------------------------------------

    def check_insertions(self) -> None:
        default_completer = self.policy.completer is null_completer
        for node in self.view_object.tree.bfs():
            role = self.analysis.role(node.node_id)
            relation = node.relation
            if role is NodeRole.ISLAND:
                if default_completer:
                    missing = self.uncompletable_attributes(node.node_id)
                    if missing:
                        is_pivot = node.node_id == self.view_object.pivot_node_id
                        level = (
                            RiskLevel.CRITICAL if is_pivot else RiskLevel.HIGH
                        )
                        detail = (
                            "every complete insertion must insert the pivot "
                            "tuple"
                            if is_pivot
                            else "insertions with components here always "
                            "reject"
                        )
                        self.add(
                            level,
                            "insertion.completer-dead-end",
                            f"projected-out attribute(s) "
                            f"{', '.join(sorted(missing))} of island relation "
                            f"{relation!r} are not nullable and the default "
                            f"completer only supplies nulls; {detail}",
                            relation=relation,
                        )
                continue
            # Outside the island VO-CI consults the dialog switches:
            # CASE 2 needs can_modify+can_insert, CASE 3 needs
            # can_modify+can_replace_existing.
            relation_policy = self.relation_policy(relation)
            if not (relation_policy.can_modify and relation_policy.can_insert):
                self.add(
                    RiskLevel.MEDIUM,
                    "insertion.outside-no-insert",
                    f"insertions reject whenever the referenced "
                    f"{relation!r} tuple does not already exist "
                    f"(CASE 2 outside the island needs modify+insert)",
                    relation=relation,
                )
            if not (
                relation_policy.can_modify
                and relation_policy.can_replace_existing
            ):
                self.add(
                    RiskLevel.LOW,
                    "insertion.outside-no-replace",
                    f"insertions reject when an existing {relation!r} tuple "
                    f"conflicts with the inserted component (CASE 3 outside "
                    f"the island needs modify+replace)",
                    relation=relation,
                )
        self.check_skeleton_support(default_completer)

    def check_skeleton_support(self, default_completer: bool) -> None:
        """Relations outside the object that insertions may need to
        extend with skeleton tuples (``_ensure_dependencies``)."""
        support: Set[str] = set()
        for relation in sorted(self.tree_relations):
            for kind in (ConnectionKind.OWNERSHIP, ConnectionKind.SUBSET):
                for connection in self.graph.connections_to(relation, kind):
                    support.add(connection.source)
            for connection in self.graph.connections_from(
                relation, ConnectionKind.REFERENCE
            ):
                support.add(connection.target)
        for relation in sorted(support - self.tree_relations):
            relation_policy = self.relation_policy(relation)
            if not (relation_policy.can_modify and relation_policy.can_insert):
                self.add(
                    RiskLevel.MEDIUM,
                    "insertion.skeleton-prohibited",
                    f"insertions reject whenever a skeleton tuple is needed "
                    f"in {relation!r} but the policy forbids inserting there",
                    relation=relation,
                )
            elif default_completer and self.skeleton_uncompletable(relation):
                self.add(
                    RiskLevel.MEDIUM,
                    "insertion.skeleton-uncompletable",
                    f"skeleton tuples for {relation!r} need non-nullable "
                    f"attributes the default completer cannot supply; "
                    f"insertions reject whenever the dependency is missing",
                    relation=relation,
                )

    def uncompletable_attributes(self, node_id: str) -> Set[str]:
        """Non-nullable attributes of a tree node's relation that neither
        the projection nor any connection can supply."""
        node = self.view_object.node(node_id)
        schema = self.graph.relation(node.relation)
        selected = set(self.view_object.projection(node_id).attributes)
        connected = self.connected_attributes(node.relation)
        return {
            attribute.name
            for attribute in schema.attributes
            if not attribute.nullable
            and attribute.name not in selected
            and attribute.name not in connected
        }

    def skeleton_uncompletable(self, relation: str) -> bool:
        schema = self.graph.relation(relation)
        connected = self.connected_attributes(relation)
        return any(
            not attribute.nullable and attribute.name not in connected
            for attribute in schema.attributes
        )

    def connected_attributes(self, relation: str) -> Set[str]:
        """Attributes of ``relation`` that some connection fills or
        rewrites (ownership keys, reference FKs, subset keys)."""
        attrs: Set[str] = set()
        for connection in self.graph.connections:
            if connection.source == relation:
                attrs.update(connection.source_attributes)
            if connection.target == relation:
                attrs.update(connection.target_attributes)
        return attrs

    # -- deletions (VO-CD + global integrity) ----------------------------------

    def check_deletions(self) -> None:
        deletable = self.deletable_closure()
        seen: Set[str] = set()
        for relation in sorted(deletable):
            for connection in self.graph.connections_to(
                relation, ConnectionKind.REFERENCE
            ):
                if connection.name in seen:
                    continue
                seen.add(connection.name)
                self.check_repair(connection)

    def deletable_closure(self) -> Set[str]:
        """Relations a complete deletion can reach: the island, its
        owned/subset cascade, and every relation whose repair is DELETE."""
        deletable = set(self.island_relations)
        frontier = list(deletable)
        while frontier:
            relation = frontier.pop()
            for kind in (ConnectionKind.OWNERSHIP, ConnectionKind.SUBSET):
                for connection in self.graph.connections_from(relation, kind):
                    if connection.target not in deletable:
                        deletable.add(connection.target)
                        frontier.append(connection.target)
            for connection in self.graph.connections_to(
                relation, ConnectionKind.REFERENCE
            ):
                repair, _ = self.resolve_repair(connection)
                if (
                    repair is ReferenceRepair.DELETE
                    and connection.source not in deletable
                ):
                    deletable.add(connection.source)
                    frontier.append(connection.source)
        return deletable

    def resolve_repair(self, connection: Connection):
        """(resolved repair, nullify possible) for one reference."""
        relation_policy = self.relation_policy(connection.source)
        schema = self.graph.relation(connection.source)
        nullable = all(
            schema.attribute(a).nullable and not schema.is_key_attribute(a)
            for a in connection.source_attributes
        )
        repair = relation_policy.on_reference_delete
        if repair is ReferenceRepair.AUTO:
            repair = (
                ReferenceRepair.NULLIFY if nullable else ReferenceRepair.DELETE
            )
        return repair, nullable

    def check_repair(self, connection: Connection) -> None:
        relation_policy = self.relation_policy(connection.source)
        chosen = relation_policy.on_reference_delete
        resolved, nullable = self.resolve_repair(connection)
        if chosen is ReferenceRepair.AUTO:
            self.add(
                RiskLevel.LOW,
                "deletion.auto-repair",
                f"repair of {connection.source!r} tuples referencing a "
                f"deleted {connection.target!r} tuple is left to AUTO; "
                f"it resolves to {resolved.value.upper()} here",
                relation=connection.source,
                connection=connection.name,
            )
        if resolved is ReferenceRepair.PROHIBIT:
            self.add(
                RiskLevel.MEDIUM,
                "deletion.repair-prohibit",
                f"deletions reject whenever a {connection.source!r} tuple "
                f"still references the deleted {connection.target!r} tuple",
                relation=connection.source,
                connection=connection.name,
            )
        if resolved is ReferenceRepair.NULLIFY and not nullable:
            self.add(
                RiskLevel.CRITICAL,
                "deletion.nullify-impossible",
                f"the NULLIFY repair for {connection.source!r} -> "
                f"{connection.target!r} can never be applied: the "
                f"connecting attribute(s) "
                f"{', '.join(connection.source_attributes)} are not "
                f"nullable nonkey attributes, so every deletion with live "
                f"references dies on an illegal null",
                relation=connection.source,
                connection=connection.name,
            )

    # -- replacements (VO-R) ---------------------------------------------------

    def check_replacements(self) -> None:
        for relation in sorted(self.island_relations):
            relation_policy = self.relation_policy(relation)
            incoming = self.graph.connections_to(
                relation, ConnectionKind.REFERENCE
            )
            if (
                relation_policy.allow_key_replacement
                and not relation_policy.allow_db_key_replacement
            ):
                self.add(
                    RiskLevel.HIGH,
                    "replacement.key-never-translatable",
                    f"the view accepts key modifications of island relation "
                    f"{relation!r} but database key replacement is "
                    f"prohibited; every such replacement passes validation "
                    f"then rejects in CASE R-3",
                    relation=relation,
                )
            if (
                relation_policy.allow_key_replacement
                and relation_policy.allow_db_key_replacement
                and relation_policy.allow_merge_on_key_conflict
            ):
                shared = bool(incoming) or any(
                    True
                    for kind in (ConnectionKind.OWNERSHIP, ConnectionKind.SUBSET)
                    for _ in self.graph.connections_from(relation, kind)
                )
                self.add(
                    RiskLevel.HIGH if shared else RiskLevel.MEDIUM,
                    "replacement.merge-side-effects",
                    f"merge-on-key-conflict on {relation!r} overwrites an "
                    f"existing tuple"
                    + (
                        " and retargets tuples shared through its "
                        "connections — side effects beyond the updated "
                        "instance"
                        if shared
                        else "; the overwritten tuple's old state is lost"
                    ),
                    relation=relation,
                )
            if (
                not relation_policy.allow_key_replacement
                and relation_policy.allow_merge_on_key_conflict
            ):
                self.add(
                    RiskLevel.LOW,
                    "replacement.unreachable-merge",
                    f"merge-on-key-conflict is enabled for {relation!r} but "
                    f"key replacement is not; the switch can never fire",
                    relation=relation,
                )
            if (
                relation_policy.allow_key_replacement
                and relation_policy.allow_db_key_replacement
            ):
                for connection in incoming:
                    source_policy = self.relation_policy(connection.source)
                    if not source_policy.can_modify:
                        self.add(
                            RiskLevel.MEDIUM,
                            "replacement.retarget-prohibited",
                            f"key replacements of {relation!r} reject "
                            f"whenever {connection.source!r} tuples "
                            f"reference the old key (retargeting needs "
                            f"modify permission there)",
                            relation=connection.source,
                            connection=connection.name,
                        )

    # -- structure -------------------------------------------------------------

    def check_structure(self) -> None:
        relevant = set(self.tree_relations)
        for relation in self.island_relations:
            for connection in self.graph.connections_to(
                relation, ConnectionKind.REFERENCE
            ):
                relevant.add(connection.source)
        if self.graph.undirected_cycles_exist_within(relevant):
            self.add(
                RiskLevel.HIGH,
                "structure.circuit",
                "the object's relations form a circuit; translation paths "
                "around it are not uniquely determined and repairs may "
                "interact — manual review required",
            )
