"""Strategy validation: static checks + round-trip law harness.

The Section 6 dialog fixes the translator at view-definition time;
this package verifies — before any update executes — that the chosen
answers yield a well-behaved translator. ``check_strategy`` is the
static half (a :class:`~repro.strategy.risk.RiskReport` over the
projection tree + policy answers); :mod:`repro.strategy.laws` is the
dynamic half (PutGet/GetPut-style laws executed against seeded
databases); :mod:`repro.strategy.validate` drives both from the
``python -m repro validate`` CLI.
"""

from repro.strategy.checks import check_strategy
from repro.strategy.risk import Finding, RiskLevel, RiskReport, StrategyWarning

__all__ = [
    "check_strategy",
    "Finding",
    "RiskLevel",
    "RiskReport",
    "StrategyWarning",
]
