"""Drive both halves of strategy validation and compare their verdicts.

The contract between the halves is one-directional: the static checker
may over-approximate (flag hazards the data never exercises), but every
configuration the law harness *falsifies* must carry a finding of
RiskLevel.HIGH or worse. ``validate_case`` runs both halves over one
case + policy and records whether that contract held; ``sweep`` ranges
it over the seeded chain-case corpus, which is what the CI smoke job
and ``python -m repro validate --sweep N`` execute.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.updates.policy import TranslatorPolicy
from repro.strategy.checks import check_strategy
from repro.strategy.laws import (
    StrategyCase,
    chain_case,
    random_policy,
    run_laws,
    workload_case,
)
from repro.strategy.risk import RiskLevel

__all__ = ["validate_case", "validate_workload", "sweep", "render_result"]

WORKLOADS = ("hospital", "university", "cad")


def validate_case(
    case: StrategyCase, policy: Optional[TranslatorPolicy] = None
) -> Dict[str, Any]:
    """Static report + law report + the agreement verdict for one case."""
    _, view_object, _ = case.build()
    policy = policy or TranslatorPolicy.permissive()
    report = check_strategy(view_object, policy)
    law_report = run_laws(case, policy)
    falsified = bool(law_report.falsified)
    flagged = report.level >= RiskLevel.HIGH
    return {
        "case": case.describe(),
        "object": view_object.name,
        "risk": report.to_dict(),
        "laws": law_report.to_dict(),
        "falsified": falsified,
        "agreement": (not falsified) or flagged,
        "_risk_report": report,
        "_law_report": law_report,
    }


def validate_workload(
    workload: str, policy: Optional[TranslatorPolicy] = None
) -> Dict[str, Any]:
    """Validate one named workload's spanning object end to end."""
    return validate_case(workload_case(workload), policy)


def sweep(
    count: int = 50, base_seed: int = 0, adversarial: bool = False
) -> Dict[str, Any]:
    """Run the chain-case corpus under seeded random policies.

    Each seed draws a different schema *and* a different policy, so the
    corpus ranges over the configuration space the dialog can reach
    (plus, with ``adversarial=True``, schemas it hopefully cannot).
    """
    results: List[Dict[str, Any]] = []
    disagreements: List[Dict[str, Any]] = []
    falsified = 0
    for seed in range(base_seed, base_seed + count):
        case = chain_case(seed, adversarial=adversarial)
        _, view_object, _ = case.build()
        policy = random_policy(view_object, seed)
        result = validate_case(case, policy)
        result.pop("_risk_report")
        result.pop("_law_report")
        results.append(result)
        if result["falsified"]:
            falsified += 1
        if not result["agreement"]:
            disagreements.append(result)
    return {
        "cases": count,
        "adversarial": adversarial,
        "falsified": falsified,
        "disagreements": len(disagreements),
        "disagreement_cases": disagreements,
        "results": results,
    }


def render_result(result: Dict[str, Any]) -> str:
    """A readable account of one ``validate_case`` outcome."""
    report = result["_risk_report"]
    law_report = result["_law_report"]
    lines = [report.render(), law_report.render()]
    if result["agreement"]:
        verdict = (
            "agreement: law falsification matched by a >=HIGH finding"
            if result["falsified"]
            else "agreement: no law falsified"
        )
    else:
        verdict = (
            "DISAGREEMENT: laws falsified but the checker reported "
            f"{report.level.value.upper()}"
        )
    lines.append(verdict)
    return "\n".join(lines)
