"""Risk levels and reports for the definition-time strategy checker.

The Section 6 dialog fixes the translator once, at view-definition
time; nothing in the paper verifies that the recorded answers yield a
*well-behaved* translator. The static checker
(:mod:`repro.strategy.checks`) classifies each configuration with a
five-step risk ladder — SAFE / LOW / MEDIUM / HIGH / CRITICAL — and
each individual observation is a :class:`Finding` carried by a
:class:`RiskReport`.

Reports are fully deterministic: findings sort by (severity desc,
code, relation, connection, message), ``render()`` emits no
timestamps, and two reports computed from the same answers are
byte-identical — the property the dialog-layer tests pin down.
"""

from __future__ import annotations

import enum
import functools
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["RiskLevel", "Finding", "RiskReport", "StrategyWarning"]


class StrategyWarning(UserWarning):
    """Emitted when a translator is built under ``strictness="warn"``
    and the static checker classifies the configuration CRITICAL."""


@functools.total_ordering
class RiskLevel(enum.Enum):
    """How much a translator configuration can be trusted.

    * SAFE — every enabled operation class translates deterministically.
    * LOW — ambiguity resolved by a documented default (AUTO repairs,
      unreachable switch combinations).
    * MEDIUM — some updates reject depending on the data (partial
      translator); semantics are sound but coverage is not total.
    * HIGH — the answers contradict each other or a translation has
      side effects beyond the updated instance; manual review required.
    * CRITICAL — an enabled operation class or repair rule can *never*
      be satisfied; ``strictness="refuse"`` rejects the configuration
      at definition time.
    """

    SAFE = "safe"
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"
    CRITICAL = "critical"

    @property
    def rank(self) -> int:
        return _RANKS[self]

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, RiskLevel):
            return NotImplemented
        return self.rank < other.rank


_RANKS = {
    RiskLevel.SAFE: 0,
    RiskLevel.LOW: 1,
    RiskLevel.MEDIUM: 2,
    RiskLevel.HIGH: 3,
    RiskLevel.CRITICAL: 4,
}


class Finding:
    """One observation of the static checker.

    ``code`` is a stable dotted identifier (``"deletion.nullify-
    impossible"``); tests and the CLI key off it, the message is for
    humans.
    """

    __slots__ = ("level", "code", "message", "relation", "connection")

    def __init__(
        self,
        level: RiskLevel,
        code: str,
        message: str,
        relation: Optional[str] = None,
        connection: Optional[str] = None,
    ) -> None:
        self.level = level
        self.code = code
        self.message = message
        self.relation = relation
        self.connection = connection

    @property
    def sort_key(self) -> Tuple[Any, ...]:
        return (
            -self.level.rank,
            self.code,
            self.relation or "",
            self.connection or "",
            self.message,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "level": self.level.value,
            "code": self.code,
            "message": self.message,
            "relation": self.relation,
            "connection": self.connection,
        }

    def describe(self) -> str:
        where = f" @ {self.relation}" if self.relation else ""
        return f"[{self.level.value.upper()}] {self.code}{where}: {self.message}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Finding):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash((self.level, self.code, self.relation, self.connection))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Finding({self.level.value!r}, {self.code!r}, {self.relation!r})"


class RiskReport:
    """The checker's verdict on one translator configuration."""

    __slots__ = ("object_name", "findings")

    def __init__(
        self, object_name: str, findings: Sequence[Finding] = ()
    ) -> None:
        self.object_name = object_name
        self.findings: Tuple[Finding, ...] = tuple(
            sorted(findings, key=lambda f: f.sort_key)
        )

    @property
    def level(self) -> RiskLevel:
        """The highest severity among the findings (SAFE when empty)."""
        if not self.findings:
            return RiskLevel.SAFE
        return max(f.level for f in self.findings)

    @property
    def is_critical(self) -> bool:
        return self.level is RiskLevel.CRITICAL

    def at_least(self, level: RiskLevel) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.level >= level)

    def codes(self) -> Tuple[str, ...]:
        return tuple(f.code for f in self.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "object": self.object_name,
            "level": self.level.value,
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        """A deterministic, human-readable account."""
        lines: List[str] = [
            f"risk report for {self.object_name!r}: "
            f"{self.level.value.upper()} ({len(self.findings)} finding(s))"
        ]
        lines.extend(f"  {finding.describe()}" for finding in self.findings)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RiskReport({self.object_name!r}, {self.level.value!r}, "
            f"{len(self.findings)} findings)"
        )
