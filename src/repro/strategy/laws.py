"""Round-trip law harness: execute PutGet/GetPut-style laws against a
translator configuration.

The static checker (:mod:`repro.strategy.checks`) reasons about the
policy answers; this module *runs* the translator against seeded
databases and checks the laws a well-behaved view-update translator
must satisfy (the BIRDS/lens laws, transposed to view objects):

* **insert-putget** — a successful complete insertion is visible on
  read-back, and re-inserting the same instance now rejects (CASE 1);
* **insert-liveness** — when insertion is allowed and no switch or
  completer can justify a rejection, a fresh instance must be accepted;
* **delete-fresh** — deleting the freshly inserted instance succeeds
  and leaves zero orphans;
* **delete-populated** — deleting a referenced instance either commits
  with structural integrity intact or rejects *cleanly* (an
  :class:`~repro.errors.UpdateError`, never an engine error);
* **reject-zero-trace** — a rejected update leaves no trace in the
  engine, the journal, the audit log, or the materialized cache;
* **replace-getput** — replacing an instance with itself is a no-op;
* **replace-putget** — a non-key replacement is reflected on read-back;
* **replace-idempotent** — re-translating the already-applied
  replacement coalesces to the empty plan;
* **key-rehome** — an allowed pivot key change rehomes the instance and
  retargets references, keeping integrity intact;
* **compiled-parity** — the compiled plan builders and the interpreted
  tree walk explain every request identically.

Every case is rebuilt from its seed for every law, so laws never
contaminate each other and a falsification report can always print the
exact seed + schema that reproduces it.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.dependency_island import NodeRole
from repro.core.updates.operations import (
    CompleteDeletion,
    CompleteInsertion,
    Replacement,
)
from repro.core.updates.policy import (
    ReferenceRepair,
    RelationPolicy,
    TranslatorPolicy,
    null_completer,
)
from repro.core.view_object import ViewObjectDefinition
from repro.errors import ReproError, UpdateError
from repro.relational.engine import Engine
from repro.relational.journal import MemoryJournal
from repro.relational.memory_engine import MemoryEngine
from repro.obs.audit import MemoryAuditLog
from repro.structural.integrity import IntegrityChecker
from repro.structural.schema_graph import ConnectionKind, StructuralSchema

__all__ = [
    "StrategyCase",
    "chain_case",
    "workload_case",
    "random_policy",
    "LawResult",
    "LawReport",
    "run_laws",
    "LAW_NAMES",
]

LAW_NAMES = (
    "insert-putget",
    "delete-fresh",
    "delete-populated",
    "reject-zero-trace",
    "replace-getput",
    "replace-putget",
    "replace-idempotent",
    "key-rehome",
    "compiled-parity",
)


class StrategyCase:
    """One reproducible schema+data scenario for the law harness.

    ``build()`` returns a *fresh* ``(graph, view_object, engine)``
    triple every time it is called — same seed, same bytes — so each
    law starts from the identical database state.
    """

    def __init__(
        self,
        name: str,
        seed: int,
        build: Callable[[], Tuple[StructuralSchema, ViewObjectDefinition, Engine]],
        params: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.seed = seed
        self._build = build
        self.params = dict(params or {})

    def build(self) -> Tuple[StructuralSchema, ViewObjectDefinition, Engine]:
        return self._build()

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.name}(seed={self.seed}, {inner})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StrategyCase({self.describe()})"


def chain_case(seed: int, adversarial: bool = False) -> StrategyCase:
    """A seeded member of the synthetic chain family (optionally with
    the adversarial mutations of :func:`random_chain_case`)."""
    from repro.workloads.synthetic import random_chain_case

    def build():
        engine = MemoryEngine()
        graph, view_object, _ = random_chain_case(
            engine, seed, adversarial=adversarial
        )
        return graph, view_object, engine

    engine = MemoryEngine()
    _, _, params = random_chain_case(engine, seed, adversarial=adversarial)
    name = "adversarial-chain" if adversarial else "chain"
    return StrategyCase(name, seed, build, params)


def workload_case(workload: str, object_name: Optional[str] = None) -> StrategyCase:
    """A canonical workload (hospital / university / cad) as a law case."""
    if workload == "hospital":
        from repro.workloads.hospital import (
            hospital_schema,
            patient_chart_object,
            populate_hospital,
        )

        def build():
            graph = hospital_schema()
            engine = MemoryEngine()
            graph.install(engine)
            populate_hospital(engine)
            return graph, patient_chart_object(graph), engine

    elif workload == "university":
        from repro.workloads.figures import course_info_object
        from repro.workloads.university import (
            populate_university,
            university_schema,
        )

        def build():
            graph = university_schema()
            engine = MemoryEngine()
            graph.install(engine)
            populate_university(engine)
            return graph, course_info_object(graph), engine

    elif workload == "cad":
        from repro.workloads.cad import assembly_object, cad_schema, populate_cad

        def build():
            graph = cad_schema()
            engine = MemoryEngine()
            graph.install(engine)
            populate_cad(engine)
            return graph, assembly_object(graph), engine

    else:
        raise ValueError(f"unknown workload {workload!r}")
    return StrategyCase(workload, 0, build, {"workload": workload})


# -- seeded policy corpus ------------------------------------------------------


def random_policy(
    view_object: ViewObjectDefinition, seed: int
) -> TranslatorPolicy:
    """A seeded translator policy over the object's relations.

    Deliberately spans the whole quality spectrum — permissive,
    partial, contradictory, and unsatisfiable configurations — so the
    static checker and the law harness can disagree-hunt on the same
    corpus.
    """
    rng = random.Random(seed * 7919 + 17)
    policy = TranslatorPolicy(
        allow_insertion=rng.random() < 0.85,
        allow_deletion=rng.random() < 0.85,
        allow_replacement=rng.random() < 0.85,
    )
    graph = view_object.graph
    for relation in sorted(graph.relation_names):
        relation_policy = RelationPolicy(
            can_modify=rng.random() < 0.85,
            can_insert=rng.random() < 0.85,
            can_replace_existing=rng.random() < 0.85,
            allow_key_replacement=rng.random() < 0.75,
            allow_db_key_replacement=rng.random() < 0.75,
            allow_merge_on_key_conflict=rng.random() < 0.25,
            on_reference_delete=rng.choice(
                [
                    ReferenceRepair.AUTO,
                    ReferenceRepair.AUTO,
                    ReferenceRepair.DELETE,
                    ReferenceRepair.NULLIFY,
                    ReferenceRepair.PROHIBIT,
                ]
            ),
        )
        policy.set_relation(relation, relation_policy)
    return policy


# -- results -------------------------------------------------------------------

HELD = "held"
REJECTED = "rejected"
SKIPPED = "skipped"
FALSIFIED = "falsified"


class LawResult:
    __slots__ = ("law", "status", "detail")

    def __init__(self, law: str, status: str, detail: str = "") -> None:
        self.law = law
        self.status = status
        self.detail = detail

    def to_dict(self) -> Dict[str, str]:
        return {"law": self.law, "status": self.status, "detail": self.detail}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LawResult({self.law!r}, {self.status!r})"


class LawReport:
    """All law verdicts for one (case, policy) configuration."""

    def __init__(
        self,
        case: StrategyCase,
        policy_summary: Dict[str, Any],
        results: List[LawResult],
    ) -> None:
        self.case = case
        self.policy_summary = policy_summary
        self.results = results

    @property
    def falsified(self) -> List[LawResult]:
        return [r for r in self.results if r.status == FALSIFIED]

    @property
    def ok(self) -> bool:
        return not self.falsified

    def to_dict(self) -> Dict[str, Any]:
        return {
            "case": self.case.name,
            "seed": self.case.seed,
            "schema": dict(self.case.params),
            "policy": self.policy_summary,
            "results": [r.to_dict() for r in self.results],
            "falsified": [r.law for r in self.falsified],
        }

    def render(self) -> str:
        """The falsification report; always prints the failing seed and
        schema so a run can be replayed exactly (CI == local)."""
        lines = [
            f"law report for {self.case.describe()}:",
            f"  policy : {_summarize(self.policy_summary)}",
        ]
        for result in self.results:
            mark = {
                HELD: "ok",
                REJECTED: "ok (clean reject)",
                SKIPPED: "skipped",
                FALSIFIED: "FALSIFIED",
            }[result.status]
            suffix = f" -- {result.detail}" if result.detail else ""
            lines.append(f"  {result.law:<18}: {mark}{suffix}")
        if self.falsified:
            lines.append(
                f"  REPRODUCE WITH    : case={self.case.name} "
                f"seed={self.case.seed} "
                f"schema={dict(sorted(self.case.params.items()))}"
            )
        return "\n".join(lines)


def _summarize(summary: Dict[str, Any]) -> str:
    gates = summary.get("gates", {})
    on = [k for k, v in sorted(gates.items()) if v]
    return f"gates={'+'.join(on) or 'none'}"


# -- the harness ---------------------------------------------------------------


class _Session:
    """One fresh database + translator + full observability stack."""

    def __init__(self, case: StrategyCase, policy: TranslatorPolicy) -> None:
        from repro.penguin import Penguin

        self.graph, self.view_object, self.engine = case.build()
        self.journal = MemoryJournal()
        self.audit = MemoryAuditLog()
        self.penguin = Penguin(
            self.graph,
            engine=self.engine,
            install=False,
            journal=self.journal,
            audit=self.audit,
            strictness="off",
        )
        self.penguin.register_object(self.view_object)
        self.name = self.view_object.name
        self.translator = self.penguin.set_policy(self.name, policy)
        self.policy = policy
        self.analysis = self.translator.analysis

    def fingerprint(self) -> Tuple[Any, ...]:
        dump = tuple(
            (name, tuple(sorted(map(repr, self.engine.rows(name)))))
            for name in sorted(self.engine.relation_names())
        )
        cached = tuple(
            (
                name,
                tuple(
                    sorted(repr(i.to_dict()) for i in self.penguin.query(name))
                ),
            )
            for name in sorted(self.penguin.materialized_names)
        )
        # Rejections are *supposed* to be journaled/audited (rolled_back
        # records are the audit trail working as designed); the trace a
        # rejected update must never leave is a *committed* entry.
        committed_journal = sum(
            1 for entry in self.journal.entries() if entry.status == "committed"
        )
        committed_audit = sum(
            1
            for record in self.audit.records()
            if record.outcome == "committed"
        )
        return (dump, committed_journal, committed_audit, cached)

    def instances(self):
        return self.penguin.query(self.name)

    def first_instance(self):
        instances = self.instances()
        return instances[0] if instances else None

    def integrity_violations(self) -> int:
        return len(IntegrityChecker(self.graph).check(self.engine))


def run_laws(
    case: StrategyCase, policy: Optional[TranslatorPolicy] = None
) -> LawReport:
    """Execute every law against one configuration."""
    policy = policy or TranslatorPolicy.permissive()
    summary = _policy_summary(policy)
    results: List[LawResult] = []
    for law, runner in _LAWS:
        session = _Session(case, policy)
        try:
            results.append(runner(session))
        except AssertionError as exc:  # pragma: no cover - harness bug guard
            results.append(LawResult(law, FALSIFIED, f"harness: {exc}"))
    return LawReport(case, summary, results)


def _policy_summary(policy: TranslatorPolicy) -> Dict[str, Any]:
    return {
        "gates": {
            "insert": policy.allow_insertion,
            "delete": policy.allow_deletion,
            "replace": policy.allow_replacement,
        },
        "relations": {
            name: {
                "can_modify": rp.can_modify,
                "can_insert": rp.can_insert,
                "can_replace_existing": rp.can_replace_existing,
                "allow_key_replacement": rp.allow_key_replacement,
                "allow_db_key_replacement": rp.allow_db_key_replacement,
                "allow_merge_on_key_conflict": rp.allow_merge_on_key_conflict,
                "on_reference_delete": rp.on_reference_delete.value,
            }
            for name, rp in sorted(policy.relations.items())
        },
        "default_completer": policy.completer is null_completer,
    }


# -- instance synthesis --------------------------------------------------------


def synthesize_fresh_instance(
    session: _Session, offset: int = 500000
) -> Optional[Dict[str, Any]]:
    """A brand-new instance dict derived from an existing one.

    Walks the projection tree: every island component gets fresh values
    for the key attributes it owns (inherited connecting attributes
    follow the parent's fresh values by name), peninsula components are
    pruned (they belong to *existing* instances), and outside
    components are kept verbatim so they bind to existing tuples.
    Deterministic — no RNG.
    """
    source = session.first_instance()
    if source is None:
        return None
    view_object = session.view_object
    analysis = session.analysis
    graph = session.graph

    def fresh(value: Any) -> Any:
        # A *constant* shift keeps distinct originals distinct — a
        # per-call counter would let sibling keys collide (a+5 == b+1).
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return value + offset
        if isinstance(value, float):
            return value + offset
        return f"{value}~L{offset}"

    def walk(node_id: str, payload: Dict[str, Any], overrides: Dict[str, Any]):
        node = view_object.node(node_id)
        data = dict(payload)
        for attr, value in overrides.items():
            if attr in data:
                data[attr] = value
        role = analysis.role(node_id)
        child_overrides = dict(overrides)
        if role is NodeRole.ISLAND:
            schema = graph.relation(node.relation)
            # Key attributes that bind the component to an *existing*
            # tuple elsewhere stay verbatim: attrs referencing another
            # relation, and attrs connecting to a non-island tree child
            # (GRADES.student_id names a real STUDENT). Freshening them
            # would dangle the connection.
            reference_bound: set = set()
            for connection in graph.connections_from(
                node.relation, ConnectionKind.REFERENCE
            ):
                reference_bound.update(connection.source_attributes)
            for child in view_object.tree.children(node_id):
                # Peninsula children are pruned from the synthesized
                # instance, so only OUTSIDE children (kept verbatim)
                # pin their connecting attributes.
                if analysis.role(child.node_id) is not NodeRole.OUTSIDE:
                    continue
                if child.path is not None and len(child.path) > 0:
                    reference_bound.update(
                        child.path.traversals[0].start_attributes
                    )
            for attr in schema.key:
                if (
                    attr in overrides
                    or attr not in data
                    or attr in reference_bound
                ):
                    continue
                new_value = fresh(data[attr])
                data[attr] = new_value
                child_overrides[attr] = new_value
        for child in view_object.tree.children(node_id):
            components = data.get(child.node_id)
            if analysis.role(child.node_id) is NodeRole.PENINSULA:
                data[child.node_id] = []
                continue
            if components:
                data[child.node_id] = [
                    walk(child.node_id, component, child_overrides)
                    for component in components
                ]
        return data

    root = source.to_dict()
    return walk(view_object.pivot_node_id, root, {})


def rekey_pivot(
    session: _Session, offset: int = 700000
) -> Optional[Tuple[Dict[str, Any], Dict[str, Any]]]:
    """(old dict, new dict) where only the pivot key changed; connecting
    attributes in descendants follow by name (the system-rewritten
    attributes of Section 5.3)."""
    source = session.first_instance()
    if source is None:
        return None
    view_object = session.view_object
    graph = session.graph
    pivot_schema = graph.relation(view_object.pivot_relation)

    old = source.to_dict()
    overrides: Dict[str, Any] = {}
    for index, attr in enumerate(pivot_schema.key):
        if attr in old:
            value = old[attr]
            if isinstance(value, int) and not isinstance(value, bool):
                overrides[attr] = value + offset + index
            else:
                overrides[attr] = f"{value}~K{offset + index}"

    def walk(node_id: str, payload: Dict[str, Any]):
        data = dict(payload)
        for attr, value in overrides.items():
            if attr in data:
                data[attr] = value
        for child in view_object.tree.children(node_id):
            components = data.get(child.node_id)
            if components:
                data[child.node_id] = [
                    walk(child.node_id, component) for component in components
                ]
        return data

    return old, walk(view_object.pivot_node_id, old)


def _mutable_pivot_attribute(session: _Session) -> Optional[str]:
    """A nonkey, non-connecting text attribute of the pivot selection —
    safe to rewrite without touching keys or references."""
    view_object = session.view_object
    graph = session.graph
    schema = graph.relation(view_object.pivot_relation)
    connected = set()
    for connection in graph.connections:
        if connection.source == view_object.pivot_relation:
            connected.update(connection.source_attributes)
        if connection.target == view_object.pivot_relation:
            connected.update(connection.target_attributes)
    for attr in view_object.projection(view_object.pivot_node_id).attributes:
        if attr in schema.key or attr in connected:
            continue
        if schema.attribute(attr).domain.name == "text":
            return attr
    return None


# -- justification: which rejections are sanctioned by the dialog --------------


def _insert_reject_justified(session: _Session) -> bool:
    policy = session.policy
    if policy.completer is not null_completer:
        return True
    for relation_policy in policy.relations.values():
        if not (relation_policy.can_modify and relation_policy.can_insert):
            return True
    return False


def _delete_reject_justified(session: _Session) -> bool:
    policy = session.policy
    for relation_policy in policy.relations.values():
        if relation_policy.on_reference_delete is ReferenceRepair.PROHIBIT:
            return True
    return False


def _replace_reject_justified(session: _Session) -> bool:
    policy = session.policy
    for relation_policy in policy.relations.values():
        if not relation_policy.can_modify:
            return True
    return False


def _key_reject_justified(session: _Session) -> bool:
    policy = session.policy
    for relation in session.analysis.island_relations:
        relation_policy = policy.relations.get(relation) or RelationPolicy()
        if not (
            relation_policy.allow_key_replacement
            and relation_policy.allow_db_key_replacement
        ):
            return True
    return _replace_reject_justified(session)


# -- the laws ------------------------------------------------------------------


def _law_insert_putget(session: _Session) -> LawResult:
    law = "insert-putget"
    fresh = synthesize_fresh_instance(session)
    if fresh is None:
        return LawResult(law, SKIPPED, "no source instance")
    before = session.fingerprint()
    try:
        session.translator.insert(session.engine, fresh)
    except UpdateError as exc:
        if session.fingerprint() != before:
            return LawResult(law, FALSIFIED, f"rejection left a trace: {exc}")
        if session.policy.allow_insertion and not _insert_reject_justified(
            session
        ):
            return LawResult(
                law,
                FALSIFIED,
                f"insertion allowed, nothing in the policy justifies the "
                f"rejection: {exc}",
            )
        return LawResult(law, REJECTED, str(exc))
    except ReproError as exc:
        return LawResult(
            law, FALSIFIED, f"unclean failure ({type(exc).__name__}): {exc}"
        )
    key = _key_of(session, fresh)
    read_back = session.penguin.get(session.name, key)
    if read_back is None:
        return LawResult(law, FALSIFIED, "inserted instance not readable")
    root_values = read_back.root.values
    for attr, value in fresh.items():
        if isinstance(value, (dict, list)):
            continue
        if attr in root_values and root_values[attr] != value:
            return LawResult(
                law,
                FALSIFIED,
                f"read-back differs at {attr!r}: {root_values[attr]!r} != "
                f"{value!r}",
            )
    try:
        session.translator.insert(session.engine, fresh)
    except UpdateError:
        return LawResult(law, HELD)
    except ReproError as exc:
        return LawResult(
            law, FALSIFIED, f"duplicate insert died uncleanly: {exc}"
        )
    return LawResult(
        law, FALSIFIED, "re-inserting the same instance did not reject"
    )


def _law_delete_fresh(session: _Session) -> LawResult:
    law = "delete-fresh"
    fresh = synthesize_fresh_instance(session)
    if fresh is None:
        return LawResult(law, SKIPPED, "no source instance")
    try:
        session.translator.insert(session.engine, fresh)
    except ReproError:
        return LawResult(law, SKIPPED, "insertion unavailable under policy")
    key = _key_of(session, fresh)
    try:
        session.translator.delete(session.engine, key=key)
    except UpdateError as exc:
        if session.policy.allow_deletion and not _delete_reject_justified(
            session
        ):
            return LawResult(
                law,
                FALSIFIED,
                f"deletion of an unreferenced fresh instance rejected: {exc}",
            )
        return LawResult(law, REJECTED, str(exc))
    except ReproError as exc:
        return LawResult(
            law, FALSIFIED, f"unclean failure ({type(exc).__name__}): {exc}"
        )
    if session.penguin.get(session.name, key) is not None:
        return LawResult(law, FALSIFIED, "instance still readable after delete")
    orphans = session.integrity_violations()
    if orphans:
        return LawResult(
            law, FALSIFIED, f"{orphans} integrity violation(s) left behind"
        )
    return LawResult(law, HELD)


def _law_delete_populated(session: _Session) -> LawResult:
    law = "delete-populated"
    instance = session.first_instance()
    if instance is None:
        return LawResult(law, SKIPPED, "empty database")
    before = session.fingerprint()
    try:
        session.translator.delete(session.engine, instance)
    except UpdateError as exc:
        if session.fingerprint() != before:
            return LawResult(law, FALSIFIED, f"rejection left a trace: {exc}")
        return LawResult(law, REJECTED, str(exc))
    except ReproError as exc:
        if session.fingerprint() != before:
            return LawResult(
                law,
                FALSIFIED,
                f"unclean failure with residue ({type(exc).__name__}): {exc}",
            )
        return LawResult(
            law,
            FALSIFIED,
            f"unclean failure ({type(exc).__name__}), expected a clean "
            f"UpdateError: {exc}",
        )
    violations = session.integrity_violations()
    if violations:
        return LawResult(
            law,
            FALSIFIED,
            f"committed deletion left {violations} integrity violation(s)",
        )
    return LawResult(law, HELD)


def _law_reject_zero_trace(session: _Session) -> LawResult:
    law = "reject-zero-trace"
    instance = session.first_instance()
    if instance is None:
        return LawResult(law, SKIPPED, "empty database")
    session.penguin.materialize(session.name)
    session.penguin.query(session.name)  # warm the cache
    before = session.fingerprint()
    duplicate = instance.to_dict()
    try:
        session.translator.insert(session.engine, duplicate)
    except UpdateError:
        pass
    except ReproError as exc:
        return LawResult(
            law, FALSIFIED, f"unclean failure ({type(exc).__name__}): {exc}"
        )
    else:
        return LawResult(
            law, FALSIFIED, "inserting an existing instance did not reject"
        )
    session.penguin.query(session.name)
    if session.fingerprint() != before:
        return LawResult(
            law,
            FALSIFIED,
            "rejected update left a trace in engine/journal/audit/cache",
        )
    return LawResult(law, HELD)


def _law_replace_getput(session: _Session) -> LawResult:
    law = "replace-getput"
    instance = session.first_instance()
    if instance is None:
        return LawResult(law, SKIPPED, "empty database")
    before = session.fingerprint()
    try:
        plan = session.translator.replace(
            session.engine, instance, instance.to_dict()
        )
    except UpdateError as exc:
        if session.policy.allow_replacement and not _replace_reject_justified(
            session
        ):
            return LawResult(
                law, FALSIFIED, f"identity replacement rejected: {exc}"
            )
        return LawResult(law, REJECTED, str(exc))
    except ReproError as exc:
        return LawResult(
            law, FALSIFIED, f"unclean failure ({type(exc).__name__}): {exc}"
        )
    if len(plan) != 0:
        return LawResult(
            law, FALSIFIED, f"identity replacement emitted {len(plan)} op(s)"
        )
    after = session.fingerprint()
    if after[0] != before[0]:
        return LawResult(law, FALSIFIED, "identity replacement changed data")
    return LawResult(law, HELD)


def _law_replace_putget(session: _Session) -> LawResult:
    law = "replace-putget"
    instance = session.first_instance()
    if instance is None:
        return LawResult(law, SKIPPED, "empty database")
    attr = _mutable_pivot_attribute(session)
    if attr is None:
        return LawResult(law, SKIPPED, "no mutable nonkey pivot attribute")
    mutated = instance.to_dict()
    mutated[attr] = "strategy-law-mutation"
    try:
        session.translator.replace(session.engine, instance, mutated)
    except UpdateError as exc:
        if session.policy.allow_replacement and not _replace_reject_justified(
            session
        ):
            return LawResult(
                law,
                FALSIFIED,
                f"non-key island replacement rejected without cause: {exc}",
            )
        return LawResult(law, REJECTED, str(exc))
    except ReproError as exc:
        return LawResult(
            law, FALSIFIED, f"unclean failure ({type(exc).__name__}): {exc}"
        )
    key = _key_of(session, mutated)
    read_back = session.penguin.get(session.name, key)
    if read_back is None:
        return LawResult(law, FALSIFIED, "instance vanished after replacement")
    if read_back.root.values.get(attr) != "strategy-law-mutation":
        return LawResult(
            law,
            FALSIFIED,
            f"update not reflected on read: {attr!r} is "
            f"{read_back.root.values.get(attr)!r}",
        )
    return LawResult(law, HELD)


def _law_replace_idempotent(session: _Session) -> LawResult:
    law = "replace-idempotent"
    instance = session.first_instance()
    if instance is None:
        return LawResult(law, SKIPPED, "empty database")
    attr = _mutable_pivot_attribute(session)
    if attr is None:
        return LawResult(law, SKIPPED, "no mutable nonkey pivot attribute")
    mutated = instance.to_dict()
    mutated[attr] = "strategy-law-mutation"
    try:
        session.translator.replace(session.engine, instance, mutated)
    except ReproError:
        return LawResult(law, SKIPPED, "replacement unavailable under policy")
    key = _key_of(session, mutated)
    applied = session.penguin.get(session.name, key)
    if applied is None:
        return LawResult(law, FALSIFIED, "instance vanished after replacement")
    explanation = session.translator.explain(
        session.engine, Replacement(applied, applied)
    )
    if explanation.coalesced_ops != 0:
        return LawResult(
            law,
            FALSIFIED,
            f"translate∘translate is not idempotent: re-translating the "
            f"applied replacement still emits "
            f"{explanation.coalesced_ops} op(s)",
        )
    return LawResult(law, HELD)


def _law_key_rehome(session: _Session) -> LawResult:
    law = "key-rehome"
    pair = rekey_pivot(session)
    if pair is None:
        return LawResult(law, SKIPPED, "empty database")
    old, new = pair
    old_key = _key_of(session, old)
    new_key = _key_of(session, new)
    if old_key == new_key:
        return LawResult(law, SKIPPED, "pivot key not rewritable")
    try:
        session.translator.replace(session.engine, old, new)
    except UpdateError as exc:
        if (
            session.policy.allow_replacement
            and not _key_reject_justified(session)
        ):
            return LawResult(
                law,
                FALSIFIED,
                f"allowed key replacement rejected: {exc}",
            )
        return LawResult(law, REJECTED, str(exc))
    except ReproError as exc:
        return LawResult(
            law, FALSIFIED, f"unclean failure ({type(exc).__name__}): {exc}"
        )
    if session.penguin.get(session.name, old_key) is not None:
        return LawResult(law, FALSIFIED, "old key still resolves after rehome")
    if session.penguin.get(session.name, new_key) is None:
        return LawResult(law, FALSIFIED, "new key does not resolve")
    violations = session.integrity_violations()
    if violations:
        return LawResult(
            law,
            FALSIFIED,
            f"key rehome left {violations} integrity violation(s)",
        )
    return LawResult(law, HELD)


def _law_compiled_parity(session: _Session) -> LawResult:
    """Compiled ≡ interpreted, as a law: every request explains
    identically through the compiled plan builders and the interpreted
    tree walk (explain never mutates, so one session serves both)."""
    law = "compiled-parity"
    from repro.core.updates.translator import Translator

    compiled = Translator(
        session.view_object,
        policy=session.policy,
        compile_plans=True,
        strictness="off",
    )
    interpreted = Translator(
        session.view_object,
        policy=session.policy,
        compile_plans=False,
        strictness="off",
    )
    requests = []
    fresh = synthesize_fresh_instance(session)
    instance = session.first_instance()
    if fresh is not None:
        requests.append(("insert", CompleteInsertion(_build(session, fresh))))
    if instance is not None:
        requests.append(("delete", CompleteDeletion(instance)))
        attr = _mutable_pivot_attribute(session)
        if attr is not None:
            mutated = instance.to_dict()
            mutated[attr] = "strategy-law-mutation"
            requests.append(
                ("replace", Replacement(instance, _build(session, mutated)))
            )
    if not requests:
        return LawResult(law, SKIPPED, "no requests to compare")
    for op, request in requests:
        left = _outcome(compiled, session.engine, request)
        right = _outcome(interpreted, session.engine, request)
        if left != right:
            return LawResult(
                law,
                FALSIFIED,
                f"compiled and interpreted disagree on {op}: "
                f"{left[:120]!r} != {right[:120]!r}",
            )
    return LawResult(law, HELD)


def _outcome(translator, engine, request) -> str:
    try:
        explanation = translator.explain(engine, request)
    except ReproError as exc:
        return f"{type(exc).__name__}: {exc}"
    return explanation.render()


def _build(session: _Session, payload: Dict[str, Any]):
    from repro.core.instance import build_instance

    return build_instance(session.view_object, payload)


def _key_of(session: _Session, payload: Dict[str, Any]) -> Tuple[Any, ...]:
    return tuple(payload[a] for a in session.view_object.object_key)


_LAWS: List[Tuple[str, Callable[[_Session], LawResult]]] = [
    ("insert-putget", _law_insert_putget),
    ("delete-fresh", _law_delete_fresh),
    ("delete-populated", _law_delete_populated),
    ("reject-zero-trace", _law_reject_zero_trace),
    ("replace-getput", _law_replace_getput),
    ("replace-putget", _law_replace_putget),
    ("replace-idempotent", _law_replace_idempotent),
    ("key-rehome", _law_key_rehome),
    ("compiled-parity", _law_compiled_parity),
]
