"""Seeded chaos campaign over the hospital workload.

``python -m repro chaos --seed 0 --ops 200`` runs three legs and
asserts the resilience layer's invariants after each:

1. **Crash sweep** — for every operation index *k* of several
   multi-relation patient-chart deletion plans, a
   :class:`~repro.relational.faults.SimulatedCrash` is injected at the
   *k*-th mutation while the plan is applied *non-atomically* under
   journal protection. Recovery must leave the database exactly
   all-applied or all-reverted (no torn plans) with clean structural
   integrity. The same sweep also crashes *inside* eager translation,
   where recovery resolves the interrupted transaction instead.
2. **Transient bulk** — a bulk insert/delete run with a seeded
   transient-fault rate on every mutation; the engine-level
   :class:`~repro.relational.retry.RetryPolicy` must absorb every
   injection with no caller-visible error.
3. **Degraded serving** — a burst of engine faults trips the
   :class:`~repro.serve.breaker.CircuitBreaker`;
   :class:`~repro.serve.ConcurrentPenguin` must fail writes fast, serve
   reads stale from the materialized cache, and close the breaker again
   via a probe once the fault plan is exhausted.

Everything is deterministic per ``--seed``: the fault plans, the
workload, and the retry jitter all derive from it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import DegradedServiceError
from repro.core.updates.translator import Translator
from repro.materialize.maintainer import LAZY
from repro.penguin import Penguin
from repro.relational.engine import Engine
from repro.relational.faults import FaultInjectingEngine, FaultPlan, SimulatedCrash
from repro.relational.journal import (
    ABORTED,
    COMMITTED,
    MemoryJournal,
    apply_journaled,
    recover,
)
from repro.relational.memory_engine import MemoryEngine
from repro.relational.retry import RetryPolicy
from repro.serve.breaker import CircuitBreaker
from repro.serve.concurrent import ConcurrentPenguin
from repro.structural.integrity import IntegrityChecker
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)
from repro.workloads.synthetic import ZipfianWorkload

__all__ = ["ChaosReport", "run_campaign", "run_crash_sweep",
           "run_transient_bulk", "run_degraded_serving"]

OBJECT_NAME = "patient_chart"


class ChaosReport:
    """Aggregated results and invariant violations of one campaign."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        # crash sweep
        self.crash_points = 0
        self.crashes_injected = 0
        self.plans_reverted = 0
        self.plans_committed = 0
        self.torn_plans = 0
        self.recovery_conflicts = 0
        # transient bulk
        self.bulk_instances = 0
        self.bulk_operations = 0
        self.transient_injected = 0
        self.retries_absorbed = 0
        self.retries_gave_up = 0
        # degraded serving
        self.breaker_opened = 0
        self.breaker_closed = 0
        self.stale_reads = 0
        self.writes_refused = 0
        # invariant violations (empty = campaign passed)
        self.failures: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.failures

    def fail(self, message: str) -> None:
        self.failures.append(message)

    def require(self, condition: bool, message: str) -> None:
        if not condition:
            self.fail(message)

    def summary(self) -> str:
        lines = [
            f"chaos campaign (seed={self.seed})",
            f"  crash sweep      : {self.crash_points} crash points, "
            f"{self.crashes_injected} crashes injected, "
            f"{self.plans_reverted} reverted, "
            f"{self.plans_committed} committed, "
            f"{self.torn_plans} torn, "
            f"{self.recovery_conflicts} conflicts",
            f"  transient bulk   : {self.bulk_instances} instances, "
            f"{self.bulk_operations} operations, "
            f"{self.transient_injected} faults injected, "
            f"{self.retries_absorbed} absorbed by retry, "
            f"{self.retries_gave_up} gave up",
            f"  degraded serving : opened {self.breaker_opened}, "
            f"closed {self.breaker_closed}, "
            f"{self.stale_reads} stale reads, "
            f"{self.writes_refused} writes refused",
        ]
        if self.ok:
            lines.append("  invariants       : all held")
        else:
            lines.append(f"  invariants       : {len(self.failures)} VIOLATED")
            for message in self.failures:
                lines.append(f"    - {message}")
        return "\n".join(lines)


def _snapshot(engine: Engine) -> Dict[str, Set[Tuple[Any, ...]]]:
    return {name: set(engine.scan(name)) for name in engine.relation_names()}


def _fresh_hospital(patients: int):
    graph = hospital_schema()
    engine = MemoryEngine()
    graph.install(engine)
    populate_hospital(engine, HospitalConfig(patients=patients))
    return graph, engine, patient_chart_object(graph)


def _new_chart(i: int) -> Dict[str, Any]:
    pid = 50_000 + i
    return {
        "patient_id": pid,
        "name": f"Chaos Patient {i}",
        "birth_year": 1960 + (i % 50),
        "ward_name": None,
        "VISIT": [
            {
                "patient_id": pid,
                "visit_no": 1,
                "visit_date": "1991-05-29",
                "physician_id": 9000,
                "reason": "chaos",
                "DIAGNOSIS": [
                    {
                        "patient_id": pid,
                        "visit_no": 1,
                        "diag_no": 1,
                        "code": "hypertension",
                        "severity": "mild",
                    }
                ],
                "PRESCRIPTION": [
                    {
                        "patient_id": pid,
                        "visit_no": 1,
                        "rx_no": 1,
                        "med_id": "MED-01",
                        "days": 7,
                        "MEDICATION": [],
                    }
                ],
                "LAB_RESULT": [
                    {
                        "patient_id": pid,
                        "visit_no": 1,
                        "test_no": 1,
                        "test_name": "CBC",
                        "value": 1.0,
                    }
                ],
                "PHYSICIAN": [],
            }
        ],
    }


# Every chart generated above costs this many database operations
# (patient + visit + diagnosis + prescription + lab result); used to
# convert an --ops budget into a batch size.
_OPS_PER_CHART = 5


# ---------------------------------------------------------------------------
# Leg 1: crash sweep
# ---------------------------------------------------------------------------


def run_crash_sweep(
    report: ChaosReport,
    seed: int = 0,
    patients: int = 4,
    translation_crashes: int = 8,
) -> ChaosReport:
    """Crash at every mutation index of several chart deletions.

    Phase A applies each journaled plan *non-atomically* (each
    operation autocommits), so a crash at index k leaves a genuinely
    torn prefix that only the journal's before-images can repair.
    Phase B crashes inside eager translation, where the open
    transaction's undo log carries the repair instead.
    """
    graph, probe_engine, view_object = _fresh_hospital(patients)
    checker = IntegrityChecker(graph)
    translator = Translator(view_object)
    patient_ids = sorted(
        row[0] for row in probe_engine.scan("PATIENT")
    )

    # Phase A: torn non-atomic applies, one crash point per op index,
    # plus one control point past the end (no crash fires).
    for pid in patient_ids:
        plan_length = len(translator.preview_delete(probe_engine, key=(pid,)))
        for k in range(1, plan_length + 2):
            graph_k, engine_k, view_object_k = _fresh_hospital(patients)
            plan = Translator(view_object_k).preview_delete(engine_k, key=(pid,))
            before = _snapshot(engine_k)
            journal = MemoryJournal()
            faulty = FaultInjectingEngine(
                engine_k, FaultPlan(seed).crash_at("mutation", at=k)
            )
            report.crash_points += 1
            crashed = False
            try:
                apply_journaled(
                    faulty, journal, plan, atomic=False, label=f"chart-{pid}"
                )
            except SimulatedCrash:
                crashed = True
                report.crashes_injected += 1
            recovery = recover(engine_k, journal)
            report.recovery_conflicts += len(recovery.conflicts)
            after = _snapshot(engine_k)
            statuses = {entry.status for entry in journal.entries()}
            if crashed:
                report.plans_reverted += 1
                if after != before or statuses != {ABORTED}:
                    report.torn_plans += 1
                    report.fail(
                        f"crash sweep: chart {pid} op {k}: torn state "
                        f"after recovery (statuses={sorted(statuses)})"
                    )
            else:
                report.plans_committed += 1
                entry = journal.entries()[0]
                applied = all(
                    engine_k.get(relation, key) == after_image
                    for (relation, key), (_, after_image) in entry.images().items()
                )
                if not applied or statuses != {COMMITTED}:
                    report.torn_plans += 1
                    report.fail(
                        f"crash sweep: chart {pid}: completed plan not at "
                        f"after-images (statuses={sorted(statuses)})"
                    )
            violations = checker.check(engine_k)
            report.require(
                not violations,
                f"crash sweep: chart {pid} op {k}: "
                f"{len(violations)} integrity violations after recovery",
            )

    # Phase B: crashes inside eager translation (the Translator's own
    # transaction is open; recovery discards it).
    pid = patient_ids[0]
    for k in range(1, translation_crashes + 1):
        graph_k, engine_k, view_object_k = _fresh_hospital(patients)
        faulty = FaultInjectingEngine(
            engine_k, FaultPlan(seed).crash_at("mutation", at=k)
        )
        session = Penguin(
            graph_k, engine=faulty, install=False, journal=MemoryJournal()
        )
        session.register_object(view_object_k)
        before = _snapshot(engine_k)
        report.crash_points += 1
        try:
            session.delete(OBJECT_NAME, (pid,))
            report.plans_committed += 1
        except SimulatedCrash:
            report.crashes_injected += 1
            recovery = session.recover()
            report.recovery_conflicts += len(recovery.conflicts)
            report.plans_reverted += 1
            after = _snapshot(engine_k)
            if after != before:
                report.torn_plans += 1
                report.fail(
                    f"translation crash at op {k}: state not reverted"
                )
        violations = checker.check(engine_k)
        report.require(
            not violations,
            f"translation crash at op {k}: "
            f"{len(violations)} integrity violations after recovery",
        )
    return report


# ---------------------------------------------------------------------------
# Leg 2: transient bulk
# ---------------------------------------------------------------------------


def run_transient_bulk(
    report: ChaosReport,
    seed: int = 0,
    ops: int = 200,
    rate: float = 0.1,
    patients: int = 4,
) -> ChaosReport:
    """Bulk insert + delete with a transient-fault rate on mutations.

    The retry policy on the engine must absorb every injection: the
    caller sees no error, and the database ends consistent.
    """
    graph, base, view_object = _fresh_hospital(patients)
    faulty = FaultInjectingEngine(
        base, FaultPlan(seed).transient_rate(rate, ("mutation",))
    )
    faulty.retry_policy = RetryPolicy(
        max_attempts=8, seed=seed, sleep=lambda _: None
    )
    session = Penguin(
        graph, engine=faulty, install=False, journal=MemoryJournal()
    )
    session.register_object(view_object)

    count = max(1, ops // _OPS_PER_CHART)
    batch = [_new_chart(i) for i in range(count)]
    report.bulk_instances = count
    # Victim choice is zipfian (seeded): hot charts are deleted with
    # realistic skew instead of a fixed stride, so the retry path sees
    # the same contention shape as the serving load test.
    workload = ZipfianWorkload(
        population=count, skew=1.1, seed=seed, tenants=4
    )
    victims = sorted(
        {(50_000 + workload.sample_rank(),) for _ in range(max(1, count // 3))}
    )
    try:
        plan = session.insert_many(OBJECT_NAME, batch)
        report.bulk_operations += len(plan)
        plan = session.delete_many(OBJECT_NAME, victims)
        report.bulk_operations += len(plan)
    except Exception as exc:  # noqa: BLE001 - any escape is a violation
        report.fail(
            f"transient bulk: caller-visible error despite retry "
            f"policy: {type(exc).__name__}: {exc}"
        )
    report.transient_injected = faulty.injected["transient"]
    stats = faulty.retry_policy.stats()
    report.retries_absorbed = stats["absorbed"]
    report.retries_gave_up = stats["gave_up"]
    report.require(
        report.transient_injected > 0,
        "transient bulk: the fault plan never fired "
        "(rate or op budget too low to exercise the retry path)",
    )
    report.require(
        report.retries_gave_up == 0,
        f"transient bulk: retry policy gave up "
        f"{report.retries_gave_up} times",
    )
    violations = IntegrityChecker(graph).check(base)
    report.require(
        not violations,
        f"transient bulk: {len(violations)} integrity violations",
    )
    pending = session.journal.pending()
    report.require(
        not pending,
        f"transient bulk: {len(pending)} journal entries left pending",
    )
    return report


# ---------------------------------------------------------------------------
# Leg 3: degraded serving
# ---------------------------------------------------------------------------


def run_degraded_serving(
    report: ChaosReport, seed: int = 0, patients: int = 4
) -> ChaosReport:
    """Fault burst → DEGRADED → stale reads + fast-fail writes → recovery."""
    graph, base, view_object = _fresh_hospital(patients)
    breaker = CircuitBreaker(failure_threshold=3, probe_interval=3)
    faulty = FaultInjectingEngine(
        base,
        FaultPlan(seed).transient_burst(
            breaker.failure_threshold, ("mutation",)
        ),
    )
    session = Penguin(graph, engine=faulty, install=False)
    session.register_object(view_object)
    serving = ConcurrentPenguin(session, breaker=breaker)
    serving.materialize(OBJECT_NAME, LAZY)
    healthy_extent = len(serving.query(OBJECT_NAME))  # warms the cache

    patient_ids = sorted(row[0] for row in base.scan("PATIENT"))
    # Each write attempt consumes one burst unit and fails (the fault
    # fires before anything is deleted, so a patient can be retried);
    # the threshold-th failure opens the breaker.
    for attempt in range(breaker.failure_threshold):
        pid = patient_ids[attempt % len(patient_ids)]
        try:
            serving.delete(OBJECT_NAME, (pid,))
            report.fail("degraded serving: faulted write succeeded")
        except Exception:  # noqa: BLE001 - transient fault surfaces
            pass
    report.require(
        breaker.degraded,
        "degraded serving: breaker did not open after the fault burst",
    )

    # Writes fail fast while degraded (no engine contact, no retry wait).
    try:
        serving.delete(OBJECT_NAME, (patient_ids[-1],))
        report.fail("degraded serving: write accepted while degraded")
    except DegradedServiceError:
        report.writes_refused += 1

    # Reads are served stale from the materialized cache until a probe
    # (every probe_interval-th request) reaches the now-healthy engine.
    stale_served = 0
    while breaker.degraded:
        instances = serving.query(OBJECT_NAME)
        report.require(
            len(instances) == healthy_extent,
            "degraded serving: stale extent diverged from the cache",
        )
        stale_served += 1
        if stale_served > 10 * breaker.probe_interval:
            report.fail("degraded serving: breaker never closed")
            break
    view = serving.materialized(OBJECT_NAME)
    report.stale_reads = view.stats.stale_reads
    report.breaker_opened = breaker.opened
    report.breaker_closed = breaker.closed
    report.require(
        breaker.healthy, "degraded serving: breaker did not close"
    )
    report.require(
        report.stale_reads > 0,
        "degraded serving: no reads were served stale",
    )
    # Back to healthy: writes work again.
    try:
        serving.delete(OBJECT_NAME, (patient_ids[-1],))
    except Exception as exc:  # noqa: BLE001
        report.fail(
            f"degraded serving: write failed after recovery: {exc}"
        )
    return report


# ---------------------------------------------------------------------------
# The full campaign
# ---------------------------------------------------------------------------


def run_campaign(
    seed: int = 0, ops: int = 200, patients: int = 4
) -> ChaosReport:
    """All three legs; returns the aggregated report (``report.ok``)."""
    report = ChaosReport(seed)
    run_crash_sweep(report, seed=seed, patients=patients)
    run_transient_bulk(report, seed=seed, ops=ops, patients=patients)
    run_degraded_serving(report, seed=seed, patients=patients)
    return report
