"""Mapping base-table changes to the view instances they affect.

A view object's instance for pivot key ``k`` is assembled by walking the
projection tree downward from the pivot tuple (Figure 4). Conversely, a
changed base tuple can only alter the instances whose downward walk
*reaches* it — so the affected pivot keys are found by walking the same
connection paths in the opposite direction, from the changed tuple up to
the pivot relation.

:class:`DependencyIndex` precomputes, for every relation that appears
anywhere in the tree — including relations that only occur as pruned
intermediates of composite edge paths (Figure 3's ``COURSES --* GRADES
*-- STUDENT`` with GRADES elided) — the list of *anchors*: positions in
the tree where a tuple of that relation can sit, each with the inverse
connection path that climbs from it to the tree. Resolution then follows
those inverse paths through the live engine, exactly mirroring
instantiation's ``find_by`` joins, and projects the reached pivot tuples
onto their keys.

The index is deliberately *not* a stored map from ``(relation, key)`` to
pivot keys: a stored map cannot answer for freshly *inserted* tuples
(they were never part of any cached instance), whereas the reverse walk
handles inserts, deletes, and replaces uniformly from the tuple values
carried by the changelog record.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.view_object import ViewObjectDefinition
from repro.relational.changelog import ChangeRecord
from repro.relational.engine import Engine
from repro.structural.integrity import connected_tuples
from repro.structural.paths import ConnectionPath

__all__ = ["DependencyIndex"]

PivotKey = Tuple[Any, ...]


class _Anchor:
    """One place in the tree where a tuple of some relation can occur.

    ``climb`` is the inverse path from the tuple to the relation of the
    tree node ``node_id`` (``None`` when the tuple *is* at that node —
    only the root anchor, whose tuples are already pivot tuples).
    """

    __slots__ = ("node_id", "climb")

    def __init__(self, node_id: str, climb: Optional[ConnectionPath]) -> None:
        self.node_id = node_id
        self.climb = climb

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        via = "direct" if self.climb is None else self.climb.describe()
        return f"_Anchor(at={self.node_id!r}, via {via})"


class DependencyIndex:
    """Resolves changelog records to the pivot keys they may affect."""

    def __init__(self, view_object: ViewObjectDefinition) -> None:
        self.view_object = view_object
        tree = view_object.tree
        self._anchors: Dict[str, List[_Anchor]] = {}
        # Inverse of each tree edge: child relation -> parent relation.
        self._up_paths: Dict[str, ConnectionPath] = {}
        root = tree.root
        self._add_anchor(root.relation, _Anchor(root.node_id, None))
        for node in tree.nodes():
            if node.path is None:
                continue
            traversals = node.path.traversals
            self._up_paths[node.node_id] = _inverse(traversals)
            # A tuple may sit at the end of any traversal prefix: the
            # final position is the node's own relation, earlier ones
            # are pruned intermediates. Each climbs to the parent node.
            for stop in range(1, len(traversals) + 1):
                relation = traversals[stop - 1].end
                self._add_anchor(
                    relation,
                    _Anchor(node.parent_id, _inverse(traversals[:stop])),
                )

    def _add_anchor(self, relation: str, anchor: _Anchor) -> None:
        self._anchors.setdefault(relation, []).append(anchor)

    @property
    def relations(self) -> Tuple[str, ...]:
        """Every relation whose changes can affect this view object."""
        return tuple(self._anchors)

    def tracks(self, relation: str) -> bool:
        return relation in self._anchors

    # -- resolution -------------------------------------------------------------

    def affected_pivots(
        self, engine: Engine, record: ChangeRecord
    ) -> Set[PivotKey]:
        """Pivot keys whose instances record ``record`` may have changed.

        Replaces resolve both the old and the new tuple values so that
        rows migrating between parents invalidate both sides.
        """
        affected: Set[PivotKey] = set()
        for values in (record.old_values, record.new_values):
            if values is not None:
                affected |= self.pivots_for(engine, record.relation, values)
        return affected

    def pivots_for(
        self, engine: Engine, relation: str, values: Sequence[Any]
    ) -> Set[PivotKey]:
        """Pivot keys reachable upward from one tuple of ``relation``."""
        pivots: Set[PivotKey] = set()
        for anchor in self._anchors.get(relation, ()):
            frontier: List[Tuple[Any, ...]] = [tuple(values)]
            if anchor.climb is not None:
                frontier = _follow(engine, anchor.climb, frontier)
            pivots |= self._climb_tree(engine, anchor.node_id, frontier)
        return pivots

    def _climb_tree(
        self, engine: Engine, node_id: str, frontier: List[Tuple[Any, ...]]
    ) -> Set[PivotKey]:
        tree = self.view_object.tree
        node = tree.node(node_id)
        while frontier and not node.is_root:
            frontier = _follow(engine, self._up_paths[node.node_id], frontier)
            node = tree.node(node.parent_id)
        if not frontier:
            return set()
        schema = self.view_object.graph.relation(node.relation)
        return {schema.key_of(values) for values in frontier}


def _inverse(traversals: Sequence) -> ConnectionPath:
    return ConnectionPath([t.inverse() for t in reversed(tuple(traversals))])


def _follow(
    engine: Engine, path: ConnectionPath, starts: List[Tuple[Any, ...]]
) -> List[Tuple[Any, ...]]:
    """All tuples at the end of ``path`` connected to any start tuple.

    Multi-source variant of instantiation's path walk; duplicates
    collapse by key at every step so diamond routes stay linear.
    """
    frontier = starts
    for traversal in path:
        next_frontier: List[Tuple[Any, ...]] = []
        seen = set()
        end_schema = engine.schema(traversal.end)
        for values in frontier:
            for matched in connected_tuples(engine, traversal, values):
                key = end_schema.key_of(matched)
                if key in seen:
                    continue
                seen.add(key)
                next_frontier.append(matched)
        frontier = next_frontier
        if not frontier:
            break
    return frontier
