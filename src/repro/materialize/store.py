"""Caches of assembled view-object instances.

A :class:`MaterializedView` memoizes the ``Instance`` tree of each pivot
key and keeps itself consistent with the base tables by consuming the
engine's changelog through a :class:`~repro.materialize.maintainer.Maintainer`.
Membership of the extent is never cached: queries always select pivot
tuples from the live engine (one indexed relation access) and only the
expensive part — assembling the tree of component tuples underneath each
pivot — is served from cache. That split keeps the cache trivially
correct about which instances exist while still removing the O(tree ×
joins) assembly cost that dominates repeated queries.

A :class:`MaterializedStore` groups the materialized views of one
engine, e.g. all the objects a :class:`~repro.penguin.Penguin` session
chose to accelerate.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.audit import AuditLog

import repro.obs as obs
from repro.errors import ViewObjectError
from repro.core.instance import Instance
from repro.core.instantiation import Instantiator
from repro.core.view_object import ViewObjectDefinition
from repro.materialize.dependency import DependencyIndex
from repro.materialize.maintainer import LAZY, Maintainer
from repro.materialize.stats import CacheStats
from repro.relational.engine import Engine
from repro.relational.expressions import Expression, TRUE

__all__ = ["MaterializedView", "MaterializedStore"]

PivotKey = Tuple[Any, ...]


class MaterializedView:
    """One view object's instance cache over one engine."""

    def __init__(
        self,
        view_object: ViewObjectDefinition,
        engine: Engine,
        policy: str = LAZY,
        audit: Optional["AuditLog"] = None,
    ) -> None:
        changelog = engine.changelog
        if changelog is None:
            raise ViewObjectError(
                f"engine {type(engine).__name__} keeps no changelog; "
                f"materialized views need one to stay consistent"
            )
        self.view_object = view_object
        self.engine = engine
        self.changelog = changelog
        # When an audit log is attached, the maintainer attributes each
        # maintenance round to the audit head ASN that triggered it.
        self.audit = audit
        self.instantiator = Instantiator(view_object)
        self.dependencies = DependencyIndex(view_object)
        self.stats = CacheStats()
        self.maintainer = Maintainer(self, policy)
        self._instances: Dict[PivotKey, Instance] = {}
        self._pivot_schema = view_object.graph.relation(
            view_object.pivot_relation
        )
        # Serializes cache maintenance against reads: sync/get/where
        # mutate the instance map (applying pending records, memoizing
        # assemblies), so two threads sharing this view must not
        # interleave inside them. Reentrant because sync() runs inside
        # locked get()/where() calls.
        self._lock = threading.RLock()
        changelog.subscribe(self)

    # -- changelog subscriber protocol -----------------------------------------

    def on_truncate(self, mark: int) -> None:
        with self._lock:
            self.maintainer.rewind(mark)

    # -- reads -------------------------------------------------------------------

    @property
    def policy(self) -> str:
        return self.maintainer.policy

    def staleness(self) -> int:
        return self.maintainer.staleness()

    def sync(self) -> int:
        """Bring the cache up to the changelog head; returns records applied."""
        with self._lock:
            pending = self.maintainer.staleness()
            if not pending:
                return self.maintainer.sync()
            with obs.tracer().span(
                "view.sync", object=self.view_object.name
            ) as span:
                applied = self.maintainer.sync()
                span.set(records=applied)
            obs.metrics().counter(
                "cache_sync_records_total", object=self.view_object.name
            ).inc(applied)
            return applied

    def get(self, key: Sequence[Any]) -> Optional[Instance]:
        """The instance with pivot key ``key``, or None."""
        with self._lock:
            self.sync()
            pivot_key = tuple(key)
            self._count_lookup()
            cached = self._instances.get(pivot_key)
            if cached is not None:
                self.stats.hits += 1
                self._count_hit()
                return cached
            values = self.engine.get(self.view_object.pivot_relation, pivot_key)
            if values is None:
                self._count_miss()
                return None
            return self._assemble_into_cache(pivot_key, values, count_miss=True)

    def where(self, engine: Engine, predicate: Expression = TRUE) -> List[Instance]:
        """Drop-in for ``Instantiator.where``: serve assembly from cache.

        The ``engine`` argument exists for signature compatibility with
        the query executor and must be the engine this cache watches.
        """
        if engine is not self.engine:
            raise ViewObjectError(
                "materialized view queried against a different engine "
                "than the one it watches"
            )
        with self._lock:
            self.sync()
            instances = []
            for values in engine.select(
                self.view_object.pivot_relation, predicate
            ):
                pivot_key = self._pivot_schema.key_of(values)
                self._count_lookup()
                cached = self._instances.get(pivot_key)
                if cached is not None:
                    self.stats.hits += 1
                    self._count_hit()
                    instances.append(cached)
                else:
                    instances.append(
                        self._assemble_into_cache(
                            pivot_key, values, count_miss=True
                        )
                    )
            return instances

    def all(self) -> List[Instance]:
        return self.where(self.engine, TRUE)

    # -- stale reads (degraded-mode serving) -----------------------------------

    def stale_get(self, key: Sequence[Any]) -> Optional[Instance]:
        """The cached instance under ``key`` as-is: no sync, no engine.

        Used by the serving layer while the engine is unhealthy. The
        result may be out of date (``stats.stale_reads`` counts how
        often this path answered); ``None`` means *not cached*, not
        *does not exist* — the cache cannot tell without the engine.
        """
        with self._lock:
            instance = self._instances.get(tuple(key))
            if instance is not None:
                self.stats.stale_reads += 1
                obs.metrics().counter(
                    "cache_stale_reads_total", object=self.view_object.name
                ).inc()
            return instance

    def stale_all(self) -> List[Instance]:
        """Every cached instance as-is: no sync, no engine reads.

        The extent is whatever happened to be cached — a best-effort
        snapshot for degraded-mode serving, not the live extent.
        """
        with self._lock:
            self.stats.stale_reads += 1
            obs.metrics().counter(
                "cache_stale_reads_total", object=self.view_object.name
            ).inc()
            return list(self._instances.values())

    @property
    def cached_keys(self) -> Tuple[PivotKey, ...]:
        return tuple(self._instances)

    def __len__(self) -> int:
        return len(self._instances)

    # -- cache primitives (driven by the maintainer) ------------------------------

    def _assemble_into_cache(
        self, pivot_key: PivotKey, values: Tuple[Any, ...], count_miss: bool
    ) -> Instance:
        if count_miss:
            self.stats.misses += 1
            self._count_miss()
        instance = self.instantiator.assemble(self.engine, values)
        self._instances[pivot_key] = instance
        return instance

    def _count_lookup(self) -> None:
        obs.metrics().counter(
            "cache_lookups_total", object=self.view_object.name
        ).inc()

    def _count_hit(self) -> None:
        obs.metrics().counter(
            "cache_hits_total", object=self.view_object.name
        ).inc()

    def _count_miss(self) -> None:
        obs.metrics().counter(
            "cache_misses_total", object=self.view_object.name
        ).inc()

    def evict(self, pivot_key: PivotKey) -> None:
        with self._lock:
            if self._instances.pop(pivot_key, None) is not None:
                self.stats.invalidations += 1

    def reassemble(self, pivot_key: PivotKey) -> None:
        """Eagerly rebuild one instance (no-op if its pivot is gone)."""
        with self._lock:
            values = self.engine.get(self.view_object.pivot_relation, pivot_key)
            if values is None:
                self._instances.pop(pivot_key, None)
                return
            self.stats.refreshes += 1
            self._assemble_into_cache(pivot_key, values, count_miss=False)

    def rebuild(self) -> None:
        """Recompute the entire extent (the full-refresh policy)."""
        with self._lock:
            self._instances.clear()
            self.stats.full_refreshes += 1
            for values in self.engine.scan(self.view_object.pivot_relation):
                pivot_key = self._pivot_schema.key_of(values)
                self._assemble_into_cache(pivot_key, values, count_miss=False)

    def drop_all(self) -> None:
        with self._lock:
            self._instances.clear()

    def close(self) -> None:
        """Detach from the changelog (the cache stops maintaining itself)."""
        self.changelog.unsubscribe(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MaterializedView({self.view_object.name!r}, "
            f"policy={self.policy!r}, cached={len(self)})"
        )


class MaterializedStore:
    """The materialized views of one engine, keyed by object name."""

    def __init__(
        self, engine: Engine, audit: Optional["AuditLog"] = None
    ) -> None:
        self.engine = engine
        self.audit = audit
        self._views: Dict[str, MaterializedView] = {}

    def materialize(
        self, view_object: ViewObjectDefinition, policy: str = LAZY
    ) -> MaterializedView:
        if view_object.name in self._views:
            raise ViewObjectError(
                f"view object {view_object.name!r} is already materialized"
            )
        view = MaterializedView(
            view_object, self.engine, policy, audit=self.audit
        )
        self._views[view_object.name] = view
        return view

    def dematerialize(self, name: str) -> None:
        try:
            view = self._views.pop(name)
        except KeyError:
            raise ViewObjectError(
                f"view object {name!r} is not materialized"
            ) from None
        view.close()

    def view(self, name: str) -> Optional[MaterializedView]:
        return self._views.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def __len__(self) -> int:
        return len(self._views)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._views)

    def stats(self) -> CacheStats:
        """Aggregate counters across every materialized view."""
        total = CacheStats()
        for view in self._views.values():
            total.merge(view.stats)
        return total

    def stats_by_view(self) -> Dict[str, Dict[str, float]]:
        return {name: view.stats.as_dict() for name, view in self._views.items()}

    def sync_all(self) -> int:
        return sum(view.sync() for view in self._views.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MaterializedStore({', '.join(self.names) or 'empty'})"
