"""Changelog-driven maintenance of materialized view objects.

The maintainer owns a *high-water mark* into the engine's
:class:`~repro.relational.changelog.ChangeLog`. Each ``sync`` consumes
the records appended since that mark and repairs the cache under one of
three policies:

* ``lazy`` — affected pivot keys are evicted; the next request for one
  re-assembles it (pay-per-read).
* ``eager`` — affected instances are re-assembled immediately, so reads
  after a sync never pay assembly cost (pay-per-write).
* ``full-refresh`` — any change rebuilds the whole extent; no dependency
  analysis at all. The baseline the incremental policies must beat, kept
  selectable because for tiny extents it can genuinely win.

Rollbacks arrive as changelog *truncations* below the high-water mark:
everything the cache absorbed past the truncation point was undone
behind its back, so the cache drops its entries wholesale and rewinds
the mark (see :meth:`Maintainer.rewind`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.errors import ViewObjectError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.materialize.store import MaterializedView

__all__ = ["Maintainer", "POLICIES", "LAZY", "EAGER", "FULL_REFRESH"]

LAZY = "lazy"
EAGER = "eager"
FULL_REFRESH = "full-refresh"
POLICIES = (LAZY, EAGER, FULL_REFRESH)


class Maintainer:
    """Applies pending changelog records to one materialized view."""

    def __init__(self, view: "MaterializedView", policy: str = LAZY) -> None:
        if policy not in POLICIES:
            raise ViewObjectError(
                f"unknown maintenance policy {policy!r}; choose from {POLICIES}"
            )
        self.view = view
        self.policy = policy
        self.high_water = len(view.changelog)
        # Audit attribution: when the view carries an audit log, each
        # sync round is attributed to the audit head ASN at the time —
        # the view update whose changelog records triggered the
        # maintenance. ``attributions`` maps ASN -> records absorbed.
        self.last_attributed_asn = 0
        self.attributions: Dict[int, int] = {}

    # -- introspection ----------------------------------------------------------

    def staleness(self) -> int:
        """Pending changelog records the cache has not yet consumed."""
        return len(self.view.changelog) - self.high_water

    # -- forward maintenance ----------------------------------------------------

    def sync(self) -> int:
        """Consume pending records; returns how many were applied."""
        view = self.view
        records = view.changelog.since(self.high_water)
        if not records:
            return 0
        self.high_water = len(view.changelog)
        view.stats.records_applied += len(records)
        audit = getattr(view, "audit", None)
        if audit is not None:
            asn = audit.head_asn()
            self.last_attributed_asn = asn
            self.attributions[asn] = (
                self.attributions.get(asn, 0) + len(records)
            )
        if self.policy == FULL_REFRESH:
            view.rebuild()
            return len(records)
        affected = set()
        index = view.dependencies
        for record in records:
            if index.tracks(record.relation):
                affected |= index.affected_pivots(view.engine, record)
        for pivot_key in affected:
            view.evict(pivot_key)
        if self.policy == EAGER:
            for pivot_key in affected:
                view.reassemble(pivot_key)
        return len(records)

    # -- rollback ----------------------------------------------------------------

    def rewind(self, mark: int) -> None:
        """React to ``ChangeLog.truncate(mark)``.

        Records at positions >= ``mark`` never happened. If the cache
        already consumed some of them its contents may reflect an
        aborted translation, so it is dropped entirely; pending records
        that were truncated before being consumed require nothing.
        """
        if mark >= self.high_water:
            return
        self.high_water = mark
        self.view.stats.rollbacks += 1
        self.view.drop_all()
