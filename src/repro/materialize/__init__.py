"""Materialized view objects with incremental, changelog-driven upkeep.

The paper assembles view-object instances dynamically on every request
(Figure 4); this package caches the assembled trees and maintains them
by *delta propagation*: the engine's changelog supplies the stream of
base-table changes, a :class:`DependencyIndex` maps each change to the
affected pivot keys by walking the projection tree's connection paths in
reverse, and a :class:`Maintainer` repairs the cache under a selectable
policy (``lazy``, ``eager``, ``full-refresh``). Transactions compose
correctly: a rollback truncates the changelog, which rolls the cache
back too.
"""

from repro.materialize.dependency import DependencyIndex
from repro.materialize.maintainer import (
    EAGER,
    FULL_REFRESH,
    LAZY,
    Maintainer,
    POLICIES,
)
from repro.materialize.stats import CacheStats
from repro.materialize.store import MaterializedStore, MaterializedView

__all__ = [
    "CacheStats",
    "DependencyIndex",
    "Maintainer",
    "MaterializedStore",
    "MaterializedView",
    "POLICIES",
    "LAZY",
    "EAGER",
    "FULL_REFRESH",
]
