"""Counters describing how a materialized view object is behaving.

The numbers answer the operational questions the ROADMAP's "fast as the
hardware allows" goal raises: how often does the cache actually serve a
request (``hits`` vs ``misses``), how much maintenance work does the
changelog stream cause (``records_applied``, ``invalidations``,
``refreshes``, ``full_refreshes``), and how far behind the base tables
the cache currently is (``staleness`` — pending, unconsumed changelog
records).
"""

from __future__ import annotations

from typing import Dict

__all__ = ["CacheStats"]


class CacheStats:
    """Mutable per-view cache counters (also aggregated per store)."""

    __slots__ = (
        "hits",
        "misses",
        "invalidations",
        "refreshes",
        "full_refreshes",
        "records_applied",
        "rollbacks",
        "stale_reads",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.refreshes = 0
        self.full_refreshes = 0
        self.records_applied = 0
        self.rollbacks = 0
        # Requests answered from the cache *without* consulting the
        # engine — degraded-mode serving. Possibly out of date.
        self.stale_reads = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of instance requests served from cache (0.0 if none)."""
        total = self.requests
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Add ``other``'s counters into this one (store aggregation)."""
        for field in self.__slots__:
            setattr(self, field, getattr(self, field) + getattr(other, field))
        return self

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {f: getattr(self, f) for f in self.__slots__}
        out["hit_rate"] = round(self.hit_rate, 4)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{f}={getattr(self, f)}" for f in self.__slots__)
        return f"CacheStats({inner})"
