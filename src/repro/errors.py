"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class. The hierarchy mirrors the
layers of the system: relational engine errors, structural-model errors,
view-object errors, and update-translation errors.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------


class RelationalError(ReproError):
    """Base class for errors raised by the relational engine."""


class SchemaError(RelationalError):
    """A relation schema is malformed (bad key, duplicate attribute, ...)."""


class DomainError(RelationalError):
    """A value does not belong to the domain declared for its attribute."""


class UnknownRelationError(RelationalError):
    """A relation name does not exist in the database catalog."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class UnknownAttributeError(RelationalError):
    """An attribute name does not exist in a relation schema."""

    def __init__(self, relation: str, attribute: str) -> None:
        super().__init__(f"relation {relation!r} has no attribute {attribute!r}")
        self.relation = relation
        self.attribute = attribute


class DuplicateKeyError(RelationalError):
    """An insertion would violate a primary-key constraint."""

    def __init__(self, relation: str, key: tuple) -> None:
        super().__init__(f"duplicate key {key!r} in relation {relation!r}")
        self.relation = relation
        self.key = key


class NoSuchRowError(RelationalError):
    """A deletion or replacement referenced a row that does not exist."""

    def __init__(self, relation: str, key: tuple) -> None:
        super().__init__(f"no row with key {key!r} in relation {relation!r}")
        self.relation = relation
        self.key = key


class TransactionError(RelationalError):
    """Illegal transaction operation (commit without begin, nested misuse),
    or a commit that failed and was rolled back (see ``__cause__``)."""


class TransientEngineError(RelationalError):
    """A storage-level failure that is expected to clear on retry.

    Raised for conditions like sqlite's ``database is locked`` / busy
    states and by the fault-injection harness. A
    :class:`~repro.relational.retry.RetryPolicy` treats this class (and
    only errors it classifies as transient) as retryable; everything
    else is permanent and propagates immediately.
    """


class JournalError(RelationalError):
    """The plan journal is unusable (corrupt record, unknown entry id)."""


class AuditError(ReproError):
    """The audit log is unusable or inconsistent with the live state
    (corrupt record, unknown ASN, or a reconstruction that fails its
    verification against the head)."""


class DegradedServiceError(ReproError):
    """The serving layer is in the DEGRADED health state.

    Writes fail fast with this error while the circuit breaker is open;
    reads raise it only when no materialized cache can serve a stale
    answer. The breaker probes its way back to HEALTHY once the engine
    stops faulting.
    """


# ---------------------------------------------------------------------------
# Replication
# ---------------------------------------------------------------------------


class ReplicationError(ReproError):
    """Base class for errors raised by the per-shard replication layer."""


class ReplicationQuorumError(DegradedServiceError):
    """A write could not reach its replication quorum and was aborted.

    Derives from :class:`DegradedServiceError` so the HTTP layer maps it
    to 503 + ``Retry-After``: the condition is expected to clear once
    the shipping links heal or a failover completes.
    """


class PrimaryDownError(DegradedServiceError):
    """The shard's primary is unreachable and no failover has completed
    yet (the failure detector has not crossed its miss threshold)."""


class FailoverInProgressError(DegradedServiceError):
    """A failover is promoting a replica right now; retry shortly."""


class FencedWriteError(ReplicationError):
    """A ship carried a stale epoch number — a fenced (zombie) primary
    tried to stream after a failover already promoted its successor."""


class ReplicaDivergenceError(ReplicationError):
    """A replica's state stopped matching the shipped after-images
    byte-for-byte; the replica is excluded from promotion."""


# ---------------------------------------------------------------------------
# Structural model
# ---------------------------------------------------------------------------


class StructuralError(ReproError):
    """Base class for errors in structural-model definitions."""


class ConnectionError(StructuralError):
    """A connection definition violates Definitions 2.1-2.4 of the paper.

    .. warning:: This name shadows the builtin :class:`ConnectionError`
       when imported unqualified, silently changing what
       ``except ConnectionError:`` means in the importing module. Prefer
       the unambiguous alias :data:`StructuralConnectionError`.
    """


#: Unshadowed alias for :class:`ConnectionError` (which collides with the
#: builtin of the same name). New code should catch and raise this name.
StructuralConnectionError = ConnectionError


class IntegrityError(StructuralError):
    """Data violates the integrity rules carried by a connection."""

    def __init__(self, message: str, violations: Optional[list] = None) -> None:
        super().__init__(message)
        self.violations = violations or []


# ---------------------------------------------------------------------------
# View objects
# ---------------------------------------------------------------------------


class ViewObjectError(ReproError):
    """Base class for errors in view-object definitions and instances."""


class PivotError(ViewObjectError):
    """The pivot relation violates Definition 3.2 of the paper."""


class ProjectionError(ViewObjectError):
    """A projection in a view object is malformed."""


class InstantiationError(ViewObjectError):
    """A view-object instance could not be assembled from base tuples."""


class QueryError(ViewObjectError):
    """An object query is syntactically or semantically invalid."""


class QuerySyntaxError(QueryError):
    """The object-query text failed to parse."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


# ---------------------------------------------------------------------------
# Update translation
# ---------------------------------------------------------------------------


class UpdateError(ReproError):
    """Base class for errors during view-object update translation."""


class LocalValidationError(UpdateError):
    """Step 1 failed: the request violates the view-object definition."""


class PropagationError(UpdateError):
    """Step 2 failed: in-object propagation of key changes is impossible."""


class TranslationError(UpdateError):
    """Step 3 failed: no valid translation into database operations."""


class UpdateRejectedError(TranslationError):
    """The chosen translator rejects this update (policy says no).

    This mirrors the paper's behaviour: once a restrictive translator is
    selected at definition time, updates that need a forbidden database
    operation are rejected and the transaction is rolled back.
    """

    def __init__(self, message: str, relation: Optional[str] = None) -> None:
        super().__init__(message)
        self.relation = relation


class GlobalValidationError(UpdateError):
    """Step 4 failed: the translated updates break structural integrity."""


# ---------------------------------------------------------------------------
# Dialog
# ---------------------------------------------------------------------------


class DialogError(ReproError):
    """Base class for errors in the translator-choosing dialog."""


class AnswerError(DialogError):
    """An answer source produced an unusable answer."""


# ---------------------------------------------------------------------------
# Strategy validation
# ---------------------------------------------------------------------------


class StrategyError(ReproError):
    """Base class for errors raised by the strategy-validation pass."""


class UnsafeTranslatorError(StrategyError):
    """A translator configuration was refused at definition time.

    Raised when a :class:`~repro.core.updates.translator.Translator`
    is constructed with ``strictness="refuse"`` and the static checker
    classifies the policy CRITICAL: some operation class the policy
    enables can never be translated, or one of its repair rules can
    never be satisfied. The offending
    :class:`~repro.strategy.risk.RiskReport` rides along as ``report``.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report
