"""repro — reproduction of *Updating Relational Databases through
Object-Based Views* (Barsalou, Keller, Siambela, Wiederhold; SIGMOD 1991).

Layers, bottom-up:

* :mod:`repro.relational` — a miniature relational DBMS (in-memory and
  sqlite3 backends behind one engine interface);
* :mod:`repro.structural` — the structural model: ownership, reference,
  and subset connections with their integrity rules (Section 2);
* :mod:`repro.core` — view objects: information metric, tree building,
  instantiation, the object query language, and the update-translation
  algorithms VO-CD / VO-CI / VO-R (Sections 3 and 5);
* :mod:`repro.dialog` — the translator-choosing dialog (Section 6);
* :mod:`repro.keller` — the flat relational-view baseline (Section 4);
* :mod:`repro.workloads` — the paper's university database plus
  hospital, CAD, and synthetic workloads;
* :class:`repro.Penguin` — the high-level facade named after the
  authors' prototype.
"""

from repro.errors import (
    DegradedServiceError,
    GlobalValidationError,
    IntegrityError,
    JournalError,
    LocalValidationError,
    QueryError,
    ReproError,
    TransientEngineError,
    TranslationError,
    UpdateError,
    UpdateRejectedError,
    ViewObjectError,
)
from repro.core import (
    ComponentChange,
    InformationMetric,
    Instance,
    Instantiator,
    MetricWeights,
    ViewObjectDefinition,
    analyze_island,
    build_instance,
    define_view_object,
    diff_instances,
    render_diff,
)
from repro.core.query import execute_query, parse_query
from repro.core.updates import (
    ReferenceRepair,
    RelationPolicy,
    Translator,
    TranslatorPolicy,
)
from repro.dialog import (
    ConstantAnswers,
    MappingAnswers,
    ScriptedAnswers,
    choose_translator,
)
from repro.penguin import Penguin
from repro.relational import (
    Engine,
    FaultInjectingEngine,
    FaultPlan,
    FileJournal,
    MemoryEngine,
    MemoryJournal,
    RetryPolicy,
    SimulatedCrash,
    SqliteEngine,
)
from repro.serve import CircuitBreaker, ConcurrentPenguin, ReadWriteLock
from repro.structural import (
    Connection,
    ConnectionKind,
    IntegrityChecker,
    StructuralSchema,
)

__version__ = "1.0.0"

__all__ = [
    "Penguin",
    "ConcurrentPenguin",
    "ReadWriteLock",
    "StructuralSchema",
    "Connection",
    "ConnectionKind",
    "IntegrityChecker",
    "Engine",
    "MemoryEngine",
    "SqliteEngine",
    "InformationMetric",
    "MetricWeights",
    "ViewObjectDefinition",
    "define_view_object",
    "analyze_island",
    "Instance",
    "build_instance",
    "Instantiator",
    "diff_instances",
    "render_diff",
    "ComponentChange",
    "execute_query",
    "parse_query",
    "Translator",
    "TranslatorPolicy",
    "RelationPolicy",
    "ReferenceRepair",
    "choose_translator",
    "ScriptedAnswers",
    "MappingAnswers",
    "ConstantAnswers",
    "ReproError",
    "ViewObjectError",
    "UpdateError",
    "UpdateRejectedError",
    "LocalValidationError",
    "TranslationError",
    "GlobalValidationError",
    "IntegrityError",
    "QueryError",
    "TransientEngineError",
    "JournalError",
    "DegradedServiceError",
    "FaultInjectingEngine",
    "FaultPlan",
    "SimulatedCrash",
    "RetryPolicy",
    "MemoryJournal",
    "FileJournal",
    "CircuitBreaker",
    "__version__",
]
