"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — regenerate the paper's figures and the Section 6 dialog
  transcript on the university workload;
* ``dump --workload NAME DIR`` — generate a workload and write its
  structural schema and data as JSON;
* ``check DIR`` — reload a dumped workload and run the structural
  integrity checker;
* ``query --workload NAME --object OBJECT TEXT`` — run an object query
  against a freshly generated workload and print the instances;
* ``materialize --workload NAME --object OBJECT`` — run a read-heavy
  query loop twice, dynamically instantiated and then served from a
  materialized view-object cache, and print the speedup plus the
  cache's maintenance statistics;
* ``bench-bulk --count N --backend sqlite|memory`` — insert N synthetic
  course instances through the per-instance loop and then through the
  batched ``insert_many`` pipeline, and print both timings, the
  speedup, and the coalesced plan's operation counts;
* ``chaos --seed S --ops N`` — run the seeded fault-injection campaign
  over the hospital workload (crash sweep with journal recovery,
  transient-fault bulk run, degraded-mode serving) and report whether
  every resilience invariant held;
* ``chaos-failover --seed S`` — run the seeded replication chaos
  campaign: primaries are killed at every shipping and promotion
  checkpoint (and mid-way through a concurrent load), and the report
  asserts zero committed-write loss, zero torn states, byte-identical
  promoted replicas, and a clean audit-replay oracle;
* ``trace`` — run the canonical Figure-4 workload (query, EXPLAIN,
  insert, get, delete) with tracing on and print the span trees, the
  update EXPLAIN, and any slow-log entries; ``--jsonl FILE`` exports
  the spans as JSON Lines; ``--follow REQUEST_ID`` instead issues one
  re-homing HTTP write against a replicated 2-shard cluster and
  prints the assembled cross-thread trace, failing unless every leg
  (HTTP task, micro-batch, translation, both 2PC participants, log
  ship, replica applies) is present under one trace id;
* ``flight`` — kill a primary in a replicated deployment and dump the
  flight-recorder bundle the failover anomaly triggers (last spans,
  metrics snapshot, audit tails from every stack); ``--inspect FILE``
  renders an existing bundle;
* ``metrics`` — run the same workload with the metrics registry live
  and print the Prometheus-style exposition (or ``--json`` snapshot);
* ``audit`` — run a deterministic audited workload on the hospital
  schema (a Figure-4-style insert/replace/delete round trip plus a
  seeded mixed batch) and interrogate the trail: ``tail`` prints the
  newest audit records, ``why``/``history`` print a tuple's provenance
  chain and image sequence, ``as-of`` reconstructs a past state, and
  ``replay`` re-executes the log onto a fresh engine and verifies the
  final state byte-for-byte;
* ``validate --workload NAME | --sweep N`` — run the definition-time
  strategy checker and the round-trip law harness against a workload's
  spanning object, or sweep N seeded random chain cases under seeded
  random policies and assert that every law-falsified configuration
  carries a >=HIGH risk finding; ``--adversarial`` grafts hostile
  schema hazards onto the sweep, ``--json FILE`` exports the reports.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.core.dependency_island import analyze_island
from repro.core.query import execute_query
from repro.core.tree_builder import build_maximal_tree
from repro.core.information_metric import InformationMetric
from repro.dialog.answers import ScriptedAnswers
from repro.dialog.drivers import run_replacement_dialog
from repro.dialog.transcript import Transcript
from repro.core.updates.policy import TranslatorPolicy
from repro.materialize.maintainer import POLICIES
from repro.penguin import Penguin
from repro.relational.memory_engine import MemoryEngine
from repro.relational.persistence import dump_database, load_database
from repro.structural.integrity import IntegrityChecker
from repro.structural.rendering import to_ascii
from repro.structural.serialization import graph_from_dict, graph_to_dict
from repro.workloads.cad import assembly_object, cad_schema, populate_cad
from repro.workloads.figures import alternate_course_object, course_info_object
from repro.workloads.hospital import (
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)
from repro.workloads.university import populate_university, university_schema

WORKLOADS = {
    "university": (university_schema, populate_university),
    "hospital": (hospital_schema, populate_hospital),
    "cad": (cad_schema, populate_cad),
}

OBJECTS = {
    ("university", "course_info"): course_info_object,
    ("university", "course_staffing"): alternate_course_object,
    ("hospital", "patient_chart"): patient_chart_object,
    ("cad", "assembly_bom"): assembly_object,
}

PAPER_ANSWERS = [
    True, True, True, False,
    True, True, True,
    True, True, True,
    True, True, False,
    True, True, True,
]


def _build(workload: str):
    schema_factory, populate = WORKLOADS[workload]
    graph = schema_factory()
    engine = MemoryEngine()
    graph.install(engine)
    populate(engine)
    return graph, engine


def cmd_demo(args: argparse.Namespace) -> int:
    graph, engine = _build("university")
    print("=== Figure 1: structural schema ===")
    print(to_ascii(graph))
    metric = InformationMetric()
    subgraph = metric.extract_subgraph(graph, "COURSES")
    print("\n=== Figure 2(a): relevant subgraph G ===")
    print(subgraph.describe())
    tree = build_maximal_tree(graph, subgraph, metric.weights)
    print("\n=== Figure 2(b): maximal tree T ===")
    print(tree.describe())
    omega = course_info_object(graph)
    print("\n=== Figure 2(c): view object ω ===")
    print(omega.describe())
    print("\n=== Section 5: island analysis ===")
    print(analyze_island(omega).describe())
    omega_prime = alternate_course_object(graph)
    print("\n=== Figure 3: ω' ===")
    print(omega_prime.describe())
    print("\n=== Figure 4: graduate courses with < 5 students ===")
    for instance in execute_query(
        omega, engine, "level = 'graduate' and count(STUDENT) < 5"
    ):
        print(instance.describe())
    print("\n=== Section 6: translator dialog (replacement portion) ===")
    policy = TranslatorPolicy()
    transcript = Transcript()
    run_replacement_dialog(
        omega, ScriptedAnswers(PAPER_ANSWERS), policy, transcript
    )
    print(transcript.render())
    return 0


def cmd_dump(args: argparse.Namespace) -> int:
    graph, engine = _build(args.workload)
    target = Path(args.directory)
    target.mkdir(parents=True, exist_ok=True)
    (target / "schema.json").write_text(
        json.dumps(graph_to_dict(graph), indent=2)
    )
    (target / "data.json").write_text(json.dumps(dump_database(engine)))
    print(f"dumped workload {args.workload!r} to {target}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    target = Path(args.directory)
    graph = graph_from_dict(
        json.loads((target / "schema.json").read_text())
    )
    engine = MemoryEngine()
    counts = load_database(
        engine, json.loads((target / "data.json").read_text())
    )
    print("loaded:", counts)
    violations = IntegrityChecker(graph).check(engine)
    if not violations:
        print("structural integrity: OK")
        return 0
    print(f"structural integrity: {len(violations)} violation(s)")
    for violation in violations[:20]:
        print("  -", violation.message)
    return 1


def cmd_query(args: argparse.Namespace) -> int:
    factory = OBJECTS.get((args.workload, args.object))
    if factory is None:
        known = sorted(
            name for workload, name in OBJECTS if workload == args.workload
        )
        print(
            f"unknown object {args.object!r} for workload "
            f"{args.workload!r}; known: {known}",
            file=sys.stderr,
        )
        return 2
    graph, engine = _build(args.workload)
    view_object = factory(graph)
    instances = execute_query(view_object, engine, args.text)
    print(f"{len(instances)} instance(s)")
    for instance in instances:
        print(instance.describe())
    return 0


def cmd_materialize(args: argparse.Namespace) -> int:
    known = sorted(
        name for workload, name in OBJECTS if workload == args.workload
    )
    if args.object is None:
        args.object = known[0]
    factory = OBJECTS.get((args.workload, args.object))
    if factory is None:
        print(
            f"unknown object {args.object!r} for workload "
            f"{args.workload!r}; known: {known}",
            file=sys.stderr,
        )
        return 2

    def build_session() -> Penguin:
        graph, engine = _build(args.workload)
        session = Penguin(graph, engine=engine, install=False)
        session.register_object(factory(graph))
        return session

    def run_loop(session: Penguin) -> float:
        """args.queries queries with a self-replace write every
        args.update_every iterations (0 disables writes)."""
        pivot = session.object(args.object).pivot_relation
        schema = session.engine.schema(pivot)
        rows = list(session.engine.scan(pivot))
        started = time.perf_counter()
        for i in range(args.queries):
            if args.update_every and i % args.update_every == args.update_every - 1:
                values = rows[i % len(rows)]
                session.engine.replace(pivot, schema.key_of(values), values)
            session.query(args.object, args.text)
        return time.perf_counter() - started

    baseline = build_session()
    uncached = run_loop(baseline)

    session = build_session()
    session.materialize(args.object, policy=args.policy)
    cached = run_loop(session)

    rate = lambda seconds: args.queries / seconds if seconds else float("inf")
    print(
        f"workload={args.workload} object={args.object} "
        f"queries={args.queries} update_every={args.update_every or 'never'}"
    )
    print(f"dynamic instantiation : {uncached:8.3f}s  ({rate(uncached):8.1f} q/s)")
    print(
        f"materialized ({args.policy:12s}): {cached:8.3f}s  "
        f"({rate(cached):8.1f} q/s)"
    )
    speedup = uncached / cached if cached else float("inf")
    print(f"speedup               : {speedup:8.1f}x")
    view = session.materialized(args.object)
    print("cache stats           :")
    for field, value in view.stats.as_dict().items():
        print(f"  {field:<16} {value}")
    print(f"  {'staleness':<16} {view.staleness()}")
    return 0


def cmd_bench_bulk(args: argparse.Namespace) -> int:
    import tempfile

    from repro.relational.sqlite_engine import SqliteEngine

    def new_course(i: int) -> dict:
        return {
            "course_id": f"BULK{i:05d}",
            "title": f"Bulk Course {i}",
            "units": 3,
            "level": "graduate",
            "dept_name": "Computer Science",
            "DEPARTMENT": [],
            "CURRICULUM": [],
            "GRADES": [],
        }

    def build_session(directory: str, label: str) -> Penguin:
        graph = university_schema()
        if args.backend == "sqlite":
            engine = SqliteEngine(f"{directory}/{label}.db")
        else:
            engine = MemoryEngine()
        session = Penguin(graph, engine=engine)
        populate_university(session.engine)
        session.register_object(course_info_object(graph))
        return session

    batch = [new_course(i) for i in range(args.count)]
    with tempfile.TemporaryDirectory() as directory:
        session = build_session(directory, "sequential")
        started = time.perf_counter()
        for data in batch:
            session.insert("course_info", data)
        sequential = time.perf_counter() - started

        session = build_session(directory, "bulk")
        started = time.perf_counter()
        plan = session.insert_many("course_info", batch)
        bulk = time.perf_counter() - started

    print(f"backend={args.backend} instances={args.count}")
    print(f"per-instance loop : {sequential:8.3f}s")
    print(f"insert_many       : {bulk:8.3f}s")
    speedup = sequential / bulk if bulk else float("inf")
    print(f"speedup           : {speedup:8.1f}x")
    print(
        f"coalesced plan    : {len(plan)} operations "
        f"({plan.count('insert')} inserts, "
        f"{plan.count('replace')} replaces, "
        f"{plan.count('delete')} deletes) over "
        f"{len(plan.relations_touched())} relation(s)"
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import run_campaign

    report = run_campaign(
        seed=args.seed, ops=args.ops, patients=args.patients
    )
    print(report.summary())
    return 0 if report.ok else 1


def cmd_chaos_failover(args: argparse.Namespace) -> int:
    from repro.replicate.campaign import run_failover_campaign

    report = run_failover_campaign(
        seed=args.seed, patients=args.patients, writes=args.writes
    )
    print(report.summary())
    return 0 if report.ok else 1


def _observed_session() -> Penguin:
    graph, engine = _build("university")
    session = Penguin(graph, engine=engine, install=False)
    session.register_object(course_info_object(graph))
    return session


def _figure4_course(session: Penguin) -> dict:
    """The canonical insert: a graduate course in an existing department."""
    dept = session.engine.get("DEPARTMENT", ("Computer Science",))
    return {
        "course_id": "CS999",
        "title": "View Objects",
        "units": 3,
        "level": "graduate",
        "dept_name": "Computer Science",
        "DEPARTMENT": [{"dept_name": dept[0], "building": dept[1]}],
        "CURRICULUM": [],
        "GRADES": [],
    }


def _run_figure4_workload(session: Penguin) -> str:
    """Figure 4's query plus one insert/get/delete round trip.

    Returns the rendered update EXPLAIN of the insert, produced before
    the insert executes (the explanation never touches the engine).
    """
    from repro.core.updates.operations import CompleteInsertion

    course = _figure4_course(session)
    session.query("course_info", "level = 'graduate' and count(STUDENT) < 5")
    explanation = session.explain_update(
        "course_info", CompleteInsertion(course)
    )
    session.insert("course_info", course)
    session.get("course_info", ("CS999",))
    session.delete("course_info", ("CS999",))
    return explanation.render()


def _http_json(url, method="GET", payload=None, headers=None):
    """One JSON request; returns (status, body, response headers)."""
    import urllib.request

    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    request.add_header("Content-Type", "application/json")
    for key, value in (headers or {}).items():
        request.add_header(key, value)
    with urllib.request.urlopen(request, timeout=10) as response:
        return (
            response.status,
            json.loads(response.read() or b"{}"),
            dict(response.headers),
        )


#: Span names one followed cluster write must produce, in causal order.
#: Each entry accepts any of its aliases — the owner-shard translation
#: spans as "translate" on the single-shard batch path and "explain"
#: (propagate/validate children) on the cross-shard path.
TRACE_LEGS = (
    ("http.request",),              # asyncio front end
    ("serve.batch",),               # micro-batch executor fragment
    ("translate", "explain"),       # owner-shard view-update translation
    ("shard.two_phase",),           # cross-shard coordinator
    ("2pc.prepare",),               # participant intent legs
    ("2pc.apply",),                 # participant apply legs
    ("replicate.ship",),            # primary -> replica log shipping
    ("replica.apply",),             # replica applier-thread fragments
)


def _trace_follow(args: argparse.Namespace) -> int:
    """One HTTP write against a 2-shard, 2-replica cluster, followed
    end to end by its request id: the write re-homes a patient chart
    to the other shard, so the assembled trace must contain the HTTP
    task, the micro-batch fragment, the owner-shard translation, both
    2PC participant legs, and each replica's ship+apply fragments —
    all under one trace id."""
    import repro.obs as obs
    from repro.obs.cluster import TraceAssembler
    from repro.serve.http import PenguinServer

    request_id = args.follow
    hub = obs.configure(slow_threshold=args.slow_threshold)
    assembled = None
    try:
        sharded = _build_sharded_hospital(shards=2, patients=6, replicas=2)
        server = PenguinServer(sharded, port=0, batch_window=0.002)
        handle = server.in_background()
        try:
            router = sharded.router
            source = next(
                pid for pid in range(70000, 70512)
                if router.shard_of((pid,)) == 0
            )
            target = next(
                pid for pid in range(71000, 71512)
                if router.shard_of((pid,)) == 1
            )
            rng = random.Random(0)
            _http_json(
                f"{handle.url}/objects/patient_chart",
                "POST",
                {"instance": _audit_chart(source, rng)},
            )
            status, _, headers = _http_json(
                f"{handle.url}/objects/patient_chart/{source}",
                "PUT",
                {"instance": _audit_chart(target, rng)},
                {"X-Request-Id": request_id},
            )
            print(
                f"PUT /objects/patient_chart/{source} -> {status} "
                f"(re-homed patient {source} -> {target} across shards, "
                f"X-Request-Id {headers.get('X-Request-Id')})"
            )
            # Replica applies land on their applier threads after the
            # ack; poll the assembler until both fragments arrive.
            assembler = TraceAssembler(hub.tracer)
            deadline = time.perf_counter() + 10.0
            while time.perf_counter() < deadline:
                assembled = assembler.assemble(request_id=request_id)
                if (
                    assembled is not None
                    and len(assembled.find_all("replica.apply")) >= 2
                ):
                    break
                time.sleep(0.02)
        finally:
            handle.stop()
            sharded.close()
    finally:
        obs.disable()
    if assembled is None:
        print(f"no trace found for request id {request_id!r}")
        return 1
    print()
    print(assembled.render())
    names = set(assembled.span_names())
    apply_shards = sorted(
        str(span.attributes.get("shard"))
        for span in assembled.find_all("2pc.apply")
    )
    checks = [
        (
            f"leg {' / '.join(aliases)} present",
            any(name in names for name in aliases),
        )
        for aliases in TRACE_LEGS
    ]
    checks.append(
        ("2pc apply legs on both shards", apply_shards == ["0", "1"])
    )
    checks.append(
        ("audit cross-link recorded", bool(assembled.audit_asns()))
    )
    print()
    ok = True
    for label, passed in checks:
        ok = ok and passed
        print(f"  [{'PASS' if passed else 'FAIL'}] {label}")
    print("trace-follow:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    import repro.obs as obs

    if args.follow:
        return _trace_follow(args)

    session = _observed_session()
    hub = obs.configure(slow_threshold=args.slow_threshold)
    try:
        explain_text = _run_figure4_workload(session)
    finally:
        obs.disable()
    print("=== update EXPLAIN (computed without executing) ===")
    print(explain_text)
    print("\n=== span trees (Figure-4 workload) ===")
    print(hub.tracer.render(show_durations=not args.no_durations))
    if hub.slow_log is not None and len(hub.slow_log):
        print("\n=== slow operations (threshold "
              f"{args.slow_threshold * 1000:.0f}ms) ===")
        print(hub.slow_log.render())
    if args.jsonl:
        written = hub.tracer.export_jsonl(args.jsonl)
        print(f"\nwrote {written} root span(s) to {args.jsonl}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    import repro.obs as obs

    session = _observed_session()
    hub = obs.configure()
    try:
        _run_figure4_workload(session)
    finally:
        obs.disable()
    if args.json:
        print(json.dumps(hub.metrics.snapshot(), indent=2, default=str))
    else:
        print(hub.metrics.render_text())
    return 0


def _audit_chart(pid: int, rng: random.Random) -> dict:
    """One synthetic patient chart (5 base tuples across 5 relations)."""
    return {
        "patient_id": pid,
        "name": f"Audit Patient {pid}",
        "birth_year": 1930 + rng.randrange(80),
        "ward_name": rng.choice(["East-1", "East-2", "West-1", "ICU", None]),
        "VISIT": [
            {
                "patient_id": pid,
                "visit_no": 1,
                "visit_date": "1991-05-29",
                "physician_id": 9000 + rng.randrange(8),
                "reason": "audit",
                "DIAGNOSIS": [
                    {
                        "patient_id": pid,
                        "visit_no": 1,
                        "diag_no": 1,
                        "code": rng.choice(["hypertension", "migraine"]),
                        "severity": rng.choice(["mild", "moderate"]),
                    }
                ],
                "PRESCRIPTION": [
                    {
                        "patient_id": pid,
                        "visit_no": 1,
                        "rx_no": 1,
                        "med_id": "MED-01",
                        "days": 5 + rng.randrange(25),
                        "MEDICATION": [],
                    }
                ],
                "LAB_RESULT": [
                    {
                        "patient_id": pid,
                        "visit_no": 1,
                        "test_no": 1,
                        "test_name": "CBC",
                        "value": round(rng.uniform(0.5, 200.0), 1),
                    }
                ],
                "PHYSICIAN": [],
            }
        ],
    }


FIGURE4_PATIENT = 77001


def _run_audit_workload(ops: int, seed: int) -> Penguin:
    """Build an audited hospital session and run the scripted workload.

    The workload is deterministic per ``(ops, seed)``: a Figure-4-style
    insert/replace/delete round trip on patient ``FIGURE4_PATIENT``,
    then ``ops`` seeded mixed view updates (insert-heavy so the trail
    ends with live tuples to interrogate).
    """
    from repro.obs.audit import MemoryAuditLog

    graph, engine = _build("hospital")
    session = Penguin(
        graph, engine=engine, install=False, audit=MemoryAuditLog()
    )
    session.register_object(patient_chart_object(graph))

    rng = random.Random(seed)
    chart = _audit_chart(FIGURE4_PATIENT, rng)
    session.insert("patient_chart", chart)
    revised = dict(chart)
    revised["name"] = "Audit Patient (revised)"
    revised["ward_name"] = "ICU"
    session.replace("patient_chart", (FIGURE4_PATIENT,), revised)
    session.delete("patient_chart", (FIGURE4_PATIENT,))

    live: list = []
    next_pid = 80000
    for _ in range(ops):
        roll = rng.random()
        if not live or roll < 0.55:
            pid = next_pid
            next_pid += 1
            session.insert("patient_chart", _audit_chart(pid, rng))
            live.append(pid)
        elif roll < 0.85:
            pid = rng.choice(live)
            session.replace(
                "patient_chart", (pid,), _audit_chart(pid, rng)
            )
        else:
            pid = live.pop(rng.randrange(len(live)))
            session.delete("patient_chart", (pid,))
    return session


def _coerce_key(tokens) -> tuple:
    """CLI key tokens to tuple values (ints where they parse as ints)."""
    key = []
    for token in tokens:
        try:
            key.append(int(token))
        except ValueError:
            key.append(token)
    return tuple(key)


def cmd_audit(args: argparse.Namespace) -> int:
    session = _run_audit_workload(args.ops, args.seed)
    log = session.audit

    if args.audit_command == "tail":
        print(f"audit log: {len(log)} record(s), head ASN {log.head_asn()}")
        for record in log.tail(args.count):
            print(record.describe())
        return 0

    if args.audit_command in ("why", "history"):
        key = _coerce_key(args.key)
        links = (
            session.why(args.relation, key)
            if args.audit_command == "why"
            else session.tuple_history(args.relation, key)
        )
        label = "provenance" if args.audit_command == "why" else "history"
        print(f"{label} of {args.relation}{key}: {len(links)} link(s)")
        for link in links:
            print(link.describe())
        return 0

    if args.audit_command == "as-of":
        state = session.as_of(args.asn, relation=args.relation)
        if args.relation is not None:
            state = {args.relation: state}
        print(f"state as of ASN {args.asn}:")
        for relation in sorted(state):
            rows = state[relation]
            print(f"  {relation:<14} {len(rows)} tuple(s)")
        return 0

    # replay: the audit log as a correctness oracle (CI smoke path).
    report = session.replay_audit()
    print(report.summary())
    return 0 if report.ok else 1


def _build_sharded_hospital(shards: int, patients: int, replicas: int = 0):
    """A sharded hospital deployment, loaded and object-registered."""
    from repro.replicate import ReplicationConfig
    from repro.shard import ShardedPenguin, sharded_loader
    from repro.workloads.hospital import HospitalConfig

    graph = hospital_schema()
    replication = (
        ReplicationConfig(replicas=replicas) if replicas else None
    )
    sharded = ShardedPenguin(
        graph,
        partition_by="PATIENT",
        num_shards=shards,
        replication=replication,
    )
    populate_hospital(
        sharded_loader(sharded), HospitalConfig(patients=patients)
    )
    sharded.register_object(patient_chart_object(graph))
    # Materialized caches give the DEGRADED path something to serve
    # stale reads from (and exercise per-shard maintenance).
    sharded.materialize("patient_chart", "lazy")
    return sharded


def _write_serve_bench(report) -> Path:
    """Emit ``BENCH_serve.json``; prefers the shared bench writer."""
    entries = {"serve": report.as_dict()}
    try:
        from benchmarks.bench_json import write_bench_json
    except ImportError:
        path = Path.cwd() / "BENCH_serve.json"
        path.write_text(
            json.dumps(
                {"benchmark": "serve", "entries": entries},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        return path
    return write_bench_json("serve", entries)


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    import repro.obs as obs
    from repro.serve.http import PenguinServer
    from repro.serve.load import run_load

    obs.configure()  # live metrics so /metrics has content
    sharded = _build_sharded_hospital(
        args.shards, args.patients, replicas=args.replicas
    )
    port = args.port
    if port is None:
        port = 0 if (args.smoke or args.load_ops) else 8642
    server = PenguinServer(
        sharded,
        host=args.host,
        port=port,
        batch_window=args.batch_window,
    )

    if args.smoke or args.load_ops:
        handle = server.in_background()
        try:
            print(f"topology: {sharded.describe()}")
            print(f"listening on {handle.url}")
            ops = args.load_ops or 400
            report = asyncio.run(
                run_load(
                    server.host,
                    server.port,
                    ops=ops,
                    workers=args.workers,
                    population=args.patients,
                    skew=args.skew,
                    seed=args.seed,
                )
            )
        finally:
            handle.stop()
        print(f"load: {report.describe()}")
        bench_path = _write_serve_bench(report)
        print(f"wrote {bench_path}")
        degraded = sharded.health()["degraded"]
        if not args.smoke:
            return 0
        p95 = report.summary().get("p95", 0.0)
        checks = [
            ("all ops answered", report.ops == ops),
            ("no 5xx errors", report.errors == 0),
            (
                f"p95 {p95:.2f}ms <= {args.p95_bound:.0f}ms",
                p95 <= args.p95_bound,
            ),
            ("no shard degraded", not degraded),
            ("clean shutdown", not server.running),
        ]
        ok = all(passed for _, passed in checks)
        for label, passed in checks:
            print(f"  [{'PASS' if passed else 'FAIL'}] {label}")
        print("serve-smoke:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    async def _serve_forever() -> None:
        await server.start()
        print(f"topology: {sharded.describe()}")
        print(
            f"listening on http://{server.host}:{server.port}", flush=True
        )
        try:
            while True:
                await asyncio.sleep(3600)
        finally:
            await server.stop()

    try:
        asyncio.run(_serve_forever())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def cmd_flight(args: argparse.Namespace) -> int:
    from repro.obs.cluster import FlightRecorder

    if args.inspect:
        print(FlightRecorder.inspect(args.inspect))
        return 0

    # Demo: a replicated deployment with the recorder installed, a
    # killed primary, and the failure detector's failover anomaly
    # freezing the last spans/metrics/audit tails into a bundle.
    import repro.obs as obs

    hub = obs.configure()
    try:
        sharded = _build_sharded_hospital(shards=2, patients=4, replicas=2)
        recorder = FlightRecorder(args.directory)
        sharded.attach_flight_recorder(recorder)
        rng = random.Random(0)
        pid = 70000
        sharded.insert("patient_chart", _audit_chart(pid, rng))
        replica_set = sharded.shard(0).replica_set
        replica_set.primary.kill()
        for _ in range(replica_set.config.miss_threshold + 1):
            replica_set.probe()
        sharded.close()
    finally:
        obs.disable()
    path = recorder.latest()
    if path is None:
        print("no flight bundle was produced")
        return 1
    print(f"wrote {path}")
    print()
    print(FlightRecorder.inspect(path))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.strategy.validate import (
        WORKLOADS,
        render_result,
        sweep,
        validate_workload,
    )

    if args.workload is None and not args.sweep:
        print(
            "nothing to validate: pass --workload NAME and/or --sweep N",
            file=sys.stderr,
        )
        return 2

    payload = {}
    ok = True
    falsified = 0
    if args.workload is not None:
        if args.workload not in WORKLOADS:
            print(
                f"unknown workload {args.workload!r}; "
                f"known: {sorted(WORKLOADS)}",
                file=sys.stderr,
            )
            return 2
        result = validate_workload(args.workload)
        print(render_result(result))
        ok = ok and result["agreement"]
        falsified += int(result["falsified"])
        result.pop("_risk_report")
        result.pop("_law_report")
        payload["workload"] = result
    if args.sweep:
        outcome = sweep(
            count=args.sweep,
            base_seed=args.seed,
            adversarial=args.adversarial,
        )
        print(
            f"sweep: {outcome['cases']} case(s)"
            + (" (adversarial)" if args.adversarial else "")
            + f", {outcome['falsified']} falsified by the laws, "
            f"{outcome['disagreements']} checker/law disagreement(s)"
        )
        for result in outcome["disagreement_cases"]:
            print(f"  DISAGREEMENT: {result['case']}")
        ok = ok and not outcome["disagreements"]
        falsified += outcome["falsified"]
        payload["sweep"] = outcome
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2))
        print(f"wrote {args.json}")
    if args.strict and falsified:
        print(f"strict mode: {falsified} falsified configuration(s)")
        return 1
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Updating Relational Databases "
        "through Object-Based Views' (SIGMOD 1991)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="regenerate the paper's figures")

    dump = commands.add_parser("dump", help="dump a generated workload")
    dump.add_argument("--workload", choices=sorted(WORKLOADS), default="university")
    dump.add_argument("directory")

    check = commands.add_parser("check", help="integrity-check a dump")
    check.add_argument("directory")

    query = commands.add_parser("query", help="run an object query")
    query.add_argument("--workload", choices=sorted(WORKLOADS), default="university")
    query.add_argument("--object", default="course_info")
    query.add_argument("text")

    materialize = commands.add_parser(
        "materialize",
        help="compare cached vs dynamic instantiation on a query loop",
    )
    materialize.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="university"
    )
    materialize.add_argument(
        "--object",
        default=None,
        help="view object name (default: the workload's first object)",
    )
    materialize.add_argument("--policy", choices=POLICIES, default="lazy")
    materialize.add_argument("--queries", type=int, default=100)
    materialize.add_argument(
        "--update-every",
        type=int,
        default=10,
        metavar="N",
        help="issue one base-table write every N queries (0 = read-only)",
    )
    materialize.add_argument(
        "--text", default=None, help="object query text (default: all instances)"
    )

    bench_bulk = commands.add_parser(
        "bench-bulk",
        help="compare batched insert_many against the per-instance loop",
    )
    bench_bulk.add_argument("--count", type=int, default=1000)
    bench_bulk.add_argument(
        "--backend",
        choices=("sqlite", "memory"),
        default="sqlite",
        help="sqlite is file-backed so per-instance commits pay real I/O",
    )

    chaos = commands.add_parser(
        "chaos",
        help="run the seeded crash/fault campaign and check invariants",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--ops",
        type=int,
        default=200,
        metavar="N",
        help="operation budget for the transient-fault bulk leg",
    )
    chaos.add_argument(
        "--patients",
        type=int,
        default=4,
        help="hospital workload size (each chart adds crash points)",
    )

    chaos_failover = commands.add_parser(
        "chaos-failover",
        help="kill primaries at every replication checkpoint; "
        "assert zero committed-write loss",
    )
    chaos_failover.add_argument("--seed", type=int, default=0)
    chaos_failover.add_argument(
        "--writes",
        type=int,
        default=8,
        metavar="N",
        help="write-stream length per kill point in the sweep leg",
    )
    chaos_failover.add_argument(
        "--patients",
        type=int,
        default=4,
        help="hospital workload size per replicated deployment",
    )

    trace = commands.add_parser(
        "trace",
        help="trace the Figure-4 workload and print span trees + EXPLAIN",
    )
    trace.add_argument(
        "--jsonl",
        default=None,
        metavar="FILE",
        help="also export the root spans as JSON Lines",
    )
    trace.add_argument(
        "--slow-threshold",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="slow-log retention threshold (default 0.05s)",
    )
    trace.add_argument(
        "--no-durations",
        action="store_true",
        help="print the normalized (timing-free) span trees",
    )
    trace.add_argument(
        "--follow",
        default=None,
        metavar="REQUEST_ID",
        help="follow one HTTP write (tagged with this X-Request-Id) "
             "across a 2-shard, 2-replica cluster and print the "
             "assembled cross-component trace",
    )

    flight = commands.add_parser(
        "flight",
        help="inspect a flight-recorder bundle, or run the injected-"
             "failover demo that produces one",
    )
    flight.add_argument(
        "--inspect",
        default=None,
        metavar="FILE",
        help="render an existing bundle instead of running the demo",
    )
    flight.add_argument(
        "--directory",
        default="flight-bundles",
        help="where the demo writes its bundle (default ./flight-bundles)",
    )

    metrics = commands.add_parser(
        "metrics",
        help="run the Figure-4 workload and print the metrics registry",
    )
    metrics.add_argument(
        "--json",
        action="store_true",
        help="print the snapshot as JSON instead of text exposition",
    )

    audit = commands.add_parser(
        "audit",
        help="run an audited hospital workload and interrogate the trail",
    )
    audit.add_argument("--ops", type=int, default=40,
                       help="seeded mixed view updates after the "
                            "Figure-4 round trip (default 40)")
    audit.add_argument("--seed", type=int, default=0)
    audit_commands = audit.add_subparsers(
        dest="audit_command", required=True
    )

    audit_tail = audit_commands.add_parser(
        "tail", help="print the newest audit records"
    )
    audit_tail.add_argument("-n", "--count", type=int, default=10)

    for name, help_text in (
        ("why", "print a tuple's provenance chain (follows re-homing)"),
        ("history", "print a tuple's before/after image sequence"),
    ):
        sub = audit_commands.add_parser(name, help=help_text)
        sub.add_argument("--relation", default="PATIENT")
        sub.add_argument(
            "--key",
            nargs="+",
            default=[str(FIGURE4_PATIENT)],
            help="key values (integers are coerced; default: the "
                 "Figure-4 patient)",
        )

    audit_as_of = audit_commands.add_parser(
        "as-of", help="reconstruct the state at a past ASN"
    )
    audit_as_of.add_argument("asn", type=int)
    audit_as_of.add_argument("--relation", default=None)

    audit_commands.add_parser(
        "replay",
        help="re-execute the audit log on a fresh engine and verify "
             "the final state byte-for-byte",
    )

    serve = commands.add_parser(
        "serve",
        help="serve a sharded hospital deployment over HTTP/JSON "
             "(asyncio front end with write micro-batching)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=None,
        help="listen port (default 8642; load/smoke modes default to "
             "an ephemeral port)",
    )
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument(
        "--replicas", type=int, default=0,
        help="attach N log-shipping replicas per shard (0 = none)",
    )
    serve.add_argument(
        "--patients", type=int, default=25,
        help="resident hospital population (zipfian reads target it)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.005, metavar="SECONDS",
        help="micro-batch window folding concurrent writes per object",
    )
    serve.add_argument(
        "--load-ops", type=int, default=0, metavar="N",
        help="run the zipfian load generator for N ops and exit",
    )
    serve.add_argument("--workers", type=int, default=8)
    serve.add_argument("--skew", type=float, default=1.1)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--smoke", action="store_true",
        help="CI mode: zipfian burst, assert p95 bound + clean "
             "shutdown, emit BENCH_serve.json, exit non-zero on FAIL",
    )
    serve.add_argument(
        "--p95-bound", type=float, default=250.0, metavar="MS",
        help="smoke-mode p95 latency bound in milliseconds",
    )

    validate = commands.add_parser(
        "validate",
        help="run the strategy checker and the round-trip law harness "
             "against a workload object or a seeded chain-case sweep",
    )
    validate.add_argument(
        "--workload", default=None,
        help="validate one named workload (hospital, university, cad); "
             "omit with --sweep to run the chain corpus",
    )
    validate.add_argument(
        "--sweep", type=int, default=0, metavar="N",
        help="validate N seeded random chain cases under seeded "
             "random policies and assert checker/law agreement",
    )
    validate.add_argument(
        "--seed", type=int, default=0,
        help="first seed of the sweep corpus",
    )
    validate.add_argument(
        "--adversarial", action="store_true",
        help="graft adversarial schema hazards onto the sweep cases",
    )
    validate.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the full risk/law report as JSON",
    )
    validate.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on any law falsification, not only on "
             "checker/law disagreement",
    )

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "demo": cmd_demo,
        "dump": cmd_dump,
        "check": cmd_check,
        "query": cmd_query,
        "materialize": cmd_materialize,
        "bench-bulk": cmd_bench_bulk,
        "chaos": cmd_chaos,
        "chaos-failover": cmd_chaos_failover,
        "trace": cmd_trace,
        "flight": cmd_flight,
        "metrics": cmd_metrics,
        "audit": cmd_audit,
        "serve": cmd_serve,
        "validate": cmd_validate,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
