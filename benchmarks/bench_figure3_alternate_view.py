"""Figure 3: a different view of the database (ω′).

ω′ is still anchored on COURSES but includes only FACULTY and STUDENT;
with GRADES pruned away, the edge to STUDENT is "a path of two
connections" traversed at instantiation time. Both the definition and
the composite-path instantiation are benchmarked.
"""

import pytest

from repro.core.dependency_island import analyze_island
from repro.core.instantiation import Instantiator
from repro.workloads.figures import alternate_course_object


@pytest.mark.benchmark(group="figure3")
def test_figure3_definition(benchmark, university_graph):
    omega_prime = benchmark(alternate_course_object, university_graph)
    assert omega_prime.complexity == 3
    student = omega_prime.tree.node("STUDENT")
    assert student.path.describe() == "COURSES --* GRADES *-- STUDENT"
    print()
    print("=== Figure 3: ω' ===")
    print(omega_prime.describe())
    analysis = analyze_island(omega_prime)
    print(analysis.describe())


@pytest.mark.benchmark(group="figure3")
def test_figure3_composite_path_instantiation(
    benchmark, university_engine, omega_prime
):
    instantiator = Instantiator(omega_prime)
    instances = benchmark(instantiator.all, university_engine)
    assert len(instances) == university_engine.count("COURSES")
    # Students bound through the 2-hop path match the GRADES linkage.
    sample = instances[0]
    expected = {
        v[1]
        for v in university_engine.find_by(
            "GRADES", ("course_id",), (sample.key[0],)
        )
    }
    assert {s["person_id"] for s in sample.tuples_at("STUDENT")} == expected
    print()
    print("=== sample ω' instance ===")
    print(sample.describe())


@pytest.mark.benchmark(group="figure3")
def test_sharing_two_objects_same_data(
    benchmark, university_engine, omega, omega_prime
):
    """The same base data serves both ω and ω′ — the sharing argument
    of Section 3. Benchmarks instantiating both for one course."""
    course_id = next(iter(university_engine.scan("COURSES")))[0]

    def instantiate_both():
        a = Instantiator(omega).by_key(university_engine, (course_id,))
        b = Instantiator(omega_prime).by_key(university_engine, (course_id,))
        return a, b

    first, second = benchmark(instantiate_both)
    assert first.key == second.key
    assert first.view_object.name != second.view_object.name
