"""Added experiment: what the query planner's pushdown buys.

The paper's query model "composes" an object query with the object's
structure "to obtain a relational query"; our planner realizes that by
pushing pivot-only conjuncts into the engine so only matching pivot
tuples are ever assembled. The ablation runs the same selective query
with and without pushdown (the no-pushdown variant assembles every
instance and filters afterwards); the gap widens with database size.
"""

import pytest

from repro.core.instantiation import Instantiator
from repro.core.query import execute_query, parse_query
from repro.core.query.evaluator import evaluate
from repro.core.query.planner import plan_query
from repro.workloads.figures import course_info_object
from repro.workloads.university import UniversityConfig

QUERY = "dept_name = 'Physics' and units >= 3 and count(STUDENT) >= 0"

SIZES = {
    "small": UniversityConfig(students=40, courses=20),
    "large": UniversityConfig(
        students=200, courses=80, enrollments_per_student=6
    ),
}


def build(size):
    from benchmarks.conftest import build_university_engine

    return build_university_engine(config=SIZES[size])


@pytest.mark.benchmark(group="query-pushdown")
@pytest.mark.parametrize("size", sorted(SIZES))
def test_bench_with_pushdown(benchmark, size):
    graph, engine = build(size)
    omega = course_info_object(graph)
    results = benchmark(execute_query, omega, engine, QUERY)
    print(f"{size}: {len(results)} matches (pushdown)")
    assert all(
        i.root.values["dept_name"] == "Physics" for i in results
    )


@pytest.mark.benchmark(group="query-pushdown")
@pytest.mark.parametrize("size", sorted(SIZES))
def test_bench_without_pushdown(benchmark, size):
    """Assemble everything, filter afterwards — the naive plan."""
    graph, engine = build(size)
    omega = course_info_object(graph)
    ast = parse_query(QUERY)
    instantiator = Instantiator(omega)

    def run():
        return [
            instance
            for instance in instantiator.all(engine)
            if evaluate(ast, instance)
        ]

    results = benchmark(run)
    print(f"{size}: {len(results)} matches (no pushdown)")
    # Same answers either way.
    pushed = execute_query(omega, engine, QUERY)
    assert {i.key for i in results} == {i.key for i in pushed}


@pytest.mark.benchmark(group="query-pushdown")
def test_bench_planner_overhead(benchmark):
    plan = benchmark(lambda: plan_query(parse_query(QUERY)))
    assert plan.residual is not None
