"""Figure 4: instantiation of a view object.

"An application's request to retrieve graduate courses with less than 5
students having enrolled produces one instance of ω." The bench runs the
paper's exact query through the object query language (parse → plan →
pushdown → assemble → residual filter) and prints the instance in the
paper's nested rendering.
"""

import pytest

from repro.core.instantiation import Instantiator
from repro.core.query import execute_query, parse_query
from repro.core.query.planner import plan_query
from repro.relational.expressions import TRUE

FIGURE4_QUERY = "level = 'graduate' and count(STUDENT) < 5"


@pytest.mark.benchmark(group="figure4")
def test_figure4_query(benchmark, university_engine, omega):
    results = benchmark(
        execute_query, omega, university_engine, FIGURE4_QUERY
    )
    assert results
    for instance in results:
        assert instance.root.values["level"] == "graduate"
        assert instance.count_at("STUDENT") < 5
    print()
    print("=== Figure 4: instance(s) of ω ===")
    for instance in results:
        print(instance.describe())


@pytest.mark.benchmark(group="figure4")
def test_bench_parse_and_plan(benchmark):
    plan = benchmark(lambda: plan_query(parse_query(FIGURE4_QUERY)))
    assert plan.residual is not None


@pytest.mark.benchmark(group="figure4")
def test_bench_single_instance_assembly(benchmark, university_engine, omega):
    instantiator = Instantiator(omega)
    course_id = next(iter(university_engine.scan("COURSES")))[0]
    instance = benchmark(instantiator.by_key, university_engine, (course_id,))
    assert instance is not None


@pytest.mark.benchmark(group="figure4")
def test_bench_full_instantiation(benchmark, university_engine, omega):
    instantiator = Instantiator(omega)
    instances = benchmark(instantiator.where, university_engine, TRUE)
    assert len(instances) == university_engine.count("COURSES")


@pytest.mark.benchmark(group="figure4")
def test_bench_instantiation_on_sqlite(benchmark, omega):
    from benchmarks.conftest import build_university_engine

    __, engine = build_university_engine(backend="sqlite")
    results = benchmark(execute_query, omega, engine, FIGURE4_QUERY)
    assert results
