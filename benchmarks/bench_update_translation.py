"""Added experiment: cost of the three translation algorithms.

The paper reports no performance numbers; these benches quantify the
implementation. Two sweeps:

* **university workload** — one representative VO-CI / VO-CD / VO-R per
  round on ω, reporting the operation counts each translation emits;
* **island-depth sweep** — the synthetic ownership chain dials the
  dependency island's height; translation cost (operations and time)
  must grow with the island size, the shape claim implied by Section 5
  ("any update operation on the view object should have consistent
  repercussions throughout the components of that object's dependency
  island").
"""

import copy

import pytest

from repro.core.updates.translator import Translator
from repro.relational.memory_engine import MemoryEngine
from repro.workloads.figures import course_info_object
from repro.workloads.synthetic import chain_object, chain_schema, populate_chain


def fresh_university():
    from benchmarks.conftest import build_university_engine

    return build_university_engine()


def course_with_children(engine):
    for values in engine.scan("COURSES"):
        if engine.find_by("GRADES", ("course_id",), (values[0],)):
            return values[0]
    raise AssertionError("no suitable course")


@pytest.mark.benchmark(group="translate-university")
def test_bench_complete_insertion(benchmark):
    graph, __ = fresh_university()
    omega = course_info_object(graph)
    translator = Translator(omega)
    instance = {
        "course_id": "BENCH1",
        "title": "Benchmark Course",
        "units": 3,
        "level": "graduate",
        "dept_name": "Physics",
        "GRADES": [
            {
                "course_id": "BENCH1",
                "student_id": 1011 + offset,
                "grade": "A",
                "STUDENT": [],
            }
            for offset in range(3)
        ],
    }

    def setup():
        __, engine = fresh_university()
        return (engine,), {}

    def run(engine):
        return translator.insert(engine, copy.deepcopy(instance))

    plan = benchmark.pedantic(run, setup=setup, rounds=10)
    print(f"VO-CI: {len(plan)} operations ({plan.count('insert')} inserts)")
    assert plan.count("insert") >= 4


@pytest.mark.benchmark(group="translate-university")
def test_bench_complete_deletion(benchmark):
    graph, probe = fresh_university()
    omega = course_info_object(graph)
    translator = Translator(omega)
    course_id = course_with_children(probe)

    def setup():
        __, engine = fresh_university()
        return (engine,), {}

    def run(engine):
        return translator.delete(engine, key=(course_id,))

    plan = benchmark.pedantic(run, setup=setup, rounds=10)
    print(f"VO-CD: {len(plan)} operations ({plan.count('delete')} deletes)")
    assert plan.count("delete") >= 2


@pytest.mark.benchmark(group="translate-university")
def test_bench_replacement_nonkey(benchmark):
    graph, probe = fresh_university()
    omega = course_info_object(graph)
    translator = Translator(omega)
    course_id = course_with_children(probe)

    def setup():
        __, engine = fresh_university()
        old = translator.instantiate(engine, (course_id,))
        new = copy.deepcopy(old.to_dict())
        new["title"] = "Replaced"
        return (engine, old, new), {}

    def run(engine, old, new):
        return translator.replace(engine, old, new)

    plan = benchmark.pedantic(run, setup=setup, rounds=10)
    print(f"VO-R (nonkey): {len(plan)} operations")
    assert plan.count("replace") == 1


@pytest.mark.benchmark(group="translate-university")
def test_bench_replacement_key_change(benchmark):
    graph, probe = fresh_university()
    omega = course_info_object(graph)
    translator = Translator(omega)
    course_id = course_with_children(probe)

    def setup():
        __, engine = fresh_university()
        old = translator.instantiate(engine, (course_id,))
        new = copy.deepcopy(old.to_dict())
        new["course_id"] = "REKEYED"
        for grade in new.get("GRADES", []):
            grade["course_id"] = "REKEYED"
        for entry in new.get("CURRICULUM", []):
            entry["course_id"] = "REKEYED"
        return (engine, old, new), {}

    def run(engine, old, new):
        return translator.replace(engine, old, new)

    plan = benchmark.pedantic(run, setup=setup, rounds=10)
    print(f"VO-R (key change): {len(plan)} operations")
    assert plan.count("replace") >= 1


# ---------------------------------------------------------------------------
# Island-depth sweep on the synthetic chain
# ---------------------------------------------------------------------------

DEPTHS = [1, 2, 3, 4]
FANOUT = 3


def build_chain(depth):
    graph = chain_schema(depth=depth)
    engine = MemoryEngine()
    graph.install(engine)
    populate_chain(engine, depth=depth, roots=3, fanout=FANOUT)
    view_object = chain_object(graph, depth)
    return graph, engine, view_object


@pytest.mark.benchmark(group="translate-depth-sweep")
@pytest.mark.parametrize("depth", DEPTHS)
def test_bench_deletion_vs_island_depth(benchmark, depth):
    """Series: deletion cost vs dependency-island height. The emitted
    operation count is sum_{i<=depth} fanout^i + peninsula repairs,
    growing geometrically with depth — who wins and by what factor is
    printed as the series the harness reports."""
    graph, __, view_object = build_chain(depth)
    translator = Translator(view_object)

    def setup():
        engine = MemoryEngine()
        graph.install(engine)
        populate_chain(engine, depth=depth, roots=3, fanout=FANOUT)
        return (engine,), {}

    def run(engine):
        return translator.delete(engine, key=(0,))

    plan = benchmark.pedantic(run, setup=setup, rounds=5)
    expected_island = sum(FANOUT ** level for level in range(depth + 1))
    print(
        f"depth={depth}: island tuples={expected_island}, "
        f"operations={len(plan)}"
    )
    assert len(plan) >= expected_island


@pytest.mark.benchmark(group="translate-depth-sweep")
@pytest.mark.parametrize("depth", DEPTHS)
def test_bench_rekey_vs_island_depth(benchmark, depth):
    """Series: key-change replacement cost vs island height — every
    island tuple's inherited key must be rewritten."""
    graph, probe_engine, view_object = build_chain(depth)
    translator = Translator(view_object)

    def setup():
        engine = MemoryEngine()
        graph.install(engine)
        populate_chain(engine, depth=depth, roots=3, fanout=FANOUT)
        old = translator.instantiate(engine, (0,))
        new = _rekey(old.to_dict(), 99)
        return (engine, old, new), {}

    def run(engine, old, new):
        return translator.replace(engine, old, new)

    plan = benchmark.pedantic(run, setup=setup, rounds=5)
    expected_island = sum(FANOUT ** level for level in range(depth + 1))
    print(
        f"depth={depth}: island tuples={expected_island}, "
        f"operations={len(plan)}"
    )
    assert plan.count("replace") >= expected_island


def _rekey(data, new_k0):
    data = copy.deepcopy(data)

    def walk(node):
        if "k0" in node:
            node["k0"] = new_k0
        for value in node.values():
            if isinstance(value, list):
                for child in value:
                    if isinstance(child, dict):
                        walk(child)

    walk(data)
    return data
