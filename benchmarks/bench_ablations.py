"""Ablations of the design choices DESIGN.md calls out.

* **connection-attribute indexes** — update propagation is lookup-bound;
  with indexes off, every ``find_by`` is a scan;
* **post-update integrity verification** — the belt-and-braces full
  check the Translator can run after every translation;
* **storage backend** — identical translations on the from-scratch
  engine vs sqlite3.
"""

import copy

import pytest

from repro.core.updates.translator import Translator
from repro.workloads.figures import course_info_object
from repro.workloads.university import UniversityConfig

BIG = UniversityConfig(students=150, courses=60, enrollments_per_student=6)


def build(backend="memory", with_indexes=True, config=BIG):
    from benchmarks.conftest import build_university_engine

    return build_university_engine(
        backend=backend, with_indexes=with_indexes, config=config
    )


def connected_course(engine):
    for values in engine.scan("COURSES"):
        if engine.find_by("GRADES", ("course_id",), (values[0],)):
            return values[0]
    raise AssertionError("no connected course")


@pytest.mark.benchmark(group="ablation-indexes")
@pytest.mark.parametrize("with_indexes", [True, False], ids=["indexed", "scan"])
def test_bench_deletion_index_ablation(benchmark, with_indexes):
    graph, probe = build(with_indexes=with_indexes)
    omega = course_info_object(graph)
    translator = Translator(omega)
    course_id = connected_course(probe)

    def setup():
        __, engine = build(with_indexes=with_indexes)
        return (engine,), {}

    def run(engine):
        return translator.delete(engine, key=(course_id,))

    plan = benchmark.pedantic(run, setup=setup, rounds=3)
    assert plan.count("delete") >= 1


@pytest.mark.benchmark(group="ablation-verify")
@pytest.mark.parametrize(
    "verify", [False, True], ids=["no-verify", "full-verify"]
)
def test_bench_integrity_verification_ablation(benchmark, verify):
    graph, probe = build()
    omega = course_info_object(graph)
    translator = Translator(omega, verify_integrity=verify)
    course_id = connected_course(probe)

    def setup():
        __, engine = build()
        old = translator.instantiate(engine, (course_id,))
        new = copy.deepcopy(old.to_dict())
        new["title"] = "Ablated"
        return (engine, old, new), {}

    def run(engine, old, new):
        return translator.replace(engine, old, new)

    plan = benchmark.pedantic(run, setup=setup, rounds=3)
    assert plan.count("replace") == 1


@pytest.mark.benchmark(group="ablation-backend")
@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_bench_backend_ablation(benchmark, backend):
    graph, probe = build(backend=backend)
    omega = course_info_object(graph)
    translator = Translator(omega)
    course_id = connected_course(probe)

    def setup():
        __, engine = build(backend=backend)
        return (engine,), {}

    def run(engine):
        return translator.delete(engine, key=(course_id,))

    plan = benchmark.pedantic(run, setup=setup, rounds=3)
    assert plan.count("delete") >= 1


@pytest.mark.benchmark(group="ablation-backend")
@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_bench_instantiation_backend(benchmark, backend):
    from repro.core.instantiation import Instantiator

    graph, engine = build(backend=backend)
    omega = course_info_object(graph)
    instantiator = Instantiator(omega)
    course_id = connected_course(engine)
    instance = benchmark(instantiator.by_key, engine, (course_id,))
    assert instance is not None
