"""Machine-readable benchmark results: ``BENCH_<name>.json`` emission.

Each benchmark module that owns an acceptance bar writes its measured
numbers to ``BENCH_<name>.json`` in the repository root so the perf
trajectory is tracked across commits (CI uploads the files as
artifacts). A file carries the emitting benchmark's name, the git SHA
it measured, and one entry per metric; entries produced from sample
lists carry ``iterations``, ``median``, ``p95``, ``min``, and ``max``.

Multiple tests in one module merge into the same file: each
:func:`write_bench_json` call updates the named entries and rewrites
the file atomically-enough for a sequential pytest run.

This module is importable by benchmarks but contains no tests itself
(the ``bench_`` prefix keeps it alongside its users; pytest collects
nothing from it).
"""

from __future__ import annotations

import json
import math
import statistics
import subprocess
from pathlib import Path
from typing import Any, Dict, Sequence

__all__ = ["REPO_ROOT", "git_sha", "summarize", "write_bench_json"]

REPO_ROOT = Path(__file__).resolve().parent.parent


def git_sha() -> str:
    """The commit the numbers belong to (``unknown`` outside a checkout)."""
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return probe.stdout.strip() or "unknown"


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Distribution summary of one metric's samples (nearest-rank p95)."""
    if not samples:
        raise ValueError("cannot summarize zero samples")
    ordered = sorted(samples)
    rank = max(0, math.ceil(0.95 * len(ordered)) - 1)
    return {
        "iterations": len(ordered),
        "median": statistics.median(ordered),
        "p95": ordered[rank],
        "min": ordered[0],
        "max": ordered[-1],
    }


def write_bench_json(name: str, entries: Dict[str, Any]) -> Path:
    """Merge ``entries`` into ``BENCH_<name>.json`` and return its path."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    payload: Dict[str, Any] = {"benchmark": name}
    if path.exists():
        try:
            payload.update(json.loads(path.read_text()))
        except (OSError, ValueError):
            pass  # a torn or stale file is simply replaced
    payload["benchmark"] = name
    payload["git_sha"] = git_sha()
    payload.setdefault("entries", {})
    payload["entries"].update(entries)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
