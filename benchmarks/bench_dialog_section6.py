"""Section 6: choosing a translator by dialog.

Regenerates the paper's replacement-dialog transcript verbatim, measures
the dialog's cost, and demonstrates the amortization claim: the dialog
runs once at definition time, then every update translates without
further interaction.
"""

import copy

import pytest

from repro.core.updates.policy import TranslatorPolicy
from repro.dialog.answers import ConstantAnswers, MappingAnswers, ScriptedAnswers
from repro.dialog.drivers import (
    choose_translator,
    run_definition_dialog,
    run_replacement_dialog,
)
from repro.dialog.transcript import Transcript
from repro.errors import UpdateRejectedError

PAPER_ANSWERS = [
    True, True, True, False,
    True, True, True,
    True, True, True,
    True, True, False,
    True, True, True,
]


@pytest.mark.benchmark(group="dialog")
def test_section6_transcript_report(benchmark, omega):
    def run():
        policy = TranslatorPolicy()
        transcript = Transcript()
        run_replacement_dialog(
            omega, ScriptedAnswers(PAPER_ANSWERS), policy, transcript
        )
        return policy, transcript

    policy, transcript = benchmark(run)
    assert len(transcript) == 16
    assert not policy.for_relation("COURSES").allow_merge_on_key_conflict
    print()
    print("=== Section 6 dialog (regenerated, replacement portion) ===")
    print(transcript.render())


@pytest.mark.benchmark(group="dialog")
def test_bench_full_definition_dialog(benchmark, omega):
    policy, transcript = benchmark(
        run_definition_dialog, omega, ConstantAnswers(True)
    )
    assert policy.allow_replacement


@pytest.mark.benchmark(group="dialog")
def test_amortization_updates_after_dialog(benchmark, omega):
    """One dialog, then N translations: the per-update cost contains no
    dialog interaction (the paper's amortization argument)."""
    from benchmarks.conftest import build_university_engine

    translator, transcript = choose_translator(omega, ConstantAnswers(True))
    questions_asked = len(transcript)

    def setup():
        __, engine = build_university_engine()
        course_id = next(iter(engine.scan("COURSES")))[0]
        old = translator.instantiate(engine, (course_id,))
        new = copy.deepcopy(old.to_dict())
        new["title"] = "Amortized"
        return (engine, old, new), {}

    def run(engine, old, new):
        return translator.replace(engine, old, new)

    plan = benchmark.pedantic(run, setup=setup, rounds=10)
    assert plan.count("replace") == 1
    assert len(transcript) == questions_asked  # no new questions


@pytest.mark.benchmark(group="dialog")
def test_restrictive_translator_rejects_ees_example(benchmark, omega):
    """The paper's closing example: answering <NO> for DEPARTMENT makes
    the EES345 replacement fail."""
    from benchmarks.conftest import build_university_engine

    translator, __ = choose_translator(
        omega, MappingAnswers({"modify.DEPARTMENT.allowed": False}, default=True)
    )

    def setup():
        __, engine = build_university_engine()
        course_id = next(
            v[0] for v in engine.scan("COURSES")
            if v[4] == "Computer Science"
        )
        old = translator.instantiate(engine, (course_id,))
        new = copy.deepcopy(old.to_dict())
        new["course_id"] = "EES345"
        new["dept_name"] = "Engineering Economic Systems"
        for dept in new.get("DEPARTMENT", []):
            dept["dept_name"] = "Engineering Economic Systems"
        for grade in new.get("GRADES", []):
            grade["course_id"] = "EES345"
        for entry in new.get("CURRICULUM", []):
            entry["course_id"] = "EES345"
        return (engine, old, new), {}

    def run(engine, old, new):
        try:
            translator.replace(engine, old, new)
            return False
        except UpdateRejectedError:
            return True

    rejected = benchmark.pedantic(run, setup=setup, rounds=5)
    assert rejected
