"""Materialized view objects vs. repeated dynamic instantiation.

The paper's Figure 4 machinery re-assembles every instance on every
request. The materialize subsystem caches assembled trees and repairs
them from the changelog, so a read-heavy workload should collapse to
one pivot selection plus dictionary lookups. These benches quantify:

* the repeated-``query()`` speedup on an unchanged database (the
  acceptance bar is >= 10x; measured well above it on both the
  university and hospital workloads),
* the cost profile of the three maintenance policies under a mixed
  read/write loop.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_materialize.py
--benchmark-only -q``; the two ``test_speedup_*`` checks also run (and
assert the 10x bar) without ``--benchmark-only``.
"""

import time

import pytest

from benchmarks.bench_json import summarize, write_bench_json
from repro.materialize import EAGER, FULL_REFRESH, LAZY
from repro.penguin import Penguin
from repro.workloads.figures import course_info_object
from repro.workloads.hospital import (
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)
from repro.workloads.university import populate_university, university_schema

SPEEDUP_FLOOR = 10.0


def university_session():
    session = Penguin(university_schema())
    populate_university(session.engine)
    session.register_object(course_info_object(session.graph))
    return session, "course_info"


def hospital_session():
    session = Penguin(hospital_schema())
    populate_hospital(session.engine)
    session.register_object(patient_chart_object(session.graph))
    return session, "patient_chart"


SESSIONS = {"university": university_session, "hospital": hospital_session}


def timed_queries(session, name, rounds):
    """Best-of-three timing of ``rounds`` repeated full queries.

    Returns ``(best, attempts)``: the attempt totals feed the JSON
    emission, the best one the speedup assertion.
    """
    attempts = []
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(rounds):
            instances = session.query(name)
        attempts.append(time.perf_counter() - started)
    assert instances
    return min(attempts), attempts


@pytest.mark.parametrize("workload", sorted(SESSIONS))
def test_speedup_read_heavy(workload):
    """Repeated query() on an unchanged database: cached vs dynamic."""
    session, name = SESSIONS[workload]()
    rounds = 15
    uncached, uncached_attempts = timed_queries(session, name, rounds)
    view = session.materialize(name, policy=LAZY)
    session.query(name)  # warm
    cached, cached_attempts = timed_queries(session, name, rounds)
    speedup = uncached / cached
    write_bench_json(
        "materialize",
        {
            f"{workload}_dynamic_s": summarize(uncached_attempts),
            f"{workload}_materialized_s": summarize(cached_attempts),
            f"{workload}_speedup": speedup,
            "floor": SPEEDUP_FLOOR,
        },
    )
    print(
        f"\n[{workload}] {rounds} repeated query(): dynamic {uncached:.4f}s, "
        f"materialized {cached:.4f}s -> {speedup:.1f}x "
        f"(hit rate {view.stats.hit_rate:.3f})"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"{workload}: materialized speedup {speedup:.1f}x below the "
        f"{SPEEDUP_FLOOR}x acceptance bar"
    )


@pytest.mark.benchmark(group="materialize-read")
def test_bench_query_dynamic(benchmark):
    session, name = university_session()
    result = benchmark(session.query, name)
    assert result


@pytest.mark.benchmark(group="materialize-read")
def test_bench_query_materialized(benchmark):
    session, name = university_session()
    session.materialize(name)
    session.query(name)  # warm
    result = benchmark(session.query, name)
    assert result


def _mixed_loop(session, name, writes=5):
    pivot = session.object(name).pivot_relation
    schema = session.engine.schema(pivot)
    rows = list(session.engine.scan(pivot))
    for i in range(writes):
        values = rows[i % len(rows)]
        session.engine.replace(pivot, schema.key_of(values), values)
        session.query(name)
    return session.query(name)


@pytest.mark.benchmark(group="materialize-policies")
@pytest.mark.parametrize("policy", [LAZY, EAGER, FULL_REFRESH])
def test_bench_policy_mixed_workload(benchmark, policy):
    """One write per query round — maintenance cost under each policy."""
    session, name = university_session()
    session.materialize(name, policy=policy)
    session.query(name)  # warm
    result = benchmark(_mixed_loop, session, name)
    assert result


@pytest.mark.benchmark(group="materialize-maintenance")
def test_bench_single_invalidation_reassembly(benchmark):
    """Cost of repairing exactly one instance after one grade change."""
    session, name = university_session()
    session.materialize(name, policy=EAGER)
    session.query(name)
    engine = session.engine
    grade = next(iter(engine.scan("GRADES")))
    schema = engine.schema("GRADES")
    view = session.materialized(name)

    def touch_and_sync():
        engine.replace("GRADES", schema.key_of(grade), grade)
        return view.sync()

    applied = benchmark(touch_and_sync)
    assert applied == 1
