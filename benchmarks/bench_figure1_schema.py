"""Figure 1: the structural schema of the university database.

Regenerates the figure's content — eight relations and nine typed
connections — as an ASCII adjacency listing and DOT source, verifies the
topology matches the paper's description sentence by sentence, and
measures schema construction, installation, and population.
"""

import pytest

from repro.relational.memory_engine import MemoryEngine
from repro.structural.connections import ConnectionKind
from repro.structural.rendering import to_ascii, to_dot
from repro.workloads.university import populate_university, university_schema

EXPECTED_RELATIONS = {
    "DEPARTMENT", "PEOPLE", "STUDENT", "FACULTY", "STAFF",
    "CURRICULUM", "COURSES", "GRADES",
}


@pytest.mark.benchmark(group="figure1")
def test_figure1_topology_report(benchmark):
    """Print the regenerated figure and check it against the paper."""
    graph = benchmark(university_schema)
    assert set(graph.relation_names) == EXPECTED_RELATIONS
    # "courses and people relate to a department"
    assert graph.connection("courses_department").kind is ConnectionKind.REFERENCE
    assert graph.connection("people_department").kind is ConnectionKind.REFERENCE
    # "a person is either a student, a faculty, or a staff"
    specializations = {
        c.target
        for c in graph.connections_from("PEOPLE", ConnectionKind.SUBSET)
    }
    assert specializations == {"STUDENT", "FACULTY", "STAFF"}
    # "a curriculum describes the required courses for a given degree"
    assert graph.connection("curriculum_courses").kind is ConnectionKind.REFERENCE
    # "grades are associated with courses and students"
    owners = {
        c.source
        for c in graph.connections_to("GRADES", ConnectionKind.OWNERSHIP)
    }
    assert owners == {"COURSES", "STUDENT"}
    print()
    print("=== Figure 1 (regenerated) ===")
    print(to_ascii(graph))
    print()
    print(to_dot(graph))


@pytest.mark.benchmark(group="figure1")
def test_bench_schema_construction(benchmark):
    graph = benchmark(university_schema)
    assert len(graph.connections) == 9


@pytest.mark.benchmark(group="figure1")
def test_bench_install_and_populate(benchmark):
    def build():
        graph = university_schema()
        engine = MemoryEngine()
        graph.install(engine)
        return populate_university(engine)

    counts = benchmark(build)
    assert counts["GRADES"] > 0


@pytest.mark.benchmark(group="figure1")
def test_bench_rendering(benchmark, university_graph):
    text = benchmark(to_ascii, university_graph)
    assert "==>o" in text
