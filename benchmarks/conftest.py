"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's figures (or an added
experiment) and measures the cost of the machinery behind it. Mutating
benchmarks build fresh engines per round via ``benchmark.pedantic``.
"""

from __future__ import annotations

import pytest

from repro.core.information_metric import InformationMetric
from repro.relational.memory_engine import MemoryEngine
from repro.relational.sqlite_engine import SqliteEngine
from repro.workloads.figures import alternate_course_object, course_info_object
from repro.workloads.university import (
    UniversityConfig,
    populate_university,
    university_schema,
)


def build_university_engine(backend="memory", config=None, with_indexes=True):
    graph = university_schema()
    if backend == "memory":
        engine = MemoryEngine(use_indexes=with_indexes)
    else:
        engine = SqliteEngine()
    graph.install(engine, with_indexes=with_indexes)
    populate_university(engine, config or UniversityConfig())
    return graph, engine


@pytest.fixture(scope="module")
def university():
    """A populated university database shared by read-only benches."""
    return build_university_engine()


@pytest.fixture(scope="module")
def university_graph(university):
    return university[0]


@pytest.fixture(scope="module")
def university_engine(university):
    return university[1]


@pytest.fixture(scope="module")
def omega(university_graph):
    return course_info_object(university_graph)


@pytest.fixture(scope="module")
def omega_prime(university_graph):
    return alternate_course_object(university_graph)


@pytest.fixture(scope="module")
def metric():
    return InformationMetric()
