"""Added experiment: dialog length scales with object complexity.

The definition-time dialog asks a bounded number of questions per
relation (three for island relations, three for the others, plus the
per-class gates and deletion repairs). On the synthetic chain the
question count is a simple affine function of the island depth — the
series quantifies the *one-time* cost the paper amortizes "over all the
times that updates against the view are subsequently requested".
"""

import pytest

from repro.dialog.answers import ConstantAnswers
from repro.dialog.drivers import run_definition_dialog
from repro.workloads.synthetic import chain_object, chain_schema

DEPTHS = [1, 2, 4, 6]


@pytest.mark.benchmark(group="dialog-scaling")
@pytest.mark.parametrize("depth", DEPTHS)
def test_bench_dialog_length_vs_depth(benchmark, depth):
    graph = chain_schema(depth=depth)
    view_object = chain_object(graph, depth)
    policy, transcript = benchmark(
        run_definition_dialog, view_object, ConstantAnswers(True)
    )
    # Gates: insertion, deletion, replacement = 3.
    # Deletion repair: one per relation referencing an island relation
    # (the PENINSULA -> R0 reference) = 1.
    # Replacement: 3 island questions per chain level, 3 modification
    # questions for each of PENINSULA and LOOKUP.
    expected = 3 + 1 + 3 * (depth + 1) + 3 * 2
    assert len(transcript) == expected
    print(f"depth={depth}: {len(transcript)} questions")


@pytest.mark.benchmark(group="dialog-scaling")
def test_bench_dialog_university_vs_hospital(benchmark):
    """Question counts for the real objects (complexity 5 vs 7)."""
    from repro.workloads.figures import course_info_object
    from repro.workloads.hospital import hospital_schema, patient_chart_object
    from repro.workloads.university import university_schema

    omega = course_info_object(university_schema())
    chart = patient_chart_object(hospital_schema())

    def run():
        __, omega_transcript = run_definition_dialog(
            omega, ConstantAnswers(True)
        )
        __, chart_transcript = run_definition_dialog(
            chart, ConstantAnswers(True)
        )
        return omega_transcript, chart_transcript

    omega_transcript, chart_transcript = benchmark(run)
    print(
        f"course_info: {len(omega_transcript)} questions; "
        f"patient_chart: {len(chart_transcript)} questions"
    )
    assert len(chart_transcript) > len(omega_transcript)
