"""Cost of the resilience layer: journal overhead, recovery, retries.

Three questions, each answered with a number:

* **Journal overhead** — how much does writing PENDING/COMMITTED
  intent records (with before/after images) around every translated
  update cost, relative to running unjournaled? Measured for both the
  in-memory journal (bookkeeping only) and the fsync'ing file journal
  (the durable configuration).
* **Recovery throughput** — how fast does :func:`recover` resolve a
  backlog of torn PENDING plans?
* **Retry tax** — what does a 10% transient-fault rate cost a bulk
  insert once the engine-level retry policy absorbs it?

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py -q``;
add ``--benchmark-only`` for the timing groups.
"""

import time

import pytest

from repro.penguin import Penguin
from repro.relational.faults import FaultInjectingEngine, FaultPlan
from repro.relational.journal import (
    FileJournal,
    MemoryJournal,
    apply_journaled,
    recover,
)
from repro.relational.memory_engine import MemoryEngine
from repro.relational.retry import RetryPolicy
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)

OBJECT = "patient_chart"
CHARTS = 200


def new_chart(i):
    pid = 80_000 + i
    return {
        "patient_id": pid,
        "name": f"Bench Patient {i}",
        "birth_year": 1950 + (i % 60),
        "ward_name": None,
        "VISIT": [
            {
                "patient_id": pid,
                "visit_no": 1,
                "visit_date": "1991-05-29",
                "physician_id": 9000,
                "reason": "bench",
                "DIAGNOSIS": [],
                "PRESCRIPTION": [],
                "LAB_RESULT": [],
                "PHYSICIAN": [],
            }
        ],
    }


def hospital_session(journal=None, engine=None):
    graph = hospital_schema()
    if engine is None:
        engine = MemoryEngine()
        graph.install(engine)
        populate_hospital(engine, HospitalConfig(patients=5))
        install = False
    else:
        install = False
    session = Penguin(graph, engine=engine, install=install, journal=journal)
    session.register_object(patient_chart_object(graph))
    return session


def run_inserts(session):
    for i in range(CHARTS):
        session.insert(OBJECT, new_chart(i))


def test_journal_overhead(tmp_path):
    """Report the per-update tax of intent journaling.

    The memory journal should cost little; the file journal pays two
    fsyncs per update and is expected to dominate — the point of the
    number is to make that price visible, not to bound it.
    """
    started = time.perf_counter()
    run_inserts(hospital_session(journal=None))
    bare = time.perf_counter() - started

    started = time.perf_counter()
    run_inserts(hospital_session(journal=MemoryJournal()))
    memory = time.perf_counter() - started

    file_journal = FileJournal(tmp_path / "plans.journal")
    started = time.perf_counter()
    run_inserts(hospital_session(journal=file_journal))
    durable = time.perf_counter() - started
    file_journal.close()

    print(
        f"\n[journal overhead] {CHARTS} translated inserts: "
        f"bare {bare:.3f}s, memory-journaled {memory:.3f}s "
        f"({memory / bare:.2f}x), file-journaled {durable:.3f}s "
        f"({durable / bare:.2f}x)"
    )
    # Sanity floor, not a perf bar: bookkeeping must stay same-order.
    assert memory < bare * 10


def test_recovery_throughput():
    """Resolve a backlog of torn plans and report plans/second."""
    backlog = 100
    graph = hospital_schema()
    engine = MemoryEngine()
    graph.install(engine)
    populate_hospital(engine, HospitalConfig(patients=5))
    session = hospital_session(journal=MemoryJournal(), engine=engine)
    journal = session.journal

    from repro.core.updates.translator import Translator
    from repro.relational.faults import SimulatedCrash

    for i in range(backlog):
        chart = new_chart(1000 + i)
        session.insert(OBJECT, chart)
        plan = Translator(session.object(OBJECT)).preview_delete(
            engine, key=(chart["patient_id"],)
        )
        faulty = FaultInjectingEngine(
            engine, FaultPlan().crash_at("mutation", at=1)
        )
        try:
            apply_journaled(faulty, journal, plan, atomic=False)
        except SimulatedCrash:
            pass
    assert len(journal.pending()) == backlog

    started = time.perf_counter()
    report = recover(engine, journal)
    elapsed = time.perf_counter() - started
    assert report.pending_resolved == backlog
    assert report.clean
    print(
        f"\n[recovery] {backlog} torn plans resolved in {elapsed:.3f}s "
        f"({backlog / elapsed:.0f} plans/s)"
    )


def test_retry_tax():
    """A 10% transient-fault rate: bulk insert still succeeds; report
    the wall-clock tax of the absorbed retries (backoff sleeps off)."""
    batch = [new_chart(i) for i in range(CHARTS)]

    session = hospital_session()
    started = time.perf_counter()
    session.insert_many(OBJECT, batch)
    clean = time.perf_counter() - started

    graph = hospital_schema()
    base = MemoryEngine()
    graph.install(base)
    populate_hospital(base, HospitalConfig(patients=5))
    faulty = FaultInjectingEngine(
        base, FaultPlan(seed=1).transient_rate(0.1, ("mutation",))
    )
    faulty.retry_policy = RetryPolicy(max_attempts=8, sleep=lambda _: None)
    session = hospital_session(engine=faulty)
    started = time.perf_counter()
    session.insert_many(OBJECT, batch)
    faulted = time.perf_counter() - started

    stats = faulty.retry_policy.stats()
    assert stats["gave_up"] == 0
    assert faulty.injected["transient"] > 0
    print(
        f"\n[retry tax] {CHARTS} bulk-inserted charts: clean {clean:.3f}s, "
        f"10% faults {faulted:.3f}s ({faulted / clean:.2f}x), "
        f"{stats['absorbed']} faults absorbed"
    )


@pytest.mark.parametrize("journal_kind", ["none", "memory"])
def test_translated_update_benchmark(benchmark, journal_kind):
    """pytest-benchmark group: one journaled chart insert+delete."""
    journal = MemoryJournal() if journal_kind == "memory" else None
    session = hospital_session(journal=journal)
    counter = [0]

    def one_round():
        i = counter[0]
        counter[0] += 1
        chart = new_chart(10_000 + i)
        session.insert(OBJECT, chart)
        session.delete(OBJECT, (chart["patient_id"],))

    benchmark.pedantic(one_round, rounds=20, iterations=1, warmup_rounds=2)
    if journal is not None:
        assert not journal.pending()
