"""Observability overhead: tracing + metrics must be nearly free.

The acceptance bar from the observability PR: running the standard
insert/query/delete workload with the full hub enabled (tracer,
metrics registry, slow log) must cost **less than 5% wall-clock
overhead** versus the same workload with observability disabled — and
the disabled path must be indistinguishable from never importing the
layer at all (every call site goes through no-op singletons).

The bar is measured on the sqlite engine — the store a production
deployment would run, same methodology as ``bench_bulk`` — where one
translated update costs ~1ms and the ~10 span/counter touches it
makes cost ~15µs.  The ``obs-overhead`` benchmark group also times the
in-memory engine, the worst case for relative overhead (the work per
op is smallest there).

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_obs.py -q``;
add ``--benchmark-only`` for the timing groups.
"""

import time

import pytest

import repro.obs as obs
from benchmarks.bench_json import summarize, write_bench_json
from repro.penguin import Penguin
from repro.relational.sqlite_engine import SqliteEngine
from repro.workloads.figures import course_info_object
from repro.workloads.university import populate_university, university_schema

OVERHEAD_CEILING = 0.05  # enabled hub: < 5% over disabled
ROUNDS = 120


def new_course(i):
    # The full Figure-4 shape: a course with an enrolled student, so
    # every insert translates to a 2-op plan (COURSES + GRADES).
    return {
        "course_id": f"OBS{i:05d}",
        "title": f"Observed Course {i}",
        "units": 3,
        "level": "graduate",
        "dept_name": "Computer Science",
        "DEPARTMENT": [],
        "CURRICULUM": [],
        "GRADES": [
            {
                "course_id": f"OBS{i:05d}",
                "student_id": 1011,
                "grade": "A",
                "STUDENT": [],
            }
        ],
    }


def fresh_session(engine=None):
    session = Penguin(university_schema(), engine=engine)
    populate_university(session.engine)
    session.register_object(course_info_object(session.graph))
    return session


def sqlite_session():
    return fresh_session(engine=SqliteEngine())


def workload(session, rounds=ROUNDS):
    """The canonical mixed workload: insert, read back, query, delete."""
    for i in range(rounds):
        session.insert("course_info", new_course(i))
        session.get("course_info", (f"OBS{i:05d}",))
        if i % 10 == 0:
            session.query("course_info")
    for i in range(rounds):
        session.delete("course_info", (f"OBS{i:05d}",))


def paired_ratios(run_a, run_b, pairs=40, rounds=5, make_session=None):
    """Sorted per-pair ``time(b) / time(a)`` ratios over short paired runs.

    Shared containers throttle in coarse bursts, so absolute best-of-N
    timings drift by far more than the effect under test.  Pairing
    short runs back-to-back (alternating the order within each pair)
    puts both sides in the same throttle window; the median ratio is
    then stable to ~1% where raw minima swing by 10%+.
    """
    make_session = make_session or sqlite_session
    ratios = []
    for i in range(pairs):
        session_a = make_session()
        session_b = make_session()
        if i % 2 == 0:
            start = time.perf_counter()
            run_a(session_a, rounds)
            a = time.perf_counter() - start
            start = time.perf_counter()
            run_b(session_b, rounds)
            b = time.perf_counter() - start
        else:
            start = time.perf_counter()
            run_b(session_b, rounds)
            b = time.perf_counter() - start
            start = time.perf_counter()
            run_a(session_a, rounds)
            a = time.perf_counter() - start
        ratios.append(b / a)
    ratios.sort()
    return ratios


def median_paired_ratio(run_a, run_b, pairs=40, rounds=5, make_session=None):
    """The median of :func:`paired_ratios` (the stable point estimate)."""
    ratios = paired_ratios(
        run_a, run_b, pairs=pairs, rounds=rounds, make_session=make_session
    )
    return ratios[len(ratios) // 2]


def disabled_run(session, rounds):
    obs.disable()
    workload(session, rounds=rounds)


def enabled_run(session, rounds):
    with obs.use():
        workload(session, rounds=rounds)


def test_enabled_overhead_under_five_percent():
    """The acceptance bar: full hub enabled costs < 5%.

    Up to three measurement attempts: this asserts an *upper bound*,
    and a scheduler burst landing on the enabled side can only inflate
    the measured ratio, never hide a real regression across attempts.
    """
    obs.disable()
    workload(sqlite_session(), rounds=5)  # warm imports and caches
    best = float("inf")
    best_ratios = None
    for _ in range(3):
        ratios = paired_ratios(disabled_run, enabled_run)
        ratio = ratios[len(ratios) // 2]
        if ratio < best:
            best, best_ratios = ratio, ratios
        if best - 1.0 < OVERHEAD_CEILING:
            break
    overhead = best - 1.0
    write_bench_json(
        "obs",
        {
            "enabled_vs_disabled_ratio": summarize(best_ratios),
            "enabled_overhead": overhead,
            "ceiling": OVERHEAD_CEILING,
        },
    )
    assert overhead < OVERHEAD_CEILING, (
        f"observability overhead {overhead:.1%} exceeds "
        f"{OVERHEAD_CEILING:.0%} (median enabled/disabled ratio "
        f"{best:.4f})"
    )


def test_disabled_layer_is_noop_priced():
    """Disabled observability must sit in the noise floor (~0 cost).

    Both runs go through the same call sites with the hub disabled;
    the measured ratio is pure noise, so it must land inside the same
    bound the enabled path is held to.
    """
    obs.disable()
    workload(sqlite_session(), rounds=5)
    best = float("inf")
    best_ratios = None
    for _ in range(3):
        ratios = paired_ratios(disabled_run, disabled_run, pairs=20)
        drift = abs(ratios[len(ratios) // 2] - 1.0)
        if drift < best:
            best, best_ratios = drift, ratios
        if best < OVERHEAD_CEILING:
            break
    write_bench_json(
        "obs",
        {
            "disabled_noise_ratio": summarize(best_ratios),
            "disabled_drift": best,
        },
    )
    assert best < OVERHEAD_CEILING, (
        f"disabled-path timing drifted {best:.1%} between identical "
        f"runs; the no-op singletons should make this free"
    )


@pytest.mark.benchmark(group="obs-overhead")
def test_bench_workload_disabled(benchmark):
    obs.disable()
    benchmark(lambda: workload(fresh_session(), rounds=30))


@pytest.mark.benchmark(group="obs-overhead")
def test_bench_workload_enabled(benchmark):
    def run():
        with obs.use():
            workload(fresh_session(), rounds=30)

    benchmark(run)


@pytest.mark.benchmark(group="obs-primitives")
def test_bench_span_open_close(benchmark):
    with obs.use() as hub:
        tracer = hub.tracer

        def run():
            for _ in range(1000):
                with tracer.span("probe", op="bench"):
                    pass

        benchmark(run)


@pytest.mark.benchmark(group="obs-primitives")
def test_bench_counter_inc(benchmark):
    with obs.use() as hub:
        counter = hub.metrics.counter("bench_total", op="bench")
        benchmark(lambda: [counter.inc() for _ in range(1000)])
