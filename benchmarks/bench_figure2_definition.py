"""Figure 2: definition of the view object ω, in three stages.

(a) the information metric extracts the relevant subgraph G around the
pivot COURSES; (b) G unfolds into the maximal tree T, breaking the
circuit by duplicating PEOPLE; (c) pruning yields ω with complexity 5.
Each stage is printed (the figure's content) and benchmarked.
"""

import pytest

from repro.core.information_metric import InformationMetric
from repro.core.tree_builder import build_maximal_tree, prune_tree
from repro.workloads.figures import course_info_object

OMEGA_SELECTION = ["COURSES", "DEPARTMENT", "CURRICULUM", "GRADES", "STUDENT"]


@pytest.mark.benchmark(group="figure2")
def test_figure2a_subgraph(benchmark, university_graph, metric):
    subgraph = benchmark(metric.extract_subgraph, university_graph, "COURSES")
    assert subgraph.relations == {
        "COURSES", "CURRICULUM", "DEPARTMENT", "FACULTY",
        "GRADES", "PEOPLE", "STUDENT",
    }
    print()
    print("=== Figure 2(a): relevant subgraph G ===")
    print(subgraph.describe())


@pytest.mark.benchmark(group="figure2")
def test_figure2b_tree(benchmark, university_graph, metric):
    subgraph = metric.extract_subgraph(university_graph, "COURSES")
    tree = benchmark(
        build_maximal_tree, university_graph, subgraph, metric.weights
    )
    # The circuit in G duplicates PEOPLE: one copy under DEPARTMENT,
    # one under STUDENT — exactly the paper's caption.
    people = tree.nodes_for_relation("PEOPLE")
    assert len(people) == 2
    assert {tree.parent(n.node_id).relation for n in people} == {
        "DEPARTMENT", "STUDENT",
    }
    print()
    print("=== Figure 2(b): maximal tree T (two copies of PEOPLE) ===")
    print(tree.describe())


@pytest.mark.benchmark(group="figure2")
def test_figure2c_pruned_object(benchmark, university_graph, metric):
    subgraph = metric.extract_subgraph(university_graph, "COURSES")
    tree = build_maximal_tree(university_graph, subgraph, metric.weights)
    pruned = benchmark(prune_tree, tree, OMEGA_SELECTION)
    assert sorted(pruned.node_ids) == sorted(OMEGA_SELECTION)
    print()
    print("=== Figure 2(c): pruned tree of ω ===")
    print(pruned.describe())


@pytest.mark.benchmark(group="figure2")
def test_figure2_full_pipeline(benchmark, university_graph):
    omega = benchmark(course_info_object, university_graph)
    assert omega.complexity == 5
    print()
    print("=== ω (full definition) ===")
    print(omega.describe())


@pytest.mark.benchmark(group="figure2-ablation")
@pytest.mark.parametrize("threshold", [0.2, 0.35, 0.5, 0.75])
def test_metric_threshold_sweep(benchmark, university_graph, threshold):
    """Ablation: the metric threshold drives the subgraph (and hence
    candidate object) size."""
    metric = InformationMetric(threshold=threshold)
    subgraph = benchmark(metric.extract_subgraph, university_graph, "COURSES")
    print(
        f"threshold={threshold}: |G| = {len(subgraph.relations)} relations, "
        f"{len(subgraph.connections)} edges"
    )
    assert "COURSES" in subgraph.relations
