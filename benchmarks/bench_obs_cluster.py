"""Cluster observability overhead: the plane must be nearly free.

The cluster PR widens the instrumented surface — trace contexts ride
every request, spans are stamped with trace ids at the roots, shipped
records carry the trace across the replication hop, per-component
registries take the serving counters, and the flight recorder's
anomaly hook sits on the failover and breaker paths. The acceptance
bar stays where the single-node observability PR set it: the whole
plane enabled must cost **less than 5%** wall-clock versus disabled
on the replicated sharded write workload.

Methodology matches ``bench_obs``: short paired runs, alternating
order inside each pair so both sides share a throttle window; the
median of the per-pair ratios is the point estimate.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_obs_cluster.py -q``.
"""

import itertools
import os
import tempfile

import pytest

import repro.obs as obs
from benchmarks.bench_json import summarize, write_bench_json
from benchmarks.bench_obs import median_paired_ratio, paired_ratios
from repro.relational.sqlite_engine import SqliteEngine
from repro.replicate import ReplicationConfig
from repro.shard import ShardedPenguin, sharded_loader
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)

OBJECT = "patient_chart"
OVERHEAD_CEILING = 0.05  # full cluster plane enabled: < 5% over disabled

_SEQ = itertools.count()


def cluster_session():
    """A replicated 2-shard cluster, the serving topology under test.

    Every stack — both shard primaries and all four replicas — stores
    into *file-backed* sqlite, the same methodology ``bench_bulk``
    established: the plane's per-op cost is measured against the real
    storage work a production deployment pays per write (replicas that
    may be promoted persist the way their primaries do), not against
    the in-memory engine's noise floor.
    """
    tmpdir = tempfile.TemporaryDirectory(prefix="bench_obs_cluster_")

    def engine():
        return SqliteEngine(
            os.path.join(tmpdir.name, f"stack{next(_SEQ)}.sqlite")
        )

    graph = hospital_schema()
    sharded = ShardedPenguin(
        graph,
        "PATIENT",
        num_shards=2,
        engines=[engine(), engine()],
        install=True,
        replication=ReplicationConfig(
            replicas=2, apply_inline=True, engine_factory=engine
        ),
    )
    populate_hospital(sharded_loader(sharded), HospitalConfig(patients=4))
    sharded.register_object(patient_chart_object(graph))
    sharded._bench_tmpdir = tmpdir  # released when the run closes it
    return sharded


def fresh_chart(pid):
    return {
        "patient_id": pid,
        "name": f"Bench Patient {pid}",
        "birth_year": 1970,
        "ward_name": None,
        "VISIT": [
            {
                "patient_id": pid,
                "visit_no": 1,
                "visit_date": "1991-05-29",
                "physician_id": 9000,
                "reason": "bench",
                "DIAGNOSIS": [],
                "PRESCRIPTION": [],
                "LAB_RESULT": [],
                "PHYSICIAN": [],
            }
        ],
    }


def workload(sharded, rounds):
    """Replicated writes + reads: every insert ships to two replicas
    with the trace context riding the record; every read goes through
    the per-component serving counters."""
    base = 80_000
    for i in range(rounds):
        for offset in range(4):
            pid = base + i * 10 + offset
            with obs.activate(request_id=f"req-bench-{pid}"):
                sharded.insert(OBJECT, fresh_chart(pid))
            sharded.get(OBJECT, (pid,))
        for offset in range(4):
            pid = base + i * 10 + offset
            with obs.activate(request_id=f"req-bench-del-{pid}"):
                sharded.delete(OBJECT, (pid,))


def _teardown(sharded):
    sharded.close()
    tmpdir = getattr(sharded, "_bench_tmpdir", None)
    if tmpdir is not None:
        tmpdir.cleanup()


def disabled_run(sharded, rounds):
    obs.disable()
    try:
        workload(sharded, rounds)
    finally:
        _teardown(sharded)


def enabled_run(sharded, rounds):
    try:
        with obs.use():
            workload(sharded, rounds)
    finally:
        _teardown(sharded)


def test_cluster_plane_overhead_under_five_percent():
    """The acceptance bar: the whole cluster plane costs < 5%.

    Three attempts keep the upper-bound assertion honest under bursty
    schedulers — noise inflates the ratio, it cannot hide a real
    regression.
    """
    obs.disable()
    disabled_run(cluster_session(), rounds=1)  # warm imports and caches
    best = float("inf")
    best_ratios = None
    for _ in range(3):
        ratios = paired_ratios(
            disabled_run,
            enabled_run,
            pairs=12,
            rounds=3,
            make_session=cluster_session,
        )
        ratio = ratios[len(ratios) // 2]
        if ratio < best:
            best, best_ratios = ratio, ratios
        if best - 1.0 < OVERHEAD_CEILING:
            break
    overhead = best - 1.0
    write_bench_json(
        "obs_cluster",
        {
            "enabled_vs_disabled_ratio": summarize(best_ratios),
            "enabled_overhead": overhead,
            "ceiling": OVERHEAD_CEILING,
            "topology": (
                "2 shards x 2 replicas, inline apply, "
                "file-backed sqlite on every stack"
            ),
        },
    )
    assert overhead < OVERHEAD_CEILING, (
        f"cluster observability overhead {overhead:.1%} exceeds "
        f"{OVERHEAD_CEILING:.0%} (median enabled/disabled ratio "
        f"{best:.4f})"
    )


def test_trace_context_attach_is_cheap():
    """Attaching a context and stamping a root span is a fixed, tiny
    cost: the ratio of traced to untraced span opens stays within the
    same 5% band the end-to-end bar uses."""

    def untraced(_session, rounds):
        with obs.use() as hub:
            for _ in range(rounds * 2000):
                with hub.tracer.span("probe"):
                    pass

    def traced(_session, rounds):
        with obs.use() as hub:
            with obs.activate(request_id="req-prim"):
                for _ in range(rounds * 2000):
                    with hub.tracer.span("probe"):
                        pass

    ratio = median_paired_ratio(
        untraced, traced, pairs=20, rounds=3, make_session=lambda: None
    )
    write_bench_json(
        "obs_cluster", {"traced_span_ratio": {"median": ratio}}
    )
    # generous bound: stamping reads one contextvar per *root* span
    assert ratio < 1.5


@pytest.mark.benchmark(group="obs-cluster-overhead")
def test_bench_cluster_workload_disabled(benchmark):
    def run():
        disabled_run(cluster_session(), rounds=2)

    benchmark(run)


@pytest.mark.benchmark(group="obs-cluster-overhead")
def test_bench_cluster_workload_enabled(benchmark):
    def run():
        enabled_run(cluster_session(), rounds=2)

    benchmark(run)
