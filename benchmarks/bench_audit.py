"""Audit-trail overhead: recording provenance must be nearly free.

The acceptance bar from the audit PR: running the standard
insert/query/delete workload with a :class:`MemoryAuditLog` attached
(every translated update records its plan, images, island, and policy
answers) must cost **less than 10% wall-clock overhead** versus the
same workload with no audit log — and the ``audit=None`` path must sit
at the noise floor, because every call site guards on a single
attribute check before doing any work.

Methodology is identical to ``bench_obs``: the bar is measured on the
sqlite engine with median-of-paired-ratios (alternating order within
each pair so both sides share the same throttle window), up to three
attempts because the assertion is an upper bound.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_audit.py -q``.
"""

import time

import pytest

import repro.obs as obs
from benchmarks.bench_json import summarize, write_bench_json
from benchmarks.bench_obs import workload
from repro.obs.audit import MemoryAuditLog
from repro.penguin import Penguin
from repro.relational.sqlite_engine import SqliteEngine
from repro.workloads.figures import course_info_object
from repro.workloads.university import populate_university, university_schema

OVERHEAD_CEILING = 0.10  # audited session: < 10% over unaudited
pytestmark = pytest.mark.audit


def build_session(audited):
    session = Penguin(
        university_schema(),
        engine=SqliteEngine(),
        audit=MemoryAuditLog() if audited else None,
    )
    populate_university(session.engine)
    session.register_object(course_info_object(session.graph))
    return session


def paired_session_ratios(make_a, make_b, pairs=40, rounds=5):
    """``bench_obs.paired_ratios``, but the *sessions* differ, not the
    run wrapper: side a is built by ``make_a``, side b by ``make_b``,
    construction kept outside the timed region."""
    ratios = []
    for i in range(pairs):
        session_a = make_a()
        session_b = make_b()
        if i % 2 == 0:
            start = time.perf_counter()
            workload(session_a, rounds=rounds)
            a = time.perf_counter() - start
            start = time.perf_counter()
            workload(session_b, rounds=rounds)
            b = time.perf_counter() - start
        else:
            start = time.perf_counter()
            workload(session_b, rounds=rounds)
            b = time.perf_counter() - start
            start = time.perf_counter()
            workload(session_a, rounds=rounds)
            a = time.perf_counter() - start
        ratios.append(b / a)
    ratios.sort()
    return ratios


def plain_session():
    return build_session(audited=False)


def audited_session():
    return build_session(audited=True)


def test_audit_overhead_under_ten_percent():
    """The acceptance bar: a live audit log costs < 10% on sqlite."""
    obs.disable()
    workload(plain_session(), rounds=5)  # warm imports and caches
    best = float("inf")
    best_ratios = None
    for _ in range(3):
        ratios = paired_session_ratios(plain_session, audited_session)
        ratio = ratios[len(ratios) // 2]
        if ratio < best:
            best, best_ratios = ratio, ratios
        if best - 1.0 < OVERHEAD_CEILING:
            break
    overhead = best - 1.0
    write_bench_json(
        "audit",
        {
            "audited_vs_plain_ratio": summarize(best_ratios),
            "audit_overhead": overhead,
            "ceiling": OVERHEAD_CEILING,
        },
    )
    assert overhead < OVERHEAD_CEILING, (
        f"audit overhead {overhead:.1%} exceeds {OVERHEAD_CEILING:.0%} "
        f"(median audited/plain ratio {best:.4f})"
    )


def test_disabled_audit_at_noise_floor():
    """``audit=None`` sessions must be indistinguishable from each other.

    Both sides run unaudited through the same guarded call sites; the
    measured ratio is pure noise and must land inside the same bound.
    """
    obs.disable()
    workload(plain_session(), rounds=5)
    best = float("inf")
    best_ratios = None
    for _ in range(3):
        ratios = paired_session_ratios(
            plain_session, plain_session, pairs=20
        )
        drift = abs(ratios[len(ratios) // 2] - 1.0)
        if drift < best:
            best, best_ratios = drift, ratios
        if best < OVERHEAD_CEILING:
            break
    write_bench_json(
        "audit",
        {
            "unaudited_noise_ratio": summarize(best_ratios),
            "unaudited_drift": best,
        },
    )
    assert best < OVERHEAD_CEILING, (
        f"unaudited-path timing drifted {best:.1%} between identical "
        f"runs; the attribute guard should make this free"
    )


def test_audit_trail_complete_and_replayable():
    """Fast sanity: every update is recorded and the log replays clean."""
    session = build_session(audited=True)
    rounds = 10
    workload(session, rounds=rounds)
    log = session.audit
    # One record per translated update: ``rounds`` inserts then
    # ``rounds`` deletes (reads and queries are not updates).
    assert len(log) == 2 * rounds
    assert all(r.outcome == "committed" for r in log.records())
    report = session.replay_audit()
    assert report.ok, report.summary()
