"""Added experiment: view-object translation vs the Keller baseline.

Section 5 motivates the extensions: "Keller's deletion algorithm deletes
the matching database tuple from the root relation ... This solution
does not satisfy the semantic constraints of view objects." The bench
makes that concrete:

* on an *equivalent single-tuple update* (retitle a course) the two
  frameworks emit the same one-operation plan — no view-object overhead;
* on a *course deletion*, the flat translator emits exactly one delete
  and leaves orphaned GRADES and dangling CURRICULUM rows behind, while
  VO-CD emits the full repercussion set and keeps the database
  consistent. The printed rows report operations emitted and violations
  left, the series a comparison table would carry.
"""

import copy

import pytest

from repro.core.updates.translator import Translator
from repro.keller.translator import KellerTranslator
from repro.keller.views import JoinEdge, RelationalView
from repro.structural.integrity import IntegrityChecker
from repro.workloads.figures import course_info_object


def fresh():
    from benchmarks.conftest import build_university_engine

    return build_university_engine()


def flat_view():
    return RelationalView(
        "course_flat",
        ["COURSES"],
        projection=[
            "COURSES.course_id",
            "COURSES.title",
            "COURSES.units",
            "COURSES.level",
            "COURSES.dept_name",
        ],
    )


def connected_course(engine):
    for values in engine.scan("COURSES"):
        if engine.find_by(
            "GRADES", ("course_id",), (values[0],)
        ) and engine.find_by("CURRICULUM", ("course_id",), (values[0],)):
            return values[0]
    raise AssertionError("no connected course")


@pytest.mark.benchmark(group="vs-keller")
def test_bench_retitle_flat_view(benchmark):
    graph, probe = fresh()
    course_id = connected_course(probe)
    view = flat_view()
    translator = KellerTranslator(view)

    def setup():
        __, engine = fresh()
        return (engine,), {}

    def run(engine):
        return translator.replace(
            engine,
            {"COURSES.course_id": course_id},
            {"COURSES.title": "Retitled"},
        )

    plan = benchmark.pedantic(run, setup=setup, rounds=10)
    print(f"flat retitle: {len(plan)} operations")
    assert len(plan) == 1


@pytest.mark.benchmark(group="vs-keller")
def test_bench_retitle_view_object(benchmark):
    graph, probe = fresh()
    omega = course_info_object(graph)
    translator = Translator(omega)
    course_id = connected_course(probe)

    def setup():
        __, engine = fresh()
        old = translator.instantiate(engine, (course_id,))
        new = copy.deepcopy(old.to_dict())
        new["title"] = "Retitled"
        return (engine, old, new), {}

    def run(engine, old, new):
        return translator.replace(engine, old, new)

    plan = benchmark.pedantic(run, setup=setup, rounds=10)
    print(f"view-object retitle: {len(plan)} operations")
    assert len(plan) == 1  # same minimal plan as the flat baseline


@pytest.mark.benchmark(group="vs-keller")
def test_bench_delete_flat_view_leaves_orphans(benchmark):
    graph, probe = fresh()
    course_id = connected_course(probe)
    view = flat_view()
    translator = KellerTranslator(view)
    checker = IntegrityChecker(graph)
    observed = {}

    def setup():
        __, engine = fresh()
        observed["engine"] = engine
        return (engine,), {}

    def run(engine):
        return translator.delete(
            engine, {"COURSES.course_id": course_id}
        )

    plan = benchmark.pedantic(run, setup=setup, rounds=5)
    engine = observed["engine"]
    violations = checker.check(engine)
    print(
        f"flat delete: {len(plan)} operations, "
        f"{len(violations)} integrity violations left behind"
    )
    assert len(plan) == 1
    # Keller's root-relation deletion does NOT satisfy the structural
    # constraints: orphaned grades and dangling curriculum rows remain.
    assert violations


@pytest.mark.benchmark(group="vs-keller")
def test_bench_delete_view_object_consistent(benchmark):
    graph, probe = fresh()
    omega = course_info_object(graph)
    translator = Translator(omega)
    checker = IntegrityChecker(graph)
    course_id = connected_course(probe)
    observed = {}

    def setup():
        __, engine = fresh()
        observed["engine"] = engine
        return (engine,), {}

    def run(engine):
        return translator.delete(engine, key=(course_id,))

    plan = benchmark.pedantic(run, setup=setup, rounds=5)
    engine = observed["engine"]
    violations = checker.check(engine)
    print(
        f"VO-CD delete: {len(plan)} operations, "
        f"{len(violations)} integrity violations left behind"
    )
    assert len(plan) > 1
    assert violations == []


@pytest.mark.benchmark(group="vs-keller")
def test_bench_enumeration_cost(benchmark):
    """Cost of enumerating + criteria-filtering flat deletion candidates
    — the work the definition-time dialog avoids at runtime."""
    from repro.keller.enumeration import enumerate_deletions, valid_translations

    graph, engine = fresh()
    view = RelationalView(
        "cd",
        ["COURSES", "DEPARTMENT"],
        [JoinEdge("COURSES", "DEPARTMENT", [("dept_name", "dept_name")])],
        projection=["COURSES.course_id", "DEPARTMENT.dept_name"],
    )
    rows = view.tuples(engine)
    victim = rows[0]
    view_tuple = dict(zip(view.projection, victim))
    expected = [t for t in rows if t != victim]

    def run():
        candidates = enumerate_deletions(view, engine, view_tuple)
        return valid_translations(view, engine, candidates, expected)

    valid = benchmark(run)
    print(f"enumeration: {len(valid)} valid translation(s) survive")
    assert len(valid) >= 1
