"""Bulk update pipeline vs. the per-instance translation loop.

A per-instance ``insert()`` pays, for every instance: a transaction
(savepoint + commit), the VO-CI dependency probes against the live
engine, and one statement per produced operation. The bulk pipeline
translates the whole batch over a :class:`BufferedEngine` overlay
(memoized reads, batched pre-warm), coalesces the per-instance plans,
and flushes once through ``executemany`` inside a single transaction.

The headline check asserts the acceptance bar: inserting 1000 instances
through ``insert_many`` must be >= 5x faster than the sequential loop on
a file-backed sqlite engine, where each per-instance commit pays real
journal I/O exactly as a production store would.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_bulk.py -q``;
add ``--benchmark-only`` for the timing groups.
"""

import time

import pytest

from benchmarks.bench_json import summarize, write_bench_json
from repro.penguin import Penguin
from repro.relational.sqlite_engine import SqliteEngine
from repro.workloads.figures import course_info_object
from repro.workloads.university import populate_university, university_schema

SPEEDUP_FLOOR = 5.0
BATCH = 1000


def new_course(i):
    return {
        "course_id": f"BULK{i:05d}",
        "title": f"Bulk Course {i}",
        "units": 3,
        "level": "graduate",
        "dept_name": "Computer Science",
        "DEPARTMENT": [],
        "CURRICULUM": [],
        "GRADES": [],
    }


def sqlite_session(path):
    session = Penguin(university_schema(), engine=SqliteEngine(str(path)))
    populate_university(session.engine)
    session.register_object(course_info_object(session.graph))
    return session


def memory_session():
    session = Penguin(university_schema())
    populate_university(session.engine)
    session.register_object(course_info_object(session.graph))
    return session


def test_bulk_speedup_sqlite(tmp_path):
    """The acceptance bar: 1k-instance bulk insert >= 5x the loop."""
    batch = [new_course(i) for i in range(BATCH)]

    session = sqlite_session(tmp_path / "sequential.db")
    per_insert = []
    started = time.perf_counter()
    for data in batch:
        insert_started = time.perf_counter()
        session.insert("course_info", data)
        per_insert.append(time.perf_counter() - insert_started)
    sequential = time.perf_counter() - started

    session = sqlite_session(tmp_path / "bulk.db")
    started = time.perf_counter()
    plan = session.insert_many("course_info", batch)
    bulk = time.perf_counter() - started

    assert session.engine.count("COURSES") >= BATCH
    assert len(plan) == BATCH
    speedup = sequential / bulk
    write_bench_json(
        "bulk",
        {
            "sequential_insert_s": summarize(per_insert),
            "sequential_total_s": sequential,
            "bulk_total_s": bulk,
            "batch": BATCH,
            "speedup": speedup,
            "floor": SPEEDUP_FLOOR,
        },
    )
    print(
        f"\n[sqlite, file-backed] {BATCH} inserts: sequential "
        f"{sequential:.3f}s, bulk {bulk:.3f}s -> {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"bulk insert speedup {speedup:.1f}x below the "
        f"{SPEEDUP_FLOOR}x acceptance bar"
    )


def test_bulk_equals_sequential_state(tmp_path):
    """Bulk and sequential loops must leave identical relation contents."""
    batch = [new_course(i) for i in range(50)]
    seq = sqlite_session(tmp_path / "a.db")
    for data in batch:
        seq.insert("course_info", data)
    blk = sqlite_session(tmp_path / "b.db")
    blk.insert_many("course_info", batch)
    for relation in seq.engine.relation_names():
        assert sorted(seq.engine.scan(relation)) == sorted(
            blk.engine.scan(relation)
        ), relation


@pytest.mark.benchmark(group="bulk-insert")
def test_bench_insert_loop_memory(benchmark):
    counter = iter(range(10**9))

    def loop():
        session = memory_session()
        base = next(counter) * 100
        for i in range(100):
            session.insert("course_info", new_course(base + i))

    benchmark(loop)


@pytest.mark.benchmark(group="bulk-insert")
def test_bench_insert_many_memory(benchmark):
    counter = iter(range(10**9))

    def bulk():
        session = memory_session()
        base = next(counter) * 100
        session.insert_many(
            "course_info", [new_course(base + i) for i in range(100)]
        )

    benchmark(bulk)


@pytest.mark.benchmark(group="bulk-delete")
def test_bench_delete_many_memory(benchmark):
    def run():
        session = memory_session()
        batch = [new_course(i) for i in range(100)]
        session.insert_many("course_info", batch)
        session.delete_many(
            "course_info", [(f"BULK{i:05d}",) for i in range(100)]
        )

    benchmark(run)
