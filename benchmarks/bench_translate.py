"""Compiled translator vs. the interpreted tree walk.

Two families of measurements, one acceptance bar.

**Pure translation** (memory engine, deep chain): ``translate()`` turns
one view-object update into an ``UpdatePlan`` without applying it. The
interpreted walk re-derives everything per call — ``tuples_at`` root
walks per node, per-tuple connection-rule rebuilding, name-keyed
attribute lookups, and ``find_by`` dependency probes that rescan the
growing overlay (quadratic in the instance size for insertions). The
compiled program uses the definition-time level map, positional
attribute plans, pre-resolved rules, memoized by-key existence probes,
and overlay fast paths whose preconditions were proven by its own loop.

**The fixed stragglers** (file-backed sqlite): ``delete_where`` /
``update_where`` formerly hand-rolled a per-instance loop — one
transaction, one journaled intent, one audit record *per instance*.
They now ride the same batch pipeline as ``delete_many``: translate
over one overlay, coalesce, flush once through ``executemany``. The
baseline reproduces the old loop with the interpreted translator; the
measurement reproduces the new call. Per-update cost is total time over
matched instances, on a file-backed database where every per-instance
commit pays real journal I/O. Like ``bench_bulk``'s flat courses, the
charts carry no visits so the measurement isolates the per-transaction
overhead the batch path removes; translation cost on deep instances is
what the pure-translation entries above measure.

The acceptance bar: the **median speedup across the optimized
per-update paths** (chain insertion translate, ``delete_where``,
``update_where``) must be >= 5x. Replace/delete pure-translation
speedups are reported as detail entries — they share most of their
cost with the engine overlay and gain less.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_translate.py -q``.
"""

import copy
import statistics
import time

from benchmarks.bench_json import write_bench_json
from repro.core.query import execute_query
from repro.core.updates.operations import (
    CompleteDeletion,
    CompleteInsertion,
    Replacement,
)
from repro.core.updates.translator import Translator
from repro.relational.memory_engine import MemoryEngine
from repro.relational.sqlite_engine import SqliteEngine
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)
from repro.workloads.synthetic import chain_object, chain_schema, populate_chain

SPEEDUP_FLOOR = 5.0
CHAIN_DEPTH = 7
CHAIN_FANOUT = 2
TRANSLATE_REPS = 12
WHERE_PATIENTS = 400


def rekey(node, new_root):
    if "k0" in node:
        node["k0"] = new_root
    for value in node.values():
        if isinstance(value, list):
            for child in value:
                if isinstance(child, dict):
                    rekey(child, new_root)
    return node


def chain_translator(compiled):
    engine = MemoryEngine()
    graph = chain_schema(CHAIN_DEPTH, True, True)
    graph.install(engine)
    populate_chain(
        engine, depth=CHAIN_DEPTH, roots=2, fanout=CHAIN_FANOUT,
        peninsula_refs=2,
    )
    translator = Translator(
        chain_object(graph, CHAIN_DEPTH, True, True),
        compile_plans=compiled,
    )
    return engine, translator


def time_translate(engine, translator, request):
    translator.translate(engine, request)  # warm caches, prove it runs
    started = time.perf_counter()
    for _ in range(TRANSLATE_REPS):
        translator.translate(engine, request)
    return (time.perf_counter() - started) / TRANSLATE_REPS


def translate_entries():
    """Pure-translation per-op timings for both translators."""
    entries = {}
    timings = {}
    for label, compiled in (("interpreted", False), ("compiled", True)):
        engine, translator = chain_translator(compiled)
        old = translator.instantiate(engine, (0,))
        fresh = translator._coerce_instance(
            rekey(copy.deepcopy(old.to_dict()), 999)
        )
        changed = dict(old.to_dict())
        changed["payload"] = "touched"
        requests = {
            "insert": CompleteInsertion(fresh),
            "replace": Replacement(
                old, translator._coerce_instance(changed)
            ),
            "delete": CompleteDeletion(old),
        }
        for op, request in requests.items():
            timings[(op, label)] = time_translate(engine, translator, request)
    for op in ("insert", "replace", "delete"):
        interpreted = timings[(op, "interpreted")]
        compiled = timings[(op, "compiled")]
        entries[f"translate_{op}"] = {
            "interpreted_s": interpreted,
            "compiled_s": compiled,
            "speedup": interpreted / compiled,
        }
    return entries


def hospital_sqlite(path):
    engine = SqliteEngine(str(path))
    graph = hospital_schema()
    graph.install(engine)
    populate_hospital(
        engine,
        HospitalConfig(patients=WHERE_PATIENTS, visits_per_patient=0),
    )
    return engine, graph


def where_entries(tmp_path):
    """The fixed stragglers: old per-instance loop vs the batch path."""
    entries = {}

    # delete_where: the old code translated and applied one instance at
    # a time, each with its own transaction; reproduce it verbatim.
    engine_old, graph_old = hospital_sqlite(tmp_path / "delete_old.db")
    loop_translator = Translator(
        patient_chart_object(graph_old), compile_plans=False
    )
    started = time.perf_counter()
    matched = 0
    for instance in execute_query(
        loop_translator.view_object, engine_old, "birth_year > 0"
    ):
        loop_translator.delete(engine_old, instance)
        matched += 1
    loop_total = time.perf_counter() - started

    engine_new, graph_new = hospital_sqlite(tmp_path / "delete_new.db")
    batch_translator = Translator(patient_chart_object(graph_new))
    started = time.perf_counter()
    plan = batch_translator.delete_where(engine_new, "birth_year > 0")
    batch_total = time.perf_counter() - started

    assert matched == WHERE_PATIENTS
    assert plan.count("delete") >= matched
    assert engine_new.count("PATIENT") == engine_old.count("PATIENT") == 0
    entries["delete_where"] = {
        "instances": matched,
        "loop_total_s": loop_total,
        "batch_total_s": batch_total,
        "loop_per_update_s": loop_total / matched,
        "batch_per_update_s": batch_total / matched,
        "speedup": loop_total / batch_total,
    }

    # update_where: same shape, replacement instead of deletion.
    def rename(chart):
        chart["name"] = f"Renamed #{chart['patient_id']}"
        return chart

    engine_old, graph_old = hospital_sqlite(tmp_path / "update_old.db")
    loop_translator = Translator(
        patient_chart_object(graph_old), compile_plans=False
    )
    started = time.perf_counter()
    matched = 0
    for instance in execute_query(
        loop_translator.view_object, engine_old, "birth_year > 0"
    ):
        loop_translator.replace(
            engine_old, instance, rename(instance.to_dict())
        )
        matched += 1
    loop_total = time.perf_counter() - started

    engine_new, graph_new = hospital_sqlite(tmp_path / "update_new.db")
    batch_translator = Translator(patient_chart_object(graph_new))
    started = time.perf_counter()
    plan = batch_translator.update_where(engine_new, "birth_year > 0", rename)
    batch_total = time.perf_counter() - started

    assert matched == WHERE_PATIENTS
    assert plan.count("replace") >= matched
    for name in engine_old.relation_names():
        assert set(engine_old.scan(name)) == set(engine_new.scan(name))
    entries["update_where"] = {
        "instances": matched,
        "loop_total_s": loop_total,
        "batch_total_s": batch_total,
        "loop_per_update_s": loop_total / matched,
        "batch_per_update_s": batch_total / matched,
        "speedup": loop_total / batch_total,
    }
    return entries


def test_translate_speedup(tmp_path):
    """The acceptance bar: >= 5x median over the optimized paths."""
    entries = translate_entries()
    entries.update(where_entries(tmp_path))

    headline = [
        entries["translate_insert"]["speedup"],
        entries["delete_where"]["speedup"],
        entries["update_where"]["speedup"],
    ]
    median = statistics.median(headline)
    entries["headline"] = {
        "paths": ["translate_insert", "delete_where", "update_where"],
        "speedups": headline,
        "median_speedup": median,
        "floor": SPEEDUP_FLOOR,
    }
    write_bench_json("translate", entries)
    print(
        "\n[translate] insert {0:.1f}x, replace {1:.1f}x, delete {2:.1f}x; "
        "delete_where {3:.1f}x, update_where {4:.1f}x -> median {5:.1f}x".format(
            entries["translate_insert"]["speedup"],
            entries["translate_replace"]["speedup"],
            entries["translate_delete"]["speedup"],
            entries["delete_where"]["speedup"],
            entries["update_where"]["speedup"],
            median,
        )
    )
    assert median >= SPEEDUP_FLOOR, (
        f"median per-update speedup {median:.1f}x is below the "
        f"{SPEEDUP_FLOOR}x acceptance bar"
    )


def test_compiled_plans_equal_interpreted_plans():
    """The ground rule the speedup rides on: identical plans."""
    engine_i, interp = chain_translator(False)
    engine_c, comp = chain_translator(True)
    old_i = interp.instantiate(engine_i, (0,))
    old_c = comp.instantiate(engine_c, (0,))
    fresh_i = rekey(copy.deepcopy(old_i.to_dict()), 999)
    plan_i = interp.insert(engine_i, copy.deepcopy(fresh_i))
    plan_c = comp.insert(engine_c, copy.deepcopy(fresh_i))
    assert plan_i.operations == plan_c.operations
    assert plan_i.reasons == plan_c.reasons
    plan_i = interp.delete(engine_i, old_i)
    plan_c = comp.delete(engine_c, old_c)
    assert plan_i.operations == plan_c.operations
    assert plan_i.reasons == plan_c.reasons
