"""Replication overhead: quorum-1 log shipping must be nearly free.

The acceptance bar from the replication PR: running a write-heavy
view-object workload against a :class:`ShardedPenguin` with one
replica per shard (``ReplicationConfig(replicas=1, quorum=1)``,
background apply) must cost **less than 10% median wall-clock
overhead** versus the identical deployment with ``replication=None``.
The ack path adds exactly one durable inbox append per committed
record — apply happens off the write path on the applier thread — so
the replicated write should hide inside the translation pipeline the
client already pays for.

Methodology is ``bench_audit``'s: median-of-paired-ratios with
alternating order inside each pair (both sides share any throttle
window), sessions built outside the timed region, up to three attempts
because the assertion is an upper bound.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_replication.py -q``.
"""

import time

import pytest

import repro.obs as obs
from benchmarks.bench_json import summarize, write_bench_json
from repro.obs.history import divergence
from repro.replicate import ReplicationConfig
from repro.shard import ShardedPenguin, sharded_loader
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)

OVERHEAD_CEILING = 0.10  # one replica, quorum 1: < 10% over unreplicated
OBJECT = "patient_chart"
pytestmark = pytest.mark.replication


def chart(pid):
    return {
        "patient_id": pid,
        "name": f"Bench Patient {pid}",
        "birth_year": 1970,
        "ward_name": None,
        "VISIT": [
            {
                "patient_id": pid,
                "visit_no": 1,
                "visit_date": "1991-05-29",
                "physician_id": 9000,
                "reason": "bench",
                "DIAGNOSIS": [],
                "PRESCRIPTION": [],
                "LAB_RESULT": [],
                "PHYSICIAN": [],
            }
        ],
    }


def build_session(replicated):
    graph = hospital_schema()
    sharded = ShardedPenguin(
        graph,
        "PATIENT",
        num_shards=2,
        replication=(
            ReplicationConfig(replicas=1, quorum=1) if replicated else None
        ),
    )
    populate_hospital(sharded_loader(sharded), HospitalConfig(patients=4))
    sharded.register_object(patient_chart_object(graph))
    return sharded


def write_workload(sharded, rounds=6):
    """Insert then delete ``rounds`` charts: every op is a translated
    write through the full pipeline, which is what replication taxes."""
    for i in range(rounds):
        sharded.insert(OBJECT, chart(50_000 + i))
    for i in range(rounds):
        sharded.delete(OBJECT, (50_000 + i,))


def paired_session_ratios(pairs=20, rounds=6):
    """Median-of-paired-ratios, sides alternating within each pair;
    sessions are built (and closed) outside the timed region."""
    ratios = []
    for i in range(pairs):
        plain = build_session(replicated=False)
        replicated = build_session(replicated=True)
        try:
            if i % 2 == 0:
                start = time.perf_counter()
                write_workload(plain, rounds=rounds)
                a = time.perf_counter() - start
                start = time.perf_counter()
                write_workload(replicated, rounds=rounds)
                b = time.perf_counter() - start
            else:
                start = time.perf_counter()
                write_workload(replicated, rounds=rounds)
                b = time.perf_counter() - start
                start = time.perf_counter()
                write_workload(plain, rounds=rounds)
                a = time.perf_counter() - start
        finally:
            replicated.close()
            plain.close()
        ratios.append(b / a)
    ratios.sort()
    return ratios


def test_replication_write_overhead_under_ten_percent():
    """The acceptance bar: one replica at quorum 1 costs < 10%."""
    obs.disable()
    warm = build_session(replicated=True)
    write_workload(warm, rounds=3)  # warm imports and caches
    warm.close()
    best = float("inf")
    best_ratios = None
    for _ in range(3):
        ratios = paired_session_ratios()
        ratio = ratios[len(ratios) // 2]
        if ratio < best:
            best, best_ratios = ratio, ratios
        if best - 1.0 < OVERHEAD_CEILING:
            break
    overhead = best - 1.0
    write_bench_json(
        "replication",
        {
            "replicated_vs_plain_ratio": summarize(best_ratios),
            "replication_overhead": overhead,
            "ceiling": OVERHEAD_CEILING,
            "config": "shards=2 replicas=1 quorum=1 background-apply",
        },
    )
    assert overhead < OVERHEAD_CEILING, (
        f"replication overhead {overhead:.1%} exceeds "
        f"{OVERHEAD_CEILING:.0%} (median replicated/plain ratio {best:.4f})"
    )


def test_replicated_workload_converges():
    """Fast sanity: the benched configuration is actually replicating —
    after the workload every replica is byte-identical at zero lag."""
    sharded = build_session(replicated=True)
    try:
        write_workload(sharded, rounds=4)
        for shard in sharded.shards:
            shard.replica_set.catch_up()
            for replica in shard.replica_set.replicas:
                assert divergence(shard.engine, replica.engine) == []
                assert shard.replica_set.lag(replica) == 0
    finally:
        sharded.close()
