"""Serving-layer benchmark: zipfian HTTP load and micro-batch folding.

Two questions:

* **End-to-end latency** — what does a 4-shard deployment serve under
  a seeded zipfian mix (70% reads, hot head, mixed writes) over
  concurrent keep-alive connections? Reported as p50/p95/p99 and
  ops/s, written to ``BENCH_serve.json`` (the serve-smoke CI job
  uploads it).
* **Micro-batch folding** — under write-heavy concurrency, how many
  HTTP writes fold into each translated batch? The batcher's whole
  point is >1.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q``.
"""

import asyncio

import repro.obs as obs
from benchmarks.bench_json import write_bench_json
from repro.serve.http import PenguinServer
from repro.serve.load import run_load
from repro.shard import ShardedPenguin, sharded_loader
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)

OBJECT = "patient_chart"
PATIENTS = 25
SHARDS = 4


def build_server(batch_window=0.005):
    graph = hospital_schema()
    sharded = ShardedPenguin(graph, "PATIENT", num_shards=SHARDS)
    populate_hospital(
        sharded_loader(sharded), HospitalConfig(patients=PATIENTS)
    )
    sharded.register_object(patient_chart_object(graph))
    sharded.materialize(OBJECT, "lazy")
    return PenguinServer(sharded, port=0, batch_window=batch_window)


def test_zipfian_serve_load():
    """The BENCH_serve.json headline numbers."""
    with obs.use():
        server = build_server()
        handle = server.in_background()
        try:
            report = asyncio.run(
                run_load(
                    server.host,
                    server.port,
                    ops=600,
                    workers=8,
                    population=PATIENTS,
                    skew=1.1,
                    seed=7,
                )
            )
        finally:
            handle.stop()

    assert report.ops == 600
    assert report.errors == 0
    write_bench_json("serve", {"zipfian_http": report.as_dict()})
    print(f"\n[serve] {report.describe()}")


def test_micro_batch_folding():
    """Write-heavy concurrency folds >1 request per translated batch."""
    with obs.use():
        server = build_server(batch_window=0.02)
        handle = server.in_background()
        try:
            report = asyncio.run(
                run_load(
                    server.host,
                    server.port,
                    ops=120,
                    workers=12,
                    population=PATIENTS,
                    skew=0.0,
                    seed=3,
                    read_fraction=0.0,
                    insert_fraction=1.0,
                    delete_fraction=0.0,
                )
            )
        finally:
            handle.stop()
        batcher = server.batcher

    assert report.errors == 0
    assert batcher.requests_batched == 120
    fold = batcher.requests_batched / max(1, batcher.batches_flushed)
    write_bench_json(
        "serve",
        {
            "micro_batch": {
                "writes": batcher.requests_batched,
                "batches": batcher.batches_flushed,
                "fold_factor": round(fold, 2),
                "throughput_ops_s": round(report.throughput, 1),
            }
        },
    )
    print(
        f"\n[micro-batch] {batcher.requests_batched} writes in "
        f"{batcher.batches_flushed} batches (fold {fold:.2f}x)"
    )
    # 12 concurrent writers against a 20ms window must fold somewhere.
    assert fold > 1.0
