#!/usr/bin/env python
"""CAD assemblies: the PENGUIN prototype's original application domain.

Shows the bill-of-materials view object (ownership + a subset connection
in the dependency island), an assembly re-keying that propagates through
components and the release record, and — for contrast — a flat
relational view of the same data with Keller-style candidate
enumeration.

Run:  python examples/cad_assemblies.py
"""

import copy

from repro import Penguin
from repro.keller import (
    JoinEdge,
    RelationalView,
    enumerate_deletions,
    valid_translations,
)
from repro.workloads import assembly_object, cad_schema, populate_cad


def main() -> None:
    penguin = Penguin(cad_schema())
    counts = populate_cad(penguin.engine)
    print("CAD database populated:", counts)

    bom = assembly_object(penguin.graph)
    penguin.register_object(bom)
    print()
    print(bom.describe())

    # Query: released assemblies using steel parts.
    print()
    print("released assemblies with steel parts:")
    for instance in penguin.query(
        "assembly_bom",
        "count(RELEASED_ASSEMBLY) = 1 and PART.material_name = 'steel'",
    )[:4]:
        parts = sorted({p["part_id"] for p in instance.tuples_at("PART")})
        print(f"  {instance.key[0]}: {len(parts)} distinct parts")

    # Re-key a released assembly: the island covers COMPONENT and the
    # RELEASED_ASSEMBLY subset tuple, so everything follows.
    released = next(iter(penguin.engine.scan("RELEASED_ASSEMBLY")))[0]
    print()
    print(f"renaming assembly {released} -> ASM-MK2 ...")
    old = penguin.get("assembly_bom", (released,))
    new = copy.deepcopy(old.to_dict())
    new["asm_id"] = "ASM-MK2"
    for component in new.get("COMPONENT", []):
        component["asm_id"] = "ASM-MK2"
    for release in new.get("RELEASED_ASSEMBLY", []):
        release["asm_id"] = "ASM-MK2"
    plan = penguin.replace("assembly_bom", old, new)
    print(plan.describe())
    print("consistent:", penguin.is_consistent())

    # --- contrast: a flat SPJ view over the same data ------------------
    print()
    print("--- flat view contrast (Keller baseline) ---")
    flat = RelationalView(
        "component_parts",
        ["COMPONENT", "PART"],
        [JoinEdge("COMPONENT", "PART", [("part_id", "part_id")])],
        projection=[
            "COMPONENT.asm_id",
            "COMPONENT.position",
            "PART.part_id",
            "PART.name",
        ],
    )
    rows = flat.tuples(penguin.engine)
    print(f"flat view has {len(rows)} tuples; deleting one of them ...")
    victim = dict(zip(flat.projection, rows[0]))
    candidates = enumerate_deletions(flat, penguin.engine, victim)
    print(f"candidate translations: {len(candidates)}")
    for candidate in candidates:
        print("   ", [operation.describe() for operation in candidate])
    expected = [t for t in rows if t != rows[0]]
    valid = valid_translations(flat, penguin.engine, candidates, expected)
    print(f"surviving the five validity criteria: {len(valid)}")
    for candidate in valid:
        print("   ", [operation.describe() for operation in candidate])


if __name__ == "__main__":
    main()
