#!/usr/bin/env python
"""A registrar application on the university database.

Demonstrates the full update vocabulary on ω (Figure 2c):

* enrolling and withdrawing students (partial insert/delete of GRADES);
* grade corrections (partial update);
* course renumbering — the paper's EES345 scenario, including the
  automatic insertion of a brand-new DEPARTMENT tuple;
* a restrictive translator that rejects exactly that scenario.

Run:  python examples/university_registrar.py
"""

import copy

from repro import Penguin, UpdateRejectedError
from repro.workloads import populate_university, university_schema
from repro.workloads.figures import course_info_object


def pick_course(engine):
    """A course with both grades and curriculum entries."""
    for values in engine.scan("COURSES"):
        cid = values[0]
        if engine.find_by("GRADES", ("course_id",), (cid,)) and engine.find_by(
            "CURRICULUM", ("course_id",), (cid,)
        ):
            return cid
    raise SystemExit("generated data had no fully connected course")


def main() -> None:
    penguin = Penguin(university_schema())
    populate_university(penguin.engine)
    penguin.register_object(course_info_object(penguin.graph))
    translator = penguin.translator("course_info")
    engine = penguin.engine

    course_id = pick_course(engine)
    print(f"working on course {course_id}")

    # --- enroll a student (partial insertion at the GRADES node) -----
    student = next(
        s for s in engine.scan("STUDENT")
        if engine.get("GRADES", (course_id, s[0])) is None
    )
    plan = translator.insert_component(
        engine,
        (course_id,),
        "GRADES",
        {"course_id": course_id, "student_id": student[0], "grade": "B"},
    )
    print(f"\nenrolled student {student[0]}:")
    print(plan.describe())

    # --- grade correction (partial update) ----------------------------
    plan = translator.update_component(
        engine,
        (course_id,),
        "GRADES",
        {"course_id": course_id, "student_id": student[0], "grade": "B"},
        {"course_id": course_id, "student_id": student[0], "grade": "A"},
    )
    print(f"\ncorrected the grade:")
    print(plan.describe())

    # --- withdraw (partial deletion) ----------------------------------
    plan = translator.delete_component(
        engine,
        (course_id,),
        "GRADES",
        {"course_id": course_id, "student_id": student[0], "grade": "A"},
    )
    print(f"\nwithdrew student {student[0]}:")
    print(plan.describe())

    # --- the EES345 scenario -------------------------------------------
    print("\n--- course renumbering (the paper's Section 6 example) ---")
    old = penguin.get("course_info", (course_id,))
    new = copy.deepcopy(old.to_dict())
    new["course_id"] = "EES345"
    new["dept_name"] = "Engineering Economic Systems"
    for dept in new.get("DEPARTMENT", []):
        dept["dept_name"] = "Engineering Economic Systems"
        dept["building"] = "Terman"
    for grade in new.get("GRADES", []):
        grade["course_id"] = "EES345"
    for entry in new.get("CURRICULUM", []):
        entry["course_id"] = "EES345"
    from repro import build_instance, diff_instances, render_diff

    print("object-level diff of the request:")
    print(
        render_diff(
            diff_instances(old, build_instance(old.view_object, new))
        )
    )
    plan = penguin.replace("course_info", old, new)
    print("\ntranslated into:")
    print(plan.describe())
    print(
        "\nnew department present:",
        engine.get("DEPARTMENT", ("Engineering Economic Systems",)),
    )
    print("database consistent:", penguin.is_consistent())

    # --- a more restrictive translator rejects the same request -------
    print("\n--- restrictive translator: DEPARTMENT may not be modified ---")
    restrictive, __ = penguin.choose_translator(
        "course_info", {"modify.DEPARTMENT.allowed": False}
    )
    old = penguin.get("course_info", ("EES345",))
    blocked = copy.deepcopy(old.to_dict())
    blocked["dept_name"] = "Symbolic Systems"
    for dept in blocked.get("DEPARTMENT", []):
        dept["dept_name"] = "Symbolic Systems"
    try:
        restrictive.replace(engine, old, blocked)
    except UpdateRejectedError as error:
        print("request rejected, as the DBA intended:")
        print("   ", error)
    print(
        "nothing leaked:",
        engine.get("DEPARTMENT", ("Symbolic Systems",)) is None,
    )


if __name__ == "__main__":
    main()
