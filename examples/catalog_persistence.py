#!/usr/bin/env python
"""Saving and restoring a PENGUIN session.

"A view object is an uninstantiated window onto the underlying database;
that is, only its definition is saved while base data remains stored in
the relational database." This example saves all three layers — the
structural schema, the object catalog with its dialog-chosen policies,
and the base data — to JSON, then reconstructs a working session from
the files alone and previews an update before applying it.

Run:  python examples/catalog_persistence.py
"""

import json
import tempfile
from pathlib import Path

from repro import Penguin
from repro.relational.persistence import dump_database, load_database
from repro.structural.serialization import graph_from_dict, graph_to_dict
from repro.workloads import populate_university, university_schema
from repro.workloads.figures import course_info_object


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="penguin_"))

    # ----- session 1: define, choose a translator, save ---------------
    first = Penguin(university_schema())
    populate_university(first.engine)
    first.register_object(course_info_object(first.graph))
    first.choose_translator(
        "course_info", {"modify.DEPARTMENT.allowed": False}
    )

    (workdir / "schema.json").write_text(
        json.dumps(graph_to_dict(first.graph), indent=2)
    )
    (workdir / "catalog.json").write_text(
        json.dumps(first.export_catalog(), indent=2)
    )
    (workdir / "data.json").write_text(
        json.dumps(dump_database(first.engine))
    )
    print("saved session to", workdir)
    for name in ("schema.json", "catalog.json", "data.json"):
        print(f"  {name}: {(workdir / name).stat().st_size} bytes")

    # ----- session 2: restore everything from disk ---------------------
    graph = graph_from_dict(json.loads((workdir / "schema.json").read_text()))
    second = Penguin(graph, install=False)
    load_database(second.engine, json.loads((workdir / "data.json").read_text()))
    loaded = second.import_catalog(
        json.loads((workdir / "catalog.json").read_text())
    )
    print("\nrestored objects:", loaded)
    print("restored data consistent:", second.is_consistent())

    # The restored translator still enforces the saved dialog choices.
    translator = second.translator("course_info")
    print(
        "DEPARTMENT still locked:",
        not translator.policy.for_relation("DEPARTMENT").can_modify,
    )

    # Preview an update without touching the database.
    course_id = next(iter(second.engine.scan("COURSES")))[0]
    plan = translator.preview_delete(second.engine, key=(course_id,))
    print(f"\npreview: deleting {course_id} would apply {len(plan)} operations:")
    print(plan.describe())
    print(
        "database untouched:",
        second.engine.get("COURSES", (course_id,)) is not None,
    )


if __name__ == "__main__":
    main()
