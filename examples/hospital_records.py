#!/usr/bin/env python
"""Patient records: the medical-informatics motivation.

The work behind the paper was funded by the National Library of
Medicine; a patient chart is the canonical complex object. This example
runs a chart through its life cycle on a three-level dependency island
(PATIENT --* VISIT --* {DIAGNOSIS, PRESCRIPTION, LAB_RESULT}).

Run:  python examples/hospital_records.py
"""

import copy

from repro import Penguin
from repro.workloads import (
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)


def main() -> None:
    penguin = Penguin(hospital_schema())
    counts = populate_hospital(penguin.engine)
    print("hospital populated:", counts)

    chart = patient_chart_object(penguin.graph)
    penguin.register_object(chart)
    print()
    print(chart.describe())

    from repro import analyze_island

    analysis = analyze_island(chart)
    print()
    print(analysis.describe())

    # Query: patients with many diagnoses seen by a cardiologist.
    print()
    print("charts with >= 5 diagnoses and a cardiology visit:")
    results = penguin.query(
        "patient_chart",
        "count(DIAGNOSIS) >= 5 and PHYSICIAN.specialty = 'cardiology'",
    )
    for instance in results[:3]:
        print(
            f"  patient {instance.key[0]}: "
            f"{instance.count_at('VISIT')} visits, "
            f"{instance.count_at('DIAGNOSIS')} diagnoses, "
            f"{instance.count_at('PRESCRIPTION')} prescriptions"
        )

    # Admit a new patient with one visit.
    print()
    print("admitting patient 9001 ...")
    plan = penguin.insert(
        "patient_chart",
        {
            "patient_id": 9001,
            "name": "Thierry B.",
            "birth_year": 1960,
            "ward_name": "East-1",
            "VISIT": [
                {
                    "patient_id": 9001,
                    "visit_no": 1,
                    "visit_date": "1991-05-29",
                    "physician_id": 9000,
                    "reason": "checkup",
                    "DIAGNOSIS": [
                        {
                            "patient_id": 9001,
                            "visit_no": 1,
                            "diag_no": 1,
                            "code": "hypertension",
                            "severity": "mild",
                        }
                    ],
                    "PRESCRIPTION": [
                        {
                            "patient_id": 9001,
                            "visit_no": 1,
                            "rx_no": 1,
                            "med_id": "MED-03",
                            "days": 30,
                        }
                    ],
                    "LAB_RESULT": [],
                    "PHYSICIAN": [],
                }
            ],
        },
    )
    print(plan.describe())

    # A follow-up visit arrives: replacement with an appended component.
    print()
    print("recording a follow-up visit via replacement ...")
    old = penguin.get("patient_chart", (9001,))
    new = copy.deepcopy(old.to_dict())
    new["VISIT"].append(
        {
            "patient_id": 9001,
            "visit_no": 2,
            "visit_date": "1991-07-02",
            "physician_id": 9001,
            "reason": "followup",
            "DIAGNOSIS": [],
            "PRESCRIPTION": [],
            "LAB_RESULT": [
                {
                    "patient_id": 9001,
                    "visit_no": 2,
                    "test_no": 1,
                    "test_name": "BMP",
                    "value": 7.2,
                }
            ],
        }
    )
    plan = penguin.replace("patient_chart", old, new)
    print(plan.describe())

    # Archive: complete deletion cascades the whole chart...
    print()
    print("archiving the chart (complete deletion) ...")
    plan = penguin.delete("patient_chart", (9001,))
    print(plan.describe())
    # ...but shared reference data survives.
    print(
        "physicians and medications untouched:",
        penguin.engine.count("PHYSICIAN"),
        penguin.engine.count("MEDICATION"),
    )
    print("database consistent:", penguin.is_consistent())


if __name__ == "__main__":
    main()
