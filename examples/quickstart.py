#!/usr/bin/env python
"""Quickstart: the paper's workflow in ~60 lines.

1. build the Figure 1 university database;
2. define the view object ω of Figure 2(c);
3. run the Figure 4 query ("graduate courses with less than 5 students");
4. choose a translator with the Section 6 dialog answers;
5. update through the object and watch the translation.

Run:  python examples/quickstart.py
"""

from repro import Penguin, ScriptedAnswers
from repro.workloads import populate_university, university_schema
from repro.workloads.figures import course_info_object


def main() -> None:
    # 1. Base data stays in a fully normalized relational database.
    penguin = Penguin(university_schema())
    counts = populate_university(penguin.engine)
    print("populated:", counts)

    # 2. ω — an uninstantiated, hierarchical window onto that database.
    omega = course_info_object(penguin.graph)
    penguin.register_object(omega)
    print()
    print(omega.describe())

    # 3. Declarative queries compose with the object's structure.
    print()
    print("Figure 4 query: graduate courses with < 5 students enrolled")
    for instance in penguin.query(
        "course_info", "level = 'graduate' and count(STUDENT) < 5"
    ):
        print(" ", instance.describe())

    # 4. The DBA's dialog answers (the paper's transcript) fix the
    #    translator once, at definition time.
    paper_answers = [
        True,                       # insertions allowed
        True,                       # deletions allowed
        True,                       # CURRICULUM repair: delete referencing
        True, True, True, False,    # replacement + COURSES island triplet
        True, True, True,           # CURRICULUM
        True, True, True,           # DEPARTMENT
        True, True, False,          # GRADES island triplet
        True, True, True,           # STUDENT
    ]
    translator, transcript = penguin.choose_translator(
        "course_info", ScriptedAnswers(paper_answers)
    )
    print()
    print("definition-time dialog (replacement portion):")
    print(transcript.render(section="replacement"))

    # 5. Updates on instances translate into relational operations.
    course_id = next(iter(penguin.engine.scan("COURSES")))[0]
    old = penguin.get("course_info", (course_id,))
    new = old.to_dict()
    new["title"] = "Updating Relational Databases through Object-Based Views"
    plan = penguin.replace("course_info", old, new)
    print()
    print(f"replacement of {course_id} translated into:")
    print(plan.describe())
    print()
    print("database still consistent:", penguin.is_consistent())


if __name__ == "__main__":
    main()
