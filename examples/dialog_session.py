#!/usr/bin/env python
"""An interactive translator-definition session (Section 6).

Plays the DBA: the script builds ω and walks you through the actual
dialog. With a terminal attached you answer yes/no yourself; otherwise
(piped stdin, CI) it replays the paper's answers and prints the
resulting transcript.

Run:  python examples/dialog_session.py
"""

import sys

from repro import Penguin, ScriptedAnswers
from repro.dialog import InteractiveAnswers
from repro.workloads import populate_university, university_schema
from repro.workloads.figures import course_info_object

PAPER_ANSWERS = [
    True,                       # insertion gate
    True,                       # deletion gate
    True,                       # CURRICULUM repair on deletion
    True, True, True, False,    # replacement gate + COURSES island
    True, True, True,           # CURRICULUM
    True, True, True,           # DEPARTMENT
    True, True, False,          # GRADES island
    True, True, True,           # STUDENT
]


def main() -> None:
    penguin = Penguin(university_schema())
    populate_university(penguin.engine)
    omega = course_info_object(penguin.graph)
    penguin.register_object(omega)

    print("view object under definition:")
    print(omega.describe())
    print()

    if sys.stdin.isatty():
        print("answer the system's questions (yes/no):")
        source = InteractiveAnswers()
    else:
        print("no terminal attached; replaying the paper's answers")
        source = ScriptedAnswers(PAPER_ANSWERS)

    translator, transcript = penguin.choose_translator("course_info", source)

    print()
    print("=== transcript ===")
    print(transcript.render())
    print()
    print("translator chosen. it will now serve every update on ω")
    print("without further questions — for example:")

    course_id = next(iter(penguin.engine.scan("COURSES")))[0]
    old = penguin.get("course_info", (course_id,))
    new = old.to_dict()
    new["units"] = (new["units"] % 5) + 1
    plan = penguin.replace("course_info", old, new)
    print()
    print(plan.describe())


if __name__ == "__main__":
    main()
