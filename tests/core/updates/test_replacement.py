"""Algorithm VO-R: replacement (§5.3), including the EES345 example."""

import copy

import pytest

from repro.errors import LocalValidationError, UpdateRejectedError
from repro.core.updates.policy import RelationPolicy, TranslatorPolicy
from repro.core.updates.translator import Translator
from repro.structural.integrity import IntegrityChecker


@pytest.fixture
def translator(omega):
    return Translator(omega, verify_integrity=True)


def course_with_everything(engine):
    """A course with grades and curriculum entries."""
    for values in engine.scan("COURSES"):
        cid = values[0]
        if engine.find_by("GRADES", ("course_id",), (cid,)) and engine.find_by(
            "CURRICULUM", ("course_id",), (cid,)
        ):
            return cid
    pytest.skip("no fully connected course in generated data")


def renamed(old_dict, new_course_id, new_dept=None):
    new = copy.deepcopy(old_dict)
    new["course_id"] = new_course_id
    for grade in new.get("GRADES", []):
        grade["course_id"] = new_course_id
    for entry in new.get("CURRICULUM", []):
        entry["course_id"] = new_course_id
    if new_dept is not None:
        new["dept_name"] = new_dept
        for dept in new.get("DEPARTMENT", []):
            dept["dept_name"] = new_dept
    return new


class TestCaseR1R2:
    def test_identical_replacement_is_noop(self, translator, university_engine):
        cid = course_with_everything(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        plan = translator.replace(university_engine, old, old.to_dict())
        assert len(plan) == 0

    def test_nonkey_change_single_replace(self, translator, university_engine):
        cid = course_with_everything(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        new = old.to_dict()
        new["title"] = "Renamed Title"
        plan = translator.replace(university_engine, old, new)
        assert plan.count("replace") == 1
        assert plan.count("insert") == plan.count("delete") == 0
        assert university_engine.get("COURSES", (cid,))[1] == "Renamed Title"

    def test_grade_change(self, translator, university_engine):
        cid = course_with_everything(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        new = old.to_dict()
        new["GRADES"][0]["grade"] = "A+"
        sid = new["GRADES"][0]["student_id"]
        translator.replace(university_engine, old, new)
        assert university_engine.get("GRADES", (cid, sid))[2] == "A+"


class TestCaseR3KeyChange:
    def test_paper_ees345_example(
        self, translator, university_engine, university_graph
    ):
        """Renaming CS345->EES345 with a brand-new department inserts
        ⟨Engineering Economic Systems⟩ into DEPARTMENT (Section 6)."""
        cid = course_with_everything(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        new = renamed(
            old.to_dict(), "EES345", new_dept="Engineering Economic Systems"
        )
        plan = translator.replace(university_engine, old, new)
        assert university_engine.get("COURSES", (cid,)) is None
        assert university_engine.get("COURSES", ("EES345",)) is not None
        assert (
            university_engine.get(
                "DEPARTMENT", ("Engineering Economic Systems",)
            )
            is not None
        )
        inserted = [op.relation for op in plan if op.kind == "insert"]
        assert "DEPARTMENT" in inserted
        assert IntegrityChecker(university_graph).is_consistent(
            university_engine
        )

    def test_island_keys_replaced(self, translator, university_engine):
        cid = course_with_everything(university_engine)
        grades_before = university_engine.find_by(
            "GRADES", ("course_id",), (cid,)
        )
        old = translator.instantiate(university_engine, (cid,))
        translator.replace(
            university_engine, old, renamed(old.to_dict(), "NEW1")
        )
        assert university_engine.find_by("GRADES", ("course_id",), (cid,)) == []
        migrated = university_engine.find_by(
            "GRADES", ("course_id",), ("NEW1",)
        )
        assert len(migrated) == len(grades_before)

    def test_peninsula_foreign_keys_retargeted(
        self, translator, university_engine
    ):
        cid = course_with_everything(university_engine)
        n_refs = len(
            university_engine.find_by("CURRICULUM", ("course_id",), (cid,))
        )
        old = translator.instantiate(university_engine, (cid,))
        translator.replace(
            university_engine, old, renamed(old.to_dict(), "NEW2")
        )
        assert (
            university_engine.find_by("CURRICULUM", ("course_id",), (cid,))
            == []
        )
        assert (
            len(
                university_engine.find_by(
                    "CURRICULUM", ("course_id",), ("NEW2",)
                )
            )
            == n_refs
        )

    def test_old_department_survives(self, translator, university_engine):
        cid = course_with_everything(university_engine)
        old_dept = university_engine.get("COURSES", (cid,))[4]
        old = translator.instantiate(university_engine, (cid,))
        translator.replace(
            university_engine,
            old,
            renamed(old.to_dict(), "NEW3", new_dept="Engineering Economic Systems"),
        )
        assert university_engine.get("DEPARTMENT", (old_dept,)) is not None

    def test_key_replacement_prohibited(self, omega, university_engine):
        policy = TranslatorPolicy()
        policy.set_relation(
            "COURSES", RelationPolicy(allow_key_replacement=False)
        )
        translator = Translator(omega, policy=policy)
        cid = course_with_everything(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        with pytest.raises(LocalValidationError, match="key"):
            translator.replace(
                university_engine, old, renamed(old.to_dict(), "NEW4")
            )
        assert university_engine.get("COURSES", (cid,)) is not None

    def test_db_key_replacement_prohibited(self, omega, university_engine):
        policy = TranslatorPolicy()
        policy.set_relation(
            "COURSES",
            RelationPolicy(
                allow_key_replacement=True, allow_db_key_replacement=False
            ),
        )
        translator = Translator(omega, policy=policy)
        cid = course_with_everything(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        with pytest.raises(UpdateRejectedError, match="database key"):
            translator.replace(
                university_engine, old, renamed(old.to_dict(), "NEW5")
            )

    def test_merge_on_conflict_requires_permission(
        self, omega, university_engine
    ):
        """R-3 where the new key already exists: the paper's dialog
        answered NO, so the merge is rejected."""
        policy = TranslatorPolicy()  # allow_merge_on_key_conflict=False
        translator = Translator(omega, policy=policy)
        ids = [v[0] for v in university_engine.scan("COURSES")]
        target, victim = ids[0], ids[1]
        old = translator.instantiate(university_engine, (victim,))
        with pytest.raises(UpdateRejectedError, match="merge"):
            translator.replace(
                university_engine, old, renamed(old.to_dict(), target)
            )

    def test_merge_on_conflict_when_allowed(self, omega, university_engine):
        policy = TranslatorPolicy()
        policy.set_relation(
            "COURSES", RelationPolicy(allow_merge_on_key_conflict=True)
        )
        policy.set_relation(
            "GRADES", RelationPolicy(allow_merge_on_key_conflict=True)
        )
        translator = Translator(omega, policy=policy)
        ids = [v[0] for v in university_engine.scan("COURSES")]
        target, victim = ids[0], ids[1]
        old = translator.instantiate(university_engine, (victim,))
        new = renamed(old.to_dict(), target)
        translator.replace(university_engine, old, new)
        assert university_engine.get("COURSES", (victim,)) is None
        merged = university_engine.get("COURSES", (target,))
        assert merged[1] == old.root.values["title"]


class TestPropagation:
    def test_island_key_propagates_to_children(
        self, translator, university_engine
    ):
        """The caller may leave the old course_id inside GRADES tuples;
        step 2 rewrites the inherited attributes automatically."""
        cid = course_with_everything(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        new = old.to_dict()
        new["course_id"] = "PROP1"  # GRADES entries still carry old id
        for entry in new.get("CURRICULUM", []):
            entry["course_id"] = "PROP1"
        translator.replace(university_engine, old, new)
        assert university_engine.find_by("GRADES", ("course_id",), (cid,)) == []
        assert university_engine.find_by(
            "GRADES", ("course_id",), ("PROP1",)
        )


class TestStateI:
    def test_retarget_reference_to_existing(self, translator, university_engine):
        """Pointing the course at another *existing* department must not
        duplicate or modify it (CASE I-3)."""
        cid = course_with_everything(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        current = old.root.values["dept_name"]
        other = next(
            v[0]
            for v in university_engine.scan("DEPARTMENT")
            if v[0] != current
        )
        other_values = university_engine.get("DEPARTMENT", (other,))
        new = old.to_dict()
        new["dept_name"] = other
        new["DEPARTMENT"] = [
            {"dept_name": other_values[0], "building": other_values[1]}
        ]
        before = university_engine.count("DEPARTMENT")
        plan = translator.replace(university_engine, old, new)
        assert university_engine.count("DEPARTMENT") == before
        assert all(op.relation != "DEPARTMENT" for op in plan)
        assert university_engine.get("COURSES", (cid,))[4] == other

    def test_case_i4_conflicting_values(self, translator, university_engine):
        cid = course_with_everything(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        new = old.to_dict()
        new["DEPARTMENT"][0]["building"] = "Relocated Hall"
        plan = translator.replace(university_engine, old, new)
        dept = new["DEPARTMENT"][0]["dept_name"]
        assert university_engine.get("DEPARTMENT", (dept,))[1] == "Relocated Hall"

    def test_component_removed_from_island(self, translator, university_engine):
        cid = course_with_everything(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        new = old.to_dict()
        removed = new["GRADES"].pop()
        translator.replace(university_engine, old, new)
        assert (
            university_engine.get(
                "GRADES", (cid, removed["student_id"])
            )
            is None
        )

    def test_component_added_to_island(self, translator, university_engine):
        cid = course_with_everything(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        new = old.to_dict()
        student = next(
            s
            for s in university_engine.scan("STUDENT")
            if university_engine.get("GRADES", (cid, s[0])) is None
        )
        new["GRADES"].append(
            {
                "course_id": cid,
                "student_id": student[0],
                "grade": "B+",
                "STUDENT": [
                    {
                        "person_id": student[0],
                        "degree_program": student[1],
                        "year": student[2],
                    }
                ],
            }
        )
        translator.replace(university_engine, old, new)
        assert (
            university_engine.get("GRADES", (cid, student[0]))
            is not None
        )


class TestGatesAndGuards:
    def test_replacement_gate(self, omega, university_engine):
        translator = Translator(
            omega, policy=TranslatorPolicy(allow_replacement=False)
        )
        cid = course_with_everything(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        with pytest.raises(LocalValidationError):
            translator.replace(university_engine, old, old.to_dict())

    def test_peninsula_key_change_prohibited(
        self, translator, university_engine
    ):
        """Changing the non-FK key part of a CURRICULUM entry is an
        ambiguous peninsula key replacement: prohibited."""
        cid = course_with_everything(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        new = old.to_dict()
        new["CURRICULUM"][0]["degree"] = "BRANDNEW"
        with pytest.raises(LocalValidationError, match="peninsula"):
            translator.replace(university_engine, old, new)

    def test_rejection_rolls_everything_back(self, omega, university_engine):
        policy = TranslatorPolicy()
        policy.set_relation("DEPARTMENT", RelationPolicy(can_modify=False))
        translator = Translator(omega, policy=policy)
        cid = course_with_everything(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        snapshot = sorted(university_engine.scan("COURSES"))
        with pytest.raises(UpdateRejectedError):
            translator.replace(
                university_engine,
                old,
                renamed(old.to_dict(), "ROLLBACK1", new_dept="No Such Dept"),
            )
        assert sorted(university_engine.scan("COURSES")) == snapshot
