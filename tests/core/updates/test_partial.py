"""Partial update operations on single components."""

import pytest

from repro.errors import LocalValidationError, UpdateRejectedError
from repro.core.updates.policy import RelationPolicy, TranslatorPolicy
from repro.core.updates.translator import Translator
from repro.structural.integrity import IntegrityChecker


@pytest.fixture
def translator(omega):
    return Translator(omega, verify_integrity=True)


def course_with_grades(engine):
    for values in engine.scan("COURSES"):
        if engine.find_by("GRADES", ("course_id",), (values[0],)):
            return values[0]
    pytest.skip("no course with grades")


def unenrolled_student(engine, cid):
    return next(
        s
        for s in engine.scan("STUDENT")
        if engine.get("GRADES", (cid, s[0])) is None
    )


class TestPartialInsertion:
    def test_add_grade(self, translator, university_engine):
        cid = course_with_grades(university_engine)
        student = unenrolled_student(university_engine, cid)
        plan = translator.insert_component(
            university_engine,
            (cid,),
            "GRADES",
            {"course_id": cid, "student_id": student[0], "grade": "A"},
        )
        assert university_engine.get("GRADES", (cid, student[0])) is not None
        assert plan.count("insert") == 1

    def test_inherited_key_filled_from_pivot(
        self, translator, university_engine
    ):
        """The parent-side connecting attribute may be omitted: partial
        insertion inherits it from the instance's pivot."""
        cid = course_with_grades(university_engine)
        student = unenrolled_student(university_engine, cid)
        translator.insert_component(
            university_engine,
            (cid,),
            "GRADES",
            {"course_id": "IGNORED", "student_id": student[0], "grade": "B"},
        )
        assert university_engine.get("GRADES", (cid, student[0])) is not None

    def test_duplicate_island_component_rejected(
        self, translator, university_engine
    ):
        cid = course_with_grades(university_engine)
        grade = university_engine.find_by("GRADES", ("course_id",), (cid,))[0]
        with pytest.raises(UpdateRejectedError, match="already part"):
            translator.insert_component(
                university_engine,
                (cid,),
                "GRADES",
                {
                    "course_id": cid,
                    "student_id": grade[1],
                    "grade": grade[2],
                },
            )

    def test_partial_insert_triggers_global_integrity(
        self, omega, university_engine, university_graph
    ):
        def completer(relation, schema, partial):
            completed = dict(partial)
            for attribute in schema.attributes:
                if attribute.name not in completed:
                    if attribute.nullable:
                        completed[attribute.name] = None
                    elif attribute.domain.name == "text":
                        completed[attribute.name] = "?"
                    else:
                        completed[attribute.name] = 0
            return completed

        translator = Translator(
            omega,
            policy=TranslatorPolicy(completer=completer),
            verify_integrity=True,
        )
        cid = course_with_grades(university_engine)
        translator.insert_component(
            university_engine,
            (cid,),
            "GRADES",
            {"course_id": cid, "student_id": 888888, "grade": "C"},
        )
        assert university_engine.get("STUDENT", (888888,)) is not None
        assert university_engine.get("PEOPLE", (888888,)) is not None
        assert IntegrityChecker(university_graph).is_consistent(
            university_engine
        )

    def test_pivot_partial_insert_redirected(self, translator, university_engine):
        cid = course_with_grades(university_engine)
        with pytest.raises(LocalValidationError, match="complete insertion"):
            translator.insert_component(
                university_engine, (cid,), "COURSES", {"course_id": "X"}
            )


class TestPartialDeletion:
    def test_remove_grade(self, translator, university_engine):
        cid = course_with_grades(university_engine)
        grade = university_engine.find_by("GRADES", ("course_id",), (cid,))[0]
        translator.delete_component(
            university_engine,
            (cid,),
            "GRADES",
            {"course_id": cid, "student_id": grade[1], "grade": grade[2]},
        )
        assert university_engine.get("GRADES", (cid, grade[1])) is None
        # The student survives (outside the island).
        assert university_engine.get("STUDENT", (grade[1],)) is not None

    def test_sever_nullable_reference(
        self, university_graph, university_engine
    ):
        """Partial deletion of an outside referenced component nullifies
        the parent's foreign key when it is nullable."""
        from repro.core.view_object import define_view_object

        staffing = define_view_object(
            university_graph,
            "staffing",
            "COURSES",
            selections={
                "COURSES": (
                    "course_id", "title", "units", "level", "instructor_id",
                ),
                "FACULTY": ("person_id", "rank", "office"),
            },
        )
        translator = Translator(staffing)
        course = next(
            v for v in university_engine.scan("COURSES") if v[5] is not None
        )
        faculty = university_engine.get("FACULTY", (course[5],))
        translator.delete_component(
            university_engine,
            (course[0],),
            "FACULTY",
            {
                "person_id": faculty[0],
                "rank": faculty[1],
                "office": faculty[2],
            },
        )
        assert university_engine.get("COURSES", (course[0],))[5] is None
        assert university_engine.get("FACULTY", (faculty[0],)) is not None

    def test_non_severable_outside_deletion_rejected(
        self, translator, university_engine
    ):
        cid = course_with_grades(university_engine)
        grade = university_engine.find_by("GRADES", ("course_id",), (cid,))[0]
        student = university_engine.get("STUDENT", (grade[1],))
        with pytest.raises(UpdateRejectedError, match="ambiguous"):
            translator.delete_component(
                university_engine,
                (cid,),
                "STUDENT",
                {
                    "person_id": student[0],
                    "degree_program": student[1],
                    "year": student[2],
                },
            )


class TestPartialUpdate:
    def test_change_grade_value(self, translator, university_engine):
        cid = course_with_grades(university_engine)
        grade = university_engine.find_by("GRADES", ("course_id",), (cid,))[0]
        translator.update_component(
            university_engine,
            (cid,),
            "GRADES",
            {"course_id": cid, "student_id": grade[1], "grade": grade[2]},
            {"course_id": cid, "student_id": grade[1], "grade": "A+"},
        )
        assert university_engine.get("GRADES", (cid, grade[1]))[2] == "A+"

    def test_key_change_rejected(self, translator, university_engine):
        cid = course_with_grades(university_engine)
        grade = university_engine.find_by("GRADES", ("course_id",), (cid,))[0]
        with pytest.raises(LocalValidationError, match="keys"):
            translator.update_component(
                university_engine,
                (cid,),
                "GRADES",
                {"course_id": cid, "student_id": grade[1], "grade": grade[2]},
                {"course_id": cid, "student_id": 999, "grade": grade[2]},
            )

    def test_outside_update_respects_policy(self, omega, university_engine):
        policy = TranslatorPolicy()
        policy.set_relation(
            "STUDENT", RelationPolicy(can_replace_existing=False)
        )
        translator = Translator(omega, policy=policy)
        cid = course_with_grades(university_engine)
        grade = university_engine.find_by("GRADES", ("course_id",), (cid,))[0]
        student = university_engine.get("STUDENT", (grade[1],))
        with pytest.raises(UpdateRejectedError):
            translator.update_component(
                university_engine,
                (cid,),
                "STUDENT",
                {
                    "person_id": student[0],
                    "degree_program": student[1],
                    "year": student[2],
                },
                {
                    "person_id": student[0],
                    "degree_program": "CHANGED",
                    "year": student[2],
                },
            )

    def test_composite_path_component_rejected(
        self, omega_prime, university_engine
    ):
        translator = Translator(omega_prime)
        cid = next(iter(university_engine.scan("COURSES")))[0]
        with pytest.raises(LocalValidationError, match="collapses"):
            translator.update_component(
                university_engine,
                (cid,),
                "STUDENT",
                {"person_id": 1, "degree_program": "a", "year": 1},
                {"person_id": 1, "degree_program": "b", "year": 1},
            )
