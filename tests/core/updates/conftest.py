"""Run every update-translation test under BOTH translator builds.

The compiled plan builders are the default; the interpreted tree walk
is the reference semantics. Sweeping the whole directory across the
module default turns each semantic test into its own small equivalence
check — anything the compiled path gets wrong fails the same test that
pins the interpreted behaviour. Tests that pass ``compile_plans``
explicitly (the equivalence properties in ``test_compiled.py``) are
unaffected: the explicit argument wins over the default.
"""

import pytest

import repro.core.updates.translator as translator_mod


@pytest.fixture(autouse=True, params=["compiled", "interpreted"])
def translation_mode(request, monkeypatch):
    monkeypatch.setattr(
        translator_mod,
        "COMPILE_PLANS_DEFAULT",
        request.param == "compiled",
    )
    return request.param
