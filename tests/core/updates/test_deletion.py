"""Algorithm VO-CD: complete deletion (§5.1)."""

import pytest

from repro.errors import UpdateError, UpdateRejectedError
from repro.core.updates.policy import (
    ReferenceRepair,
    RelationPolicy,
    TranslatorPolicy,
)
from repro.core.updates.translator import Translator
from repro.structural.integrity import IntegrityChecker


@pytest.fixture
def translator(omega):
    return Translator(omega, verify_integrity=True)


def pick_course(engine, with_curriculum=True):
    """A course id that has grades and (optionally) curriculum entries."""
    for values in engine.scan("COURSES"):
        course_id = values[0]
        has_grades = engine.find_by("GRADES", ("course_id",), (course_id,))
        has_curriculum = engine.find_by(
            "CURRICULUM", ("course_id",), (course_id,)
        )
        if has_grades and (bool(has_curriculum) == with_curriculum):
            return course_id
    pytest.skip("no suitable course in generated data")


class TestIslandDeletion:
    def test_pivot_tuple_deleted(self, translator, university_engine):
        course_id = pick_course(university_engine)
        translator.delete(university_engine, key=(course_id,))
        assert university_engine.get("COURSES", (course_id,)) is None

    def test_island_grades_deleted(self, translator, university_engine):
        course_id = pick_course(university_engine)
        translator.delete(university_engine, key=(course_id,))
        assert (
            university_engine.find_by("GRADES", ("course_id",), (course_id,))
            == []
        )

    def test_students_survive(self, translator, university_engine):
        course_id = pick_course(university_engine)
        sids = [
            v[1]
            for v in university_engine.find_by(
                "GRADES", ("course_id",), (course_id,)
            )
        ]
        translator.delete(university_engine, key=(course_id,))
        for sid in sids:
            assert university_engine.get("STUDENT", (sid,)) is not None

    def test_department_survives(self, translator, university_engine):
        course_id = pick_course(university_engine)
        dept = university_engine.get("COURSES", (course_id,))[4]
        translator.delete(university_engine, key=(course_id,))
        assert university_engine.get("DEPARTMENT", (dept,)) is not None

    def test_plan_contents(self, translator, university_engine):
        course_id = pick_course(university_engine)
        n_grades = len(
            university_engine.find_by("GRADES", ("course_id",), (course_id,))
        )
        n_curriculum = len(
            university_engine.find_by(
                "CURRICULUM", ("course_id",), (course_id,)
            )
        )
        plan = translator.delete(university_engine, key=(course_id,))
        # pivot + grades + curriculum repairs (AUTO resolves to DELETE
        # because course_id sits in CURRICULUM's key).
        assert plan.count("delete") == 1 + n_grades + n_curriculum

    def test_database_stays_consistent(
        self, translator, university_engine, university_graph
    ):
        course_id = pick_course(university_engine)
        translator.delete(university_engine, key=(course_id,))
        assert IntegrityChecker(university_graph).is_consistent(
            university_engine
        )


class TestPeninsulaRepair:
    def test_curriculum_rows_removed(self, translator, university_engine):
        course_id = pick_course(university_engine, with_curriculum=True)
        translator.delete(university_engine, key=(course_id,))
        assert (
            university_engine.find_by(
                "CURRICULUM", ("course_id",), (course_id,)
            )
            == []
        )

    def test_prohibit_rolls_back(self, omega, university_engine):
        policy = TranslatorPolicy()
        policy.set_relation(
            "CURRICULUM",
            RelationPolicy(on_reference_delete=ReferenceRepair.PROHIBIT),
        )
        translator = Translator(omega, policy=policy)
        course_id = pick_course(university_engine, with_curriculum=True)
        before = university_engine.count("COURSES")
        with pytest.raises(UpdateRejectedError):
            translator.delete(university_engine, key=(course_id,))
        # "the transaction cannot be completed and has to be rolled back"
        assert university_engine.count("COURSES") == before
        assert university_engine.get("COURSES", (course_id,)) is not None

    def test_nullify_repair(self, omega, university_graph, university_engine):
        # Repair the instructor reference by nullification when a
        # FACULTY-anchored entity is deleted through another object.
        from repro.core.view_object import define_view_object
        from repro.core.updates.policy import TranslatorPolicy, RelationPolicy

        faculty_object = define_view_object(
            university_graph,
            "faculty_only",
            pivot="FACULTY",
            selections={"FACULTY": ("person_id", "rank", "office")},
        )
        policy = TranslatorPolicy()
        policy.set_relation(
            "COURSES",
            RelationPolicy(on_reference_delete=ReferenceRepair.NULLIFY),
        )
        translator = Translator(faculty_object, policy=policy)
        # Find a faculty member who teaches something.
        course = next(
            v for v in university_engine.scan("COURSES") if v[5] is not None
        )
        instructor = course[5]
        translator.delete(university_engine, key=(instructor,))
        refreshed = university_engine.get("COURSES", (course[0],))
        assert refreshed[5] is None

    def test_explicit_delete_policy(self, omega, university_engine):
        policy = TranslatorPolicy()
        policy.set_relation(
            "CURRICULUM",
            RelationPolicy(on_reference_delete=ReferenceRepair.DELETE),
        )
        translator = Translator(omega, policy=policy)
        course_id = pick_course(university_engine, with_curriculum=True)
        translator.delete(university_engine, key=(course_id,))
        assert (
            university_engine.find_by(
                "CURRICULUM", ("course_id",), (course_id,)
            )
            == []
        )


class TestGateAndErrors:
    def test_deletion_gate(self, omega, university_engine):
        from repro.errors import LocalValidationError

        translator = Translator(
            omega, policy=TranslatorPolicy(allow_deletion=False)
        )
        course_id = pick_course(university_engine)
        with pytest.raises(LocalValidationError):
            translator.delete(university_engine, key=(course_id,))

    def test_missing_instance(self, translator, university_engine):
        with pytest.raises(UpdateError):
            translator.delete(university_engine, key=("GHOST",))

    def test_delete_by_instance(self, translator, university_engine):
        course_id = pick_course(university_engine)
        instance = translator.instantiate(university_engine, (course_id,))
        translator.delete(university_engine, instance)
        assert university_engine.get("COURSES", (course_id,)) is None


class TestCascadesDeep:
    def test_hospital_chart_deletion(self, chart, hospital_engine, hospital_graph):
        translator = Translator(chart, verify_integrity=True)
        plan = translator.delete(hospital_engine, key=(100,))
        assert hospital_engine.get("PATIENT", (100,)) is None
        assert (
            hospital_engine.find_by("VISIT", ("patient_id",), (100,)) == []
        )
        assert (
            hospital_engine.find_by("DIAGNOSIS", ("patient_id",), (100,))
            == []
        )
        assert (
            hospital_engine.find_by("PRESCRIPTION", ("patient_id",), (100,))
            == []
        )
        # Physicians and medications (referenced, outside island) survive.
        assert hospital_engine.count("PHYSICIAN") == 8
        assert hospital_engine.count("MEDICATION") == 6
        assert plan.count("insert") == 0

    def test_cad_deletion_cascades_subset(self, bom, cad_engine):
        translator = Translator(bom, verify_integrity=True)
        released = next(iter(cad_engine.scan("RELEASED_ASSEMBLY")))[0]
        translator.delete(cad_engine, key=(released,))
        assert cad_engine.get("ASSEMBLY", (released,)) is None
        assert cad_engine.get("RELEASED_ASSEMBLY", (released,)) is None
        assert cad_engine.find_by("COMPONENT", ("asm_id",), (released,)) == []
