"""Query-driven bulk operations (delete_where / update_where)."""

import pytest

from repro.core.updates.policy import RelationPolicy, TranslatorPolicy
from repro.core.updates.translator import Translator
from repro.errors import UpdateRejectedError
from repro.structural.integrity import IntegrityChecker


@pytest.fixture
def translator(omega):
    return Translator(omega)


class TestDeleteWhere:
    def test_deletes_all_matching(self, translator, university_engine):
        doomed = {
            v[0]
            for v in university_engine.scan("COURSES")
            if v[4] == "Philosophy"
        }
        assert doomed
        plan = translator.delete_where(
            university_engine, "dept_name = 'Philosophy'"
        )
        for cid in doomed:
            assert university_engine.get("COURSES", (cid,)) is None
        survivors = {v[0] for v in university_engine.scan("COURSES")}
        assert survivors  # other departments untouched
        assert plan.count("delete") >= len(doomed)

    def test_leaves_consistent_state(
        self, translator, university_engine, university_graph
    ):
        translator.delete_where(university_engine, "units <= 2")
        assert IntegrityChecker(university_graph).is_consistent(
            university_engine
        )

    def test_no_matches_is_noop(self, translator, university_engine):
        before = university_engine.count("COURSES")
        plan = translator.delete_where(university_engine, "units > 999")
        assert len(plan) == 0
        assert university_engine.count("COURSES") == before

    def test_batch_is_atomic(self, omega, university_engine):
        policy = TranslatorPolicy()
        from repro.core.updates.policy import ReferenceRepair

        policy.set_relation(
            "CURRICULUM",
            RelationPolicy(on_reference_delete=ReferenceRepair.PROHIBIT),
        )
        translator = Translator(omega, policy=policy)
        before = sorted(university_engine.scan("COURSES"))
        # Some course in the batch has curriculum references -> the whole
        # batch must roll back, including earlier successful deletions.
        with pytest.raises(UpdateRejectedError):
            translator.delete_where(university_engine, "units >= 1")
        assert sorted(university_engine.scan("COURSES")) == before


class TestUpdateWhere:
    def test_transforms_all_matching(self, translator, university_engine):
        def bump_units(data):
            data = dict(data)
            data["units"] = data["units"] + 10
            return data

        matched = [
            v[0] for v in university_engine.scan("COURSES") if v[3] == "graduate"
        ]
        plan = translator.update_where(
            university_engine, "level = 'graduate'", bump_units
        )
        assert plan.count("replace") == len(matched)
        for cid in matched:
            assert university_engine.get("COURSES", (cid,))[2] > 10

    def test_identity_transform_is_noop(self, translator, university_engine):
        plan = translator.update_where(
            university_engine, "level = 'graduate'", lambda data: data
        )
        assert len(plan) == 0

    def test_atomic_on_rejection(self, omega, university_engine):
        policy = TranslatorPolicy()
        policy.set_relation("DEPARTMENT", RelationPolicy(can_modify=False))
        translator = Translator(omega, policy=policy)
        before = sorted(university_engine.scan("COURSES"))

        def reroute(data):
            data = dict(data)
            data["dept_name"] = "Nonexistent Dept"
            data["DEPARTMENT"] = []
            return data

        with pytest.raises(UpdateRejectedError):
            translator.update_where(
                university_engine, "units >= 1", reroute
            )
        assert sorted(university_engine.scan("COURSES")) == before
