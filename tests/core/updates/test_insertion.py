"""Algorithm VO-CI: complete insertion (§5.2)."""

import pytest

from repro.errors import LocalValidationError, UpdateRejectedError
from repro.core.updates.policy import RelationPolicy, TranslatorPolicy
from repro.core.updates.translator import Translator
from repro.structural.integrity import IntegrityChecker


@pytest.fixture
def translator(omega):
    return Translator(omega, verify_integrity=True)


def existing_student(engine):
    return next(iter(engine.scan("STUDENT")))


def new_course(engine, course_id="CS999", student=None, dept="Computer Science"):
    data = {
        "course_id": course_id,
        "title": "View Objects",
        "units": 3,
        "level": "graduate",
        "dept_name": dept,
        "DEPARTMENT": [],
        "CURRICULUM": [],
        "GRADES": [],
    }
    if dept:
        existing = engine.get("DEPARTMENT", (dept,))
        if existing is not None:
            data["DEPARTMENT"] = [
                {"dept_name": existing[0], "building": existing[1]}
            ]
        # For an unknown department the child list stays empty: global
        # integrity must insert the skeleton tuple on its own.
    if student is not None:
        data["GRADES"] = [
            {
                "course_id": course_id,
                "student_id": student[0],
                "grade": "A",
                "STUDENT": [
                    {
                        "person_id": student[0],
                        "degree_program": student[1],
                        "year": student[2],
                    }
                ],
            }
        ]
    return data


class TestCase2Insertions:
    def test_pivot_inserted(self, translator, university_engine):
        translator.insert(university_engine, new_course(university_engine))
        assert university_engine.get("COURSES", ("CS999",)) is not None

    def test_island_children_inserted(self, translator, university_engine):
        student = existing_student(university_engine)
        translator.insert(
            university_engine,
            new_course(university_engine, student=student),
        )
        assert (
            university_engine.get("GRADES", ("CS999", student[0]))
            is not None
        )

    def test_projected_out_attributes_completed(
        self, translator, university_engine
    ):
        translator.insert(university_engine, new_course(university_engine))
        # instructor_id was projected out of ω: completed with null.
        assert university_engine.get("COURSES", ("CS999",))[5] is None

    def test_consistency(self, translator, university_engine, university_graph):
        student = existing_student(university_engine)
        translator.insert(
            university_engine, new_course(university_engine, student=student)
        )
        assert IntegrityChecker(university_graph).is_consistent(
            university_engine
        )


class TestCase1Rejections:
    def test_identical_pivot_rejected(self, translator, university_engine):
        data = new_course(university_engine)
        translator.insert(university_engine, data)
        with pytest.raises(UpdateRejectedError, match="CASE 1"):
            translator.insert(university_engine, data)

    def test_identical_outside_tuple_is_noop(
        self, translator, university_engine
    ):
        # DEPARTMENT already exists identically: CASE 1 outside island.
        before = university_engine.count("DEPARTMENT")
        plan = translator.insert(
            university_engine, new_course(university_engine)
        )
        assert university_engine.count("DEPARTMENT") == before
        assert all(op.relation != "DEPARTMENT" for op in plan)


class TestCase3:
    def test_island_conflict_rejected(self, translator, university_engine):
        data = new_course(university_engine)
        translator.insert(university_engine, data)
        data["title"] = "Different Title"
        with pytest.raises(UpdateRejectedError, match="CASE 3"):
            translator.insert(university_engine, data)

    def test_outside_conflict_replaces(self, translator, university_engine):
        data = new_course(university_engine)
        data["DEPARTMENT"] = [
            {"dept_name": "Computer Science", "building": "New Gates"}
        ]
        plan = translator.insert(university_engine, data)
        assert university_engine.get(
            "DEPARTMENT", ("Computer Science",)
        )[1] == "New Gates"
        assert plan.count("replace") >= 1

    def test_outside_conflict_respects_policy(self, omega, university_engine):
        policy = TranslatorPolicy()
        policy.set_relation(
            "DEPARTMENT", RelationPolicy(can_replace_existing=False)
        )
        translator = Translator(omega, policy=policy)
        data = new_course(university_engine)
        data["DEPARTMENT"] = [
            {"dept_name": "Computer Science", "building": "New Gates"}
        ]
        with pytest.raises(UpdateRejectedError):
            translator.insert(university_engine, data)
        assert university_engine.get("COURSES", ("CS999",)) is None  # rollback


class TestGlobalIntegrityInsertions:
    def test_new_department_skeleton(self, translator, university_engine):
        data = new_course(
            university_engine, dept="Engineering Economic Systems"
        )
        translator.insert(university_engine, data)
        assert (
            university_engine.get(
                "DEPARTMENT", ("Engineering Economic Systems",)
            )
            is not None
        )

    def test_new_student_recursive_skeleton(
        self, translator, university_engine, university_graph
    ):
        """Inserting a grade for a brand-new student must insert the
        STUDENT tuple and, recursively, its general PEOPLE tuple."""
        data = new_course(
            university_engine, student=(424242, "MSCS", 1)
        )
        translator.insert(university_engine, data)
        assert university_engine.get("STUDENT", (424242,)) is not None
        assert university_engine.get("PEOPLE", (424242,)) is not None
        assert IntegrityChecker(university_graph).is_consistent(
            university_engine
        )

    def test_skeleton_blocked_by_policy(self, omega, university_engine):
        policy = TranslatorPolicy()
        policy.set_relation("PEOPLE", RelationPolicy(can_insert=False))
        translator = Translator(omega, policy=policy)
        data = new_course(university_engine, student=(424242, "MSCS", 1))
        with pytest.raises(UpdateRejectedError, match="PEOPLE"):
            translator.insert(university_engine, data)
        assert university_engine.get("STUDENT", (424242,)) is None


class TestPolicyGates:
    def test_insertion_gate(self, omega, university_engine):
        translator = Translator(
            omega, policy=TranslatorPolicy(allow_insertion=False)
        )
        with pytest.raises(LocalValidationError):
            translator.insert(
                university_engine, new_course(university_engine)
            )

    def test_outside_insert_blocked(self, omega, university_engine):
        policy = TranslatorPolicy()
        policy.set_relation("DEPARTMENT", RelationPolicy(can_insert=False))
        translator = Translator(omega, policy=policy)
        data = new_course(university_engine, dept="Brand New Dept")
        with pytest.raises(UpdateRejectedError):
            translator.insert(university_engine, data)

    def test_can_modify_gate_blocks_insert(self, omega, university_engine):
        policy = TranslatorPolicy()
        policy.set_relation("DEPARTMENT", RelationPolicy(can_modify=False))
        translator = Translator(omega, policy=policy)
        data = new_course(university_engine, dept="Brand New Dept")
        with pytest.raises(UpdateRejectedError):
            translator.insert(university_engine, data)
