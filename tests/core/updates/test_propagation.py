"""Step 2: in-object propagation of connecting attributes."""

import pytest

from repro.core.instance import build_instance
from repro.core.updates.propagation import propagate_within_object


@pytest.fixture
def instance_data():
    return {
        "course_id": "NEW9",
        "title": "t",
        "units": 1,
        "level": "graduate",
        "dept_name": "Physics",
        "DEPARTMENT": [{"dept_name": "STALE", "building": "b"}],
        "CURRICULUM": [
            {"degree": "MSCS", "course_id": "STALE", "category": "required"}
        ],
        "GRADES": [
            {
                "course_id": "STALE",
                "student_id": 7,
                "grade": "A",
                "STUDENT": [
                    {"person_id": 99, "degree_program": "MSCS", "year": 1}
                ],
            }
        ],
    }


def test_island_children_inherit_new_key(omega, instance_data):
    instance = build_instance(omega, instance_data)
    propagated = propagate_within_object(omega, instance)
    grades = propagated.tuples_at("GRADES")
    assert grades[0]["course_id"] == "NEW9"


def test_peninsula_foreign_key_rewritten(omega, instance_data):
    instance = build_instance(omega, instance_data)
    propagated = propagate_within_object(omega, instance)
    assert propagated.tuples_at("CURRICULUM")[0]["course_id"] == "NEW9"


def test_referenced_child_key_rewritten(omega, instance_data):
    instance = build_instance(omega, instance_data)
    propagated = propagate_within_object(omega, instance)
    assert propagated.tuples_at("DEPARTMENT")[0]["dept_name"] == "Physics"


def test_grandchild_inherits_through_parent(omega, instance_data):
    """STUDENT hangs off GRADES through student_id: the STUDENT tuple's
    person_id must follow the grade's student_id."""
    instance = build_instance(omega, instance_data)
    propagated = propagate_within_object(omega, instance)
    grade = propagated.tuples_at("GRADES")[0]
    student = grade.child_tuples("STUDENT")[0]
    assert student["person_id"] == grade["student_id"] == 7


def test_original_instance_untouched(omega, instance_data):
    instance = build_instance(omega, instance_data)
    propagate_within_object(omega, instance)
    assert instance.tuples_at("GRADES")[0]["course_id"] == "STALE"


def test_composite_paths_skipped(omega_prime):
    """ω′'s STUDENT edge collapses two connections; no instance-level
    propagation is possible (the GRADES linkage lives in the database)."""
    instance = build_instance(
        omega_prime,
        {
            "course_id": "C1",
            "title": "t",
            "units": 1,
            "level": "graduate",
            "instructor_id": None,
            "FACULTY": [],
            "STUDENT": [
                {"person_id": 3, "degree_program": "MSCS", "year": 1}
            ],
        },
    )
    propagated = propagate_within_object(omega_prime, instance)
    assert propagated.tuples_at("STUDENT")[0]["person_id"] == 3
