"""Translator / Penguin batch translation APIs: insert_many,
delete_many, apply_plan_batch, and the answers-coercion fix."""

import pytest

from repro.core.updates.operations import (
    CompleteDeletion,
    CompleteInsertion,
    Replacement,
)
from repro.errors import UpdateError
from repro.penguin import Penguin
from repro.workloads.figures import course_info_object
from repro.workloads.university import populate_university, university_schema


def new_course(i, **overrides):
    data = {
        "course_id": f"BAT{i:03d}",
        "title": f"Batch {i}",
        "units": 3,
        "level": "graduate",
        "dept_name": "Computer Science",
        "DEPARTMENT": [],
        "CURRICULUM": [],
        "GRADES": [],
    }
    data.update(overrides)
    return data


@pytest.fixture
def session():
    graph = university_schema()
    penguin = Penguin(graph)
    populate_university(penguin.engine)
    penguin.register_object(course_info_object(graph))
    return penguin


class TestInsertMany:
    def test_batch_inserts_all(self, session):
        plan = session.insert_many(
            "course_info", [new_course(i) for i in range(10)]
        )
        assert plan.count("insert") >= 10
        for i in range(10):
            assert session.get("course_info", (f"BAT{i:03d}",)) is not None
        assert session.is_consistent()

    def test_matches_sequential_loop(self, session):
        batch = [new_course(i) for i in range(6)]
        session.insert_many("course_info", batch)
        sequential = Penguin(university_schema())
        populate_university(sequential.engine)
        sequential.register_object(course_info_object(sequential.graph))
        for data in batch:
            sequential.insert("course_info", data)
        for name in session.engine.relation_names():
            assert sorted(session.engine.scan(name)) == sorted(
                sequential.engine.scan(name)
            ), name

    def test_duplicate_within_batch_fails_atomically(self, session):
        before = session.engine.count("COURSES")
        batch = [new_course(0), new_course(1), new_course(0, title="again")]
        with pytest.raises(UpdateError):
            session.insert_many("course_info", batch)
        assert session.engine.count("COURSES") == before

    def test_empty_batch_is_noop(self, session):
        plan = session.insert_many("course_info", [])
        assert len(plan) == 0


class TestDeleteMany:
    def test_delete_by_keys(self, session):
        session.insert_many("course_info", [new_course(i) for i in range(4)])
        plan = session.delete_many(
            "course_info", [(f"BAT{i:03d}",) for i in range(4)]
        )
        assert plan.count("delete") >= 4
        assert session.get("course_info", ("BAT000",)) is None
        assert session.is_consistent()

    def test_delete_by_instances(self, session):
        session.insert_many("course_info", [new_course(i) for i in range(3)])
        instances = [
            session.get("course_info", (f"BAT{i:03d}",)) for i in range(3)
        ]
        session.delete_many("course_info", instances)
        assert session.get("course_info", ("BAT001",)) is None

    def test_missing_key_fails_atomically(self, session):
        session.insert_many("course_info", [new_course(0)])
        before = session.engine.count("COURSES")
        with pytest.raises(UpdateError):
            session.delete_many("course_info", [("BAT000",), ("ABSENT",)])
        assert session.engine.count("COURSES") == before


class TestApplyPlanBatch:
    def test_mixed_request_kinds(self, session):
        translator = session.translator("course_info")
        session.insert("course_info", new_course(0))
        old = session.get("course_info", ("BAT000",))
        replacement = dict(old.to_dict())
        replacement["title"] = "Replaced"
        requests = [
            CompleteInsertion(
                translator._coerce_instance(new_course(1))
            ),
            Replacement(old, translator._coerce_instance(replacement)),
        ]
        plan = session.apply_plan_batch("course_info", requests)
        assert len(plan) >= 2
        assert (
            session.get("course_info", ("BAT000",)).root.values["title"]
            == "Replaced"
        )
        assert session.get("course_info", ("BAT001",)) is not None

    def test_insert_then_delete_same_instance_coalesces_away(self, session):
        translator = session.translator("course_info")
        instance = translator._coerce_instance(new_course(7))
        before = session.engine.count("COURSES")
        plan = session.apply_plan_batch(
            "course_info",
            [CompleteInsertion(instance), CompleteDeletion(instance)],
        )
        # the pair annihilates before touching the engine
        assert plan.count("insert") == 0
        assert plan.count("delete") == 0
        assert session.engine.count("COURSES") == before

    def test_later_request_sees_earlier_effects(self, session):
        translator = session.translator("course_info")
        # delete-by-key resolves against the buffer, so it can see the
        # instance inserted earlier in the same batch
        plan = session.apply_plan_batch(
            "course_info",
            [
                CompleteInsertion(translator._coerce_instance(new_course(9))),
                CompleteDeletion(("BAT009",)),
            ],
        )
        assert plan.count("insert") == 0
        assert session.get("course_info", ("BAT009",)) is None


class TestAnswersCoercion:
    """Satellite: a bare string silently became ScriptedAnswers."""

    def test_string_rejected(self, session):
        with pytest.raises(TypeError, match="string"):
            session.choose_translator("course_info", answers="yes")

    def test_bool_and_mapping_still_work(self, session):
        session.choose_translator("course_info", answers=True)
        session.choose_translator("course_info", answers={})
