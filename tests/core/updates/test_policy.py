"""Translator policies and the attribute completer."""

import pytest

from repro.errors import UpdateRejectedError
from repro.core.updates.policy import (
    ReferenceRepair,
    RelationPolicy,
    TranslatorPolicy,
    null_completer,
)
from repro.workloads.university import university_schema


class TestRelationPolicy:
    def test_defaults_permissive(self):
        policy = RelationPolicy()
        assert policy.can_modify and policy.can_insert
        assert policy.can_replace_existing
        assert policy.allow_key_replacement
        assert policy.allow_db_key_replacement
        assert not policy.allow_merge_on_key_conflict
        assert policy.on_reference_delete is ReferenceRepair.AUTO

    def test_copy_is_independent(self):
        original = RelationPolicy(can_modify=False)
        clone = original.copy()
        clone.can_modify = True
        assert not original.can_modify


class TestTranslatorPolicy:
    def test_for_relation_creates_default(self):
        policy = TranslatorPolicy()
        relation_policy = policy.for_relation("COURSES")
        assert relation_policy.can_modify
        # Same object comes back (mutations stick).
        relation_policy.can_modify = False
        assert not policy.for_relation("COURSES").can_modify

    def test_set_relation(self):
        policy = TranslatorPolicy()
        policy.set_relation("X", RelationPolicy(can_insert=False))
        assert not policy.for_relation("X").can_insert

    def test_read_only(self):
        policy = TranslatorPolicy.read_only()
        assert not policy.allow_insertion
        assert not policy.allow_deletion
        assert not policy.allow_replacement

    def test_permissive(self):
        policy = TranslatorPolicy.permissive()
        assert policy.allow_insertion and policy.allow_deletion
        assert policy.allow_replacement


class TestNullCompleter:
    def test_fills_nullable(self):
        schema = university_schema().relation("COURSES")
        completed = null_completer(
            "COURSES",
            schema,
            {
                "course_id": "X",
                "title": "t",
                "units": 1,
                "level": "g",
                "dept_name": "d",
            },
        )
        assert completed["instructor_id"] is None

    def test_rejects_non_nullable(self):
        schema = university_schema().relation("GRADES")
        with pytest.raises(UpdateRejectedError, match="grade"):
            null_completer("GRADES", schema, {"course_id": "X", "student_id": 1})

    def test_keeps_provided_values(self):
        schema = university_schema().relation("DEPARTMENT")
        completed = null_completer(
            "DEPARTMENT", schema, {"dept_name": "CS", "building": "Gates"}
        )
        assert completed["building"] == "Gates"
        assert completed["budget"] is None


class TestCustomCompleter:
    def test_completer_used_for_skeletons(self, omega, university_engine):
        from repro.core.updates.translator import Translator

        def completer(relation, schema, partial):
            completed = dict(partial)
            for attribute in schema.attributes:
                if attribute.name not in completed:
                    if attribute.domain.name == "text":
                        completed[attribute.name] = "DEFAULT"
                    elif attribute.nullable:
                        completed[attribute.name] = None
                    else:
                        completed[attribute.name] = 0
            return completed

        policy = TranslatorPolicy(completer=completer)
        translator = Translator(omega, policy=policy)
        translator.insert(
            university_engine,
            {
                "course_id": "COMP1",
                "title": "t",
                "units": 1,
                "level": "graduate",
                "dept_name": "Never Seen Before",
            },
        )
        skeleton = university_engine.get(
            "DEPARTMENT", ("Never Seen Before",)
        )
        assert skeleton[1] == "DEFAULT"
