"""Step 1: local validation."""

import pytest

from repro.errors import LocalValidationError
from repro.core.instance import build_instance
from repro.core.updates.context import TranslationContext
from repro.core.updates.local_validation import (
    validate_deletion,
    validate_insertion,
    validate_replacement,
)
from repro.core.updates.policy import RelationPolicy, TranslatorPolicy
from repro.core.view_object import define_view_object


def ctx_for(view_object, engine, policy=None):
    return TranslationContext(
        view_object, engine, policy or TranslatorPolicy()
    )


def minimal_instance(omega, course_id="C1"):
    return build_instance(
        omega,
        {
            "course_id": course_id,
            "title": "t",
            "units": 1,
            "level": "graduate",
            "dept_name": "Physics",
        },
    )


class TestGates:
    def test_insertion_gate(self, omega, university_engine):
        ctx = ctx_for(
            omega, university_engine, TranslatorPolicy(allow_insertion=False)
        )
        with pytest.raises(LocalValidationError):
            validate_insertion(ctx, minimal_instance(omega))

    def test_deletion_gate(self, omega, university_engine):
        ctx = ctx_for(
            omega, university_engine, TranslatorPolicy(allow_deletion=False)
        )
        with pytest.raises(LocalValidationError):
            validate_deletion(ctx, minimal_instance(omega))

    def test_replacement_gate(self, omega, university_engine):
        ctx = ctx_for(
            omega, university_engine, TranslatorPolicy(allow_replacement=False)
        )
        with pytest.raises(LocalValidationError):
            validate_replacement(
                ctx, minimal_instance(omega), minimal_instance(omega)
            )


class TestObjectIdentity:
    def test_wrong_object_rejected(
        self, omega, omega_prime, university_engine
    ):
        ctx = ctx_for(omega, university_engine)
        foreign = build_instance(
            omega_prime,
            {
                "course_id": "C1",
                "title": "t",
                "units": 1,
                "level": "graduate",
                "instructor_id": None,
            },
        )
        with pytest.raises(LocalValidationError, match="belongs to"):
            validate_insertion(ctx, foreign)

    def test_query_only_object_not_updatable(
        self, university_graph, university_engine
    ):
        readonly = define_view_object(
            university_graph,
            "ro",
            "COURSES",
            selections={"COURSES": ("course_id", "title")},
            updatable=False,
        )
        ctx = ctx_for(readonly, university_engine)
        instance = build_instance(
            readonly, {"course_id": "C1", "title": "t"}
        )
        with pytest.raises(LocalValidationError, match="query-only"):
            validate_insertion(ctx, instance)


class TestReplacementKeyDiscipline:
    def test_island_key_change_needs_permission(
        self, omega, university_engine
    ):
        policy = TranslatorPolicy()
        policy.set_relation(
            "COURSES", RelationPolicy(allow_key_replacement=False)
        )
        ctx = ctx_for(omega, university_engine, policy)
        with pytest.raises(LocalValidationError, match="island"):
            validate_replacement(
                ctx,
                minimal_instance(omega, "A1"),
                minimal_instance(omega, "A2"),
            )

    def test_island_key_change_allowed_by_default(
        self, omega, university_engine
    ):
        ctx = ctx_for(omega, university_engine)
        validate_replacement(
            ctx, minimal_instance(omega, "A1"), minimal_instance(omega, "A2")
        )

    def test_peninsula_key_change_always_prohibited(
        self, omega, university_engine
    ):
        ctx = ctx_for(omega, university_engine)
        old = build_instance(
            omega,
            {
                "course_id": "C1",
                "title": "t",
                "units": 1,
                "level": "graduate",
                "dept_name": "Physics",
                "CURRICULUM": [
                    {"degree": "OLD", "course_id": "C1", "category": "x"}
                ],
            },
        )
        new = build_instance(
            omega,
            {
                "course_id": "C1",
                "title": "t",
                "units": 1,
                "level": "graduate",
                "dept_name": "Physics",
                "CURRICULUM": [
                    {"degree": "NEW", "course_id": "C1", "category": "x"}
                ],
            },
        )
        with pytest.raises(LocalValidationError, match="peninsula"):
            validate_replacement(ctx, old, new)

    def test_peninsula_fk_part_change_is_fine(self, omega, university_engine):
        """The FK part of the peninsula key is system-maintained; a pivot
        key change implies it and must not be flagged."""
        ctx = ctx_for(omega, university_engine)
        old = build_instance(
            omega,
            {
                "course_id": "C1",
                "title": "t",
                "units": 1,
                "level": "graduate",
                "dept_name": "Physics",
                "CURRICULUM": [
                    {"degree": "MS", "course_id": "C1", "category": "x"}
                ],
            },
        )
        new = build_instance(
            omega,
            {
                "course_id": "C2",
                "title": "t",
                "units": 1,
                "level": "graduate",
                "dept_name": "Physics",
                "CURRICULUM": [
                    {"degree": "MS", "course_id": "C2", "category": "x"}
                ],
            },
        )
        validate_replacement(ctx, old, new)
