"""Step 1's "user authorizations" check."""

import pytest

from repro.core.updates.policy import TranslatorPolicy
from repro.core.updates.translator import Translator
from repro.errors import LocalValidationError


@pytest.fixture
def restricted(omega):
    policy = TranslatorPolicy(authorized_users=["dba", "registrar"])
    return Translator(omega, policy=policy)


def any_course(engine):
    return next(iter(engine.scan("COURSES")))[0]


def test_open_policy_allows_anonymous(omega, university_engine):
    translator = Translator(omega)
    translator.delete(university_engine, key=(any_course(university_engine),))


def test_unbound_user_rejected(restricted, university_engine):
    with pytest.raises(LocalValidationError, match="not authorized"):
        restricted.delete(
            university_engine, key=(any_course(university_engine),)
        )


def test_unauthorized_user_rejected(restricted, university_engine):
    eve = restricted.for_user("eve")
    with pytest.raises(LocalValidationError, match="'eve'"):
        eve.delete(university_engine, key=(any_course(university_engine),))


def test_authorized_user_allowed(restricted, university_engine):
    registrar = restricted.for_user("registrar")
    cid = any_course(university_engine)
    registrar.delete(university_engine, key=(cid,))
    assert university_engine.get("COURSES", (cid,)) is None


def test_rejection_happens_before_any_mutation(
    restricted, university_engine, university_graph
):
    before = {
        name: sorted(university_engine.scan(name))
        for name in university_graph.relation_names
    }
    with pytest.raises(LocalValidationError):
        restricted.for_user("eve").delete(
            university_engine, key=(any_course(university_engine),)
        )
    after = {
        name: sorted(university_engine.scan(name))
        for name in university_graph.relation_names
    }
    assert after == before


def test_previews_also_gated(restricted, university_engine):
    with pytest.raises(LocalValidationError):
        restricted.for_user("eve").preview_delete(
            university_engine, key=(any_course(university_engine),)
        )


def test_binding_does_not_mutate_original(restricted):
    bound = restricted.for_user("dba")
    assert bound.user == "dba"
    assert restricted.user is None
    assert bound.policy is restricted.policy


def test_policy_authorizes():
    open_policy = TranslatorPolicy()
    assert open_policy.authorizes(None)
    assert open_policy.authorizes("anyone")
    closed = TranslatorPolicy(authorized_users=["a"])
    assert closed.authorizes("a")
    assert not closed.authorizes("b")
    assert not closed.authorizes(None)
