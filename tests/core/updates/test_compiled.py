"""The compiled translator: byte-identical plans, shared cache, and the
batch-path stragglers.

The central contract is the BIRDS-style equivalence discipline: for any
schema in the synthetic chain family and any complete operation, the
compiled program and the interpreted tree walk must produce the *same*
plan — same operations, same order, same CASE reason strings — and
reject the same requests with the same messages. Everything else
(speed, prepared statements, cache sharing) rides on that guarantee.
"""

import copy
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.updates.compiled as compiled_mod
from repro.core.updates.compiled import CompiledProgram
from repro.core.updates.operations import (
    CompleteDeletion,
    CompleteInsertion,
    Replacement,
)
from repro.core.updates.translator import Translator
from repro.errors import UpdateRejectedError
from repro.obs.audit import MemoryAuditLog
from repro.penguin import Penguin
from repro.relational.faults import FaultInjectingEngine, FaultPlan, SimulatedCrash
from repro.relational.journal import COMMITTED, MemoryJournal
from repro.relational.memory_engine import MemoryEngine
from repro.shard.router import HashRouter, Placement, partition_plan
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)
from repro.workloads.synthetic import random_chain_case

FRESH_ROOT = 4711
REHOMED_ROOT = 7777


def rekey(node, new_root):
    """Set k0 to ``new_root`` throughout a nested instance dict."""
    if "k0" in node:
        node["k0"] = new_root
    for value in node.values():
        if isinstance(value, list):
            for child in value:
                if isinstance(child, dict):
                    rekey(child, new_root)
    return node


def snapshot(engine):
    return {name: set(engine.scan(name)) for name in engine.relation_names()}


def assert_same_plan(interpreted, compiled):
    assert interpreted.operations == compiled.operations
    assert interpreted.reasons == compiled.reasons


def twin_setups(seed):
    """Two identical engines over the same seeded random schema, one
    translator interpreted, one compiled."""
    engine_i, engine_c = MemoryEngine(), MemoryEngine()
    _, object_i, params = random_chain_case(engine_i, seed)
    _, object_c, _ = random_chain_case(engine_c, seed)
    interp = Translator(object_i, compile_plans=False)
    comp = Translator(object_c, compile_plans=True)
    return engine_i, engine_c, interp, comp, params


class TestCompiledEquivalence:
    """compiled ≡ interpreted over the randomized chain family.

    Each Hypothesis example runs four comparisons — rejection parity,
    fresh insert, key re-homing replace, delete — so 70 examples cover
    280 schema/op cases (the acceptance floor is 200).
    """

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=70, deadline=None)
    def test_plans_and_rejections_identical(self, seed):
        engine_i, engine_c, interp, comp, params = twin_setups(seed)

        # Rejection parity: re-inserting a resident island instance is
        # CASE 1 on both paths, with the identical message.
        template = interp.instantiate(engine_i, (0,)).to_dict()
        with pytest.raises(UpdateRejectedError) as rej_i:
            interp.insert(engine_i, copy.deepcopy(template))
        with pytest.raises(UpdateRejectedError) as rej_c:
            comp.insert(engine_c, copy.deepcopy(template))
        assert str(rej_i.value) == str(rej_c.value)

        # Fresh insert: the resident instance re-keyed to a new root.
        fresh = rekey(copy.deepcopy(template), FRESH_ROOT)
        assert_same_plan(
            interp.insert(engine_i, copy.deepcopy(fresh)),
            comp.insert(engine_c, copy.deepcopy(fresh)),
        )

        # Replacement with key re-homing: root 0 moves to a new pivot
        # key, dragging the owned subtree and peninsula repairs along.
        old_i = interp.instantiate(engine_i, (0,))
        rehomed = rekey(old_i.to_dict(), REHOMED_ROOT)
        old_c = comp.instantiate(engine_c, (0,))
        assert_same_plan(
            interp.replace(engine_i, old_i, copy.deepcopy(rehomed)),
            comp.replace(engine_c, old_c, copy.deepcopy(rehomed)),
        )

        # Deletion of the re-homed instance (island + peninsula repair).
        assert_same_plan(
            interp.delete(engine_i, key=(REHOMED_ROOT,)),
            comp.delete(engine_c, key=(REHOMED_ROOT,)),
        )

        # After identical plans, the databases are byte-identical too.
        assert snapshot(engine_i) == snapshot(engine_c)

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=25, deadline=None)
    def test_cross_shard_partition_identical(self, seed):
        """The owner-shard fast path: partitioning a compiled plan (incl.
        a pivot-key re-home that crosses shards) equals partitioning the
        interpreted plan, shard by shard."""
        engine_i, engine_c, interp, comp, _ = twin_setups(seed)
        old_i = interp.instantiate(engine_i, (0,))
        rehomed = rekey(old_i.to_dict(), REHOMED_ROOT)
        plan_i = interp.preview_replace(engine_i, old_i, copy.deepcopy(rehomed))
        old_c = comp.instantiate(engine_c, (0,))
        plan_c = comp.preview_replace(engine_c, old_c, copy.deepcopy(rehomed))

        graph = interp.view_object.graph
        placement = Placement(graph, "R0")
        router = HashRouter(4)
        parts_i = partition_plan(plan_i, placement, router, num_shards=4)
        parts_c = partition_plan(plan_c, placement, router, num_shards=4)
        assert sorted(parts_i) == sorted(parts_c)
        for shard in parts_i:
            assert parts_i[shard].operations == parts_c[shard].operations


class TestCompiledOnHospital:
    """Spot checks on the richer hospital schema (multi-child tree,
    reference children, nullable foreign keys)."""

    def setups(self):
        engine_i, engine_c = MemoryEngine(), MemoryEngine()
        graph_i, graph_c = hospital_schema(), hospital_schema()
        graph_i.install(engine_i)
        graph_c.install(engine_c)
        populate_hospital(engine_i, HospitalConfig(patients=4))
        populate_hospital(engine_c, HospitalConfig(patients=4))
        interp = Translator(patient_chart_object(graph_i), compile_plans=False)
        comp = Translator(patient_chart_object(graph_c), compile_plans=True)
        return engine_i, engine_c, interp, comp

    def test_explain_renders_identically(self):
        engine_i, engine_c, interp, comp = self.setups()

        def requests_for(translator, engine):
            chart = translator.instantiate(engine, (100,))
            renamed = dict(
                translator.instantiate(engine, (101,)).to_dict(),
                name="Compiled Check",
            )
            fresh = dict(chart.to_dict(), patient_id=999, VISIT=[])
            return [
                CompleteDeletion(chart),
                Replacement(
                    translator.instantiate(engine, (101,)), renamed
                ),
                CompleteInsertion(fresh),
            ]

        for req_i, req_c in zip(
            requests_for(interp, engine_i), requests_for(comp, engine_c)
        ):
            explain_i = interp.explain(engine_i, req_i)
            explain_c = comp.explain(engine_c, req_c)
            assert explain_i.render() == explain_c.render()

    def test_program_describe_names_every_node(self):
        _, _, _, comp = self.setups()
        front = comp.compiled()
        text = front.describe()
        assert "PATIENT" in text
        assert "island" in text
        assert front.program is comp.compiled().program  # cached

    def test_prepared_engine_plans_unchanged(self):
        """prepare_engine builds sqlite statements and hash indexes
        without changing the plans the translator produces."""
        from repro.relational.sqlite_engine import SqliteEngine

        graph = hospital_schema()
        engine = SqliteEngine()
        graph.install(engine)
        populate_hospital(engine, HospitalConfig(patients=3))
        comp = Translator(patient_chart_object(graph), compile_plans=True)
        baseline = comp.preview_delete(engine, key=(100,))
        comp.compiled().prepare_engine(engine)
        assert engine._sql_cache  # statements were built eagerly
        prepared = comp.preview_delete(engine, key=(100,))
        assert baseline.operations == prepared.operations
        applied = comp.delete(engine, key=(100,))
        assert applied.operations == baseline.operations
        assert engine.get("PATIENT", (100,)) is None


class TestCompiledCacheSharing:
    def test_for_user_shares_the_cache_object(self):
        engine = MemoryEngine()
        _, view_object, _ = random_chain_case(engine, 11)
        translator = Translator(view_object, compile_plans=True)
        bound = translator.for_user("alice")
        assert bound._compiled is translator._compiled
        # The program built through either handle is the same object.
        assert bound.compiled().program is translator.compiled().program

    def test_concurrent_first_compile_builds_once(self, monkeypatch):
        """Eight threads race the first translation through for_user
        copies; the program must be compiled exactly once (the
        ConcurrentPenguin reader/writer regression)."""
        builds = []
        real = CompiledProgram

        def counting(view_object, analysis):
            builds.append(threading.get_ident())
            return real(view_object, analysis)

        monkeypatch.setattr(compiled_mod, "CompiledProgram", counting)
        seeds = list(range(8))
        engines = []
        for _ in seeds:
            engine = MemoryEngine()
            random_chain_case(engine, 23)
            engines.append(engine)
        shared_engine = MemoryEngine()
        _, view_object, _ = random_chain_case(shared_engine, 23)
        translator = Translator(view_object, compile_plans=True)
        barrier = threading.Barrier(len(seeds))
        plans = [None] * len(seeds)
        errors = []

        def worker(index):
            bound = translator.for_user(f"user{index}")
            barrier.wait()
            try:
                plans[index] = bound.preview_delete(
                    engines[index], key=(0,)
                )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in seeds
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(builds) == 1
        reference = plans[0]
        for plan in plans[1:]:
            assert plan.operations == reference.operations

    def test_concurrent_penguin_serves_compiled_updates(self):
        """Writer threads insert distinct charts through the serving
        lock while the shared compiled cache is warm."""
        from repro.serve.concurrent import ConcurrentPenguin

        graph = hospital_schema()
        session = Penguin(graph)
        populate_hospital(session.engine, HospitalConfig(patients=2))
        session.register_object(patient_chart_object(graph))
        serving = ConcurrentPenguin(session)
        base = {
            "name": "Threaded",
            "birth_year": 1980,
            "ward_name": None,
            "VISIT": [],
        }
        errors = []

        def writer(pid):
            try:
                serving.insert(
                    "patient_chart", dict(base, patient_id=pid)
                )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(60_000 + i,))
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for i in range(6):
            assert serving.get("patient_chart", (60_000 + i,)) is not None


class TestWhereBatchSemantics:
    """delete_where / update_where now ride the _run_batch pipeline:
    coalesced plan, one journal intent, one audit record, all-or-nothing."""

    def build_session(self, journal=None, audit=None, engine=None):
        graph = hospital_schema()
        own_engine = engine is None
        if own_engine:
            session = Penguin(graph, journal=journal, audit=audit)
            populate_hospital(session.engine, HospitalConfig(patients=4))
        else:
            session = Penguin(
                graph, engine=engine, install=False,
                journal=journal, audit=audit,
            )
        session.register_object(patient_chart_object(graph))
        return session

    def test_delete_where_is_one_journaled_audited_request(self):
        journal, audit = MemoryJournal(), MemoryAuditLog()
        session = self.build_session(journal=journal, audit=audit)
        matched = len(session.query("patient_chart", "birth_year > 0"))
        assert matched >= 2
        plan = session.delete_where("patient_chart", "birth_year > 0")
        assert plan.count("delete") >= matched
        entries = journal.entries()
        assert len(entries) == 1  # one write-ahead intent for the batch
        assert entries[0].status == COMMITTED
        records = audit.records()
        assert len(records) == 1  # one audit record for the view request
        assert records[0].op == "delete_where"
        assert records[0].items == matched
        assert session.query("patient_chart") == []

    def test_update_where_coalesces_per_instance_plans(self):
        audit = MemoryAuditLog()
        session = self.build_session(audit=audit)
        matched = len(session.query("patient_chart"))

        def rename(chart):
            chart["name"] = f"Batch {chart['patient_id']}"
            return chart

        plan = session.update_where("patient_chart", "birth_year > 0", rename)
        assert plan.count("replace") == matched
        records = audit.records()
        assert len(records) == 1
        assert records[0].op == "update_where"
        for instance in session.query("patient_chart"):
            assert instance.to_dict()["name"].startswith("Batch ")

    def test_crash_mid_delete_where_recovers_all_or_nothing(self):
        graph = hospital_schema()
        engine = MemoryEngine()
        graph.install(engine)
        populate_hospital(engine, HospitalConfig(patients=4))
        before = snapshot(engine)
        faulty = FaultInjectingEngine(
            engine, FaultPlan().crash_at("mutation", at=3)
        )
        session = Penguin(
            graph, engine=faulty, install=False, journal=MemoryJournal()
        )
        session.register_object(patient_chart_object(graph))
        with pytest.raises(SimulatedCrash):
            session.delete_where("patient_chart", "birth_year > 0")
        report = session.recover()
        assert report.clean
        # All-or-nothing: the torn flush was rolled back entirely.
        assert snapshot(engine) == before
        assert len(session.query("patient_chart")) == 4
