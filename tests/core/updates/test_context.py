"""Translation context: recorded mutations and helpers."""

import pytest

from repro.errors import UpdateRejectedError
from repro.core.updates.context import TranslationContext
from repro.core.updates.policy import TranslatorPolicy


@pytest.fixture
def ctx(omega, university_engine):
    return TranslationContext(omega, university_engine, TranslatorPolicy())


def any_course(engine):
    return next(iter(engine.scan("COURSES")))


class TestRecordedMutations:
    def test_insert_recorded(self, ctx, university_engine):
        ctx.insert(
            "DEPARTMENT", ("New Dept", None, None), reason="test"
        )
        assert ("DEPARTMENT", ("New Dept", None, None)) in ctx.inserted
        assert len(ctx.plan) == 1
        assert university_engine.get("DEPARTMENT", ("New Dept",)) is not None

    def test_delete_returns_old_and_records(self, ctx, university_engine):
        course = any_course(university_engine)
        old = ctx.delete("COURSES", (course[0],), reason="test")
        assert old == course
        assert ("COURSES", course) in ctx.deleted

    def test_delete_missing_rejected(self, ctx):
        with pytest.raises(UpdateRejectedError):
            ctx.delete("COURSES", ("GHOST",), reason="test")

    def test_replace_records_key_change(self, ctx, university_engine):
        course = any_course(university_engine)
        new = ("ZZZ1",) + course[1:]
        ctx.replace("COURSES", (course[0],), new, reason="test")
        assert ctx.key_changes == [("COURSES", (course[0],), ("ZZZ1",))]

    def test_nonkey_replace_no_key_change(self, ctx, university_engine):
        course = any_course(university_engine)
        new = course[:1] + ("New Title",) + course[2:]
        ctx.replace("COURSES", (course[0],), new, reason="test")
        assert ctx.key_changes == []
        assert ctx.replaced[0][0] == "COURSES"

    def test_replace_missing_rejected(self, ctx):
        with pytest.raises(UpdateRejectedError):
            ctx.replace("COURSES", ("GHOST",), ("GHOST", "t", 1, "g", "d", None), reason="r")


class TestHelpers:
    def test_complete_fills_nulls(self, ctx):
        values = ctx.complete(
            "COURSES",
            {
                "course_id": "X",
                "title": "t",
                "units": 1,
                "level": "g",
                "dept_name": "Physics",
            },
        )
        assert values == ("X", "t", 1, "g", "Physics", None)

    def test_merge_with_existing(self, ctx, university_engine):
        course = any_course(university_engine)
        merged = ctx.merge_with_existing(
            "COURSES", {"title": "Patched"}, course
        )
        assert merged[1] == "Patched"
        assert merged[5] == course[5]  # projected-out attr preserved

    def test_key_from_values(self, ctx):
        assert ctx.key_from_values("GRADES", {
            "course_id": "C", "student_id": 3, "grade": "A",
        }) == ("C", 3)

    def test_key_from_values_missing(self, ctx):
        with pytest.raises(UpdateRejectedError):
            ctx.key_from_values("GRADES", {"course_id": "C"})

    def test_projected_values_match(self, ctx, university_engine):
        course = any_course(university_engine)
        values = {
            "course_id": course[0],
            "title": course[1],
            "units": course[2],
            "level": course[3],
            "dept_name": course[4],
        }
        assert ctx.projected_values_match("COURSES", values, course)
        values["title"] = "other"
        assert not ctx.projected_values_match("COURSES", values, course)
