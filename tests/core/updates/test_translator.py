"""Translator wrapper: transactions, plans, backend independence."""

import copy

import pytest

from repro.errors import UpdateError, UpdateRejectedError
from repro.core.updates.policy import RelationPolicy, TranslatorPolicy
from repro.core.updates.translator import Translator
from repro.structural.integrity import IntegrityChecker
from repro.workloads.figures import course_info_object


def any_course(engine):
    return next(iter(engine.scan("COURSES")))[0]


class TestPlans:
    def test_plan_has_reasons(self, omega, university_engine):
        translator = Translator(omega)
        cid = any_course(university_engine)
        plan = translator.delete(university_engine, key=(cid,))
        assert len(plan.reasons) == len(plan.operations)
        assert any("VO-CD" in reason for reason in plan.reasons)

    def test_plan_relations_touched(self, omega, university_engine):
        translator = Translator(omega)
        cid = any_course(university_engine)
        plan = translator.delete(university_engine, key=(cid,))
        assert plan.relations_touched()[0] == "COURSES"


class TestTransactionBoundary:
    def test_no_dangling_transaction_after_success(
        self, omega, university_engine
    ):
        translator = Translator(omega)
        translator.delete(university_engine, key=(any_course(university_engine),))
        assert not university_engine.in_transaction

    def test_no_dangling_transaction_after_failure(
        self, omega, university_engine
    ):
        translator = Translator(omega)
        with pytest.raises(UpdateError):
            translator.delete(university_engine, key=("GHOST",))
        assert not university_engine.in_transaction


class TestInstantiateHelper:
    def test_instantiate(self, omega, university_engine):
        translator = Translator(omega)
        cid = any_course(university_engine)
        instance = translator.instantiate(university_engine, (cid,))
        assert instance.key == (cid,)

    def test_instantiate_missing(self, omega, university_engine):
        translator = Translator(omega)
        with pytest.raises(UpdateError, match="no instance"):
            translator.instantiate(university_engine, ("GHOST",))


class TestSqliteBackend:
    """The same translator drives the sqlite engine unchanged."""

    def test_delete_on_sqlite(self, omega, university_sqlite, university_graph):
        translator = Translator(omega, verify_integrity=True)
        cid = any_course(university_sqlite)
        translator.delete(university_sqlite, key=(cid,))
        assert university_sqlite.get("COURSES", (cid,)) is None
        assert IntegrityChecker(university_graph).is_consistent(
            university_sqlite
        )

    def test_replace_on_sqlite(self, omega, university_sqlite):
        translator = Translator(omega, verify_integrity=True)
        cid = any_course(university_sqlite)
        old = translator.instantiate(university_sqlite, (cid,))
        new = copy.deepcopy(old.to_dict())
        new["title"] = "Changed on sqlite"
        translator.replace(university_sqlite, old, new)
        assert university_sqlite.get("COURSES", (cid,))[1] == "Changed on sqlite"

    def test_rejection_rolls_back_on_sqlite(self, omega, university_sqlite):
        policy = TranslatorPolicy()
        policy.set_relation("DEPARTMENT", RelationPolicy(can_modify=False))
        translator = Translator(omega, policy=policy)
        cid = any_course(university_sqlite)
        old = translator.instantiate(university_sqlite, (cid,))
        new = copy.deepcopy(old.to_dict())
        new["dept_name"] = "No Such Dept"
        for dept in new.get("DEPARTMENT", []):
            dept["dept_name"] = "No Such Dept"
        with pytest.raises(UpdateRejectedError):
            translator.replace(university_sqlite, old, new)
        assert university_sqlite.get("COURSES", (cid,)) is not None
        assert university_sqlite.get("DEPARTMENT", ("No Such Dept",)) is None

    def test_identical_plans_across_backends(
        self, university_graph, university_engine, university_sqlite
    ):
        """The translation is engine-independent: same request, same
        operation sequence on both backends."""
        omega = course_info_object(university_graph)
        translator = Translator(omega)
        cid = any_course(university_engine)
        plan_memory = translator.delete(university_engine, key=(cid,))
        plan_sqlite = translator.delete(university_sqlite, key=(cid,))
        assert sorted(op.describe() for op in plan_memory) == sorted(
            op.describe() for op in plan_sqlite
        )
