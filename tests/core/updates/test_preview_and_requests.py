"""Previews (plan without side effects) and request-object dispatch."""

import copy

import pytest

from repro.core.instance import build_instance
from repro.core.updates.operations import (
    CompleteDeletion,
    CompleteInsertion,
    PartialInsertion,
    PartialUpdate,
    Replacement,
)
from repro.core.updates.translator import Translator
from repro.errors import UpdateError


@pytest.fixture
def translator(omega):
    return Translator(omega)


def snapshot(engine, graph):
    return {name: sorted(engine.scan(name)) for name in graph.relation_names}


def any_course(engine):
    for values in engine.scan("COURSES"):
        if engine.find_by("GRADES", ("course_id",), (values[0],)):
            return values[0]
    raise AssertionError


class TestPreviews:
    def test_preview_delete_changes_nothing(
        self, translator, university_engine, university_graph
    ):
        before = snapshot(university_engine, university_graph)
        cid = any_course(university_engine)
        plan = translator.preview_delete(university_engine, key=(cid,))
        assert len(plan) >= 2
        assert snapshot(university_engine, university_graph) == before

    def test_preview_equals_applied_plan(self, translator, university_engine):
        cid = any_course(university_engine)
        previewed = translator.preview_delete(university_engine, key=(cid,))
        applied = translator.delete(university_engine, key=(cid,))
        # Rollback re-inserts rows in reverse, permuting scan order, so
        # compare the plans as operation multisets.
        assert sorted(op.describe() for op in previewed) == sorted(
            op.describe() for op in applied
        )

    def test_preview_insert(self, translator, university_engine, university_graph):
        before = snapshot(university_engine, university_graph)
        plan = translator.preview_insert(
            university_engine,
            {
                "course_id": "PREVIEW1",
                "title": "t",
                "units": 1,
                "level": "graduate",
                "dept_name": "Physics",
            },
        )
        assert plan.count("insert") == 1
        assert university_engine.get("COURSES", ("PREVIEW1",)) is None
        assert snapshot(university_engine, university_graph) == before

    def test_preview_replace(self, translator, university_engine):
        cid = any_course(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        new = copy.deepcopy(old.to_dict())
        new["title"] = "Previewed Title"
        plan = translator.preview_replace(university_engine, old, new)
        assert plan.count("replace") == 1
        assert university_engine.get("COURSES", (cid,))[1] != "Previewed Title"

    def test_preview_leaves_no_dangling_transaction(
        self, translator, university_engine
    ):
        cid = any_course(university_engine)
        translator.preview_delete(university_engine, key=(cid,))
        assert not university_engine.in_transaction


class TestRequestDispatch:
    def test_complete_insertion_request(self, translator, omega, university_engine):
        instance = build_instance(
            omega,
            {
                "course_id": "REQ1",
                "title": "t",
                "units": 1,
                "level": "graduate",
                "dept_name": "Physics",
            },
        )
        plan = translator.apply(university_engine, CompleteInsertion(instance))
        assert university_engine.get("COURSES", ("REQ1",)) is not None
        assert plan.count("insert") >= 1

    def test_complete_deletion_request(self, translator, university_engine):
        cid = any_course(university_engine)
        instance = translator.instantiate(university_engine, (cid,))
        translator.apply(university_engine, CompleteDeletion(instance))
        assert university_engine.get("COURSES", (cid,)) is None

    def test_replacement_request(self, translator, university_engine):
        cid = any_course(university_engine)
        old = translator.instantiate(university_engine, (cid,))
        new_instance = build_instance(
            old.view_object,
            {**copy.deepcopy(old.to_dict()), "title": "Via Request"},
        )
        translator.apply(university_engine, Replacement(old, new_instance))
        assert university_engine.get("COURSES", (cid,))[1] == "Via Request"

    def test_partial_requests(self, translator, university_engine):
        cid = any_course(university_engine)
        instance = translator.instantiate(university_engine, (cid,))
        student = next(
            s
            for s in university_engine.scan("STUDENT")
            if university_engine.get("GRADES", (cid, s[0])) is None
        )
        translator.apply(
            university_engine,
            PartialInsertion(
                instance,
                "GRADES",
                {"course_id": cid, "student_id": student[0], "grade": "C"},
            ),
        )
        assert university_engine.get("GRADES", (cid, student[0])) is not None
        translator.apply(
            university_engine,
            PartialUpdate(
                instance,
                "GRADES",
                {"course_id": cid, "student_id": student[0], "grade": "C"},
                {"course_id": cid, "student_id": student[0], "grade": "B"},
            ),
        )
        assert (
            university_engine.get("GRADES", (cid, student[0]))[2] == "B"
        )

    def test_unknown_request(self, translator, university_engine):
        with pytest.raises(UpdateError):
            translator.apply(university_engine, object())

    def test_request_reprs(self, translator, omega, university_engine):
        cid = any_course(university_engine)
        instance = translator.instantiate(university_engine, (cid,))
        assert cid in repr(CompleteInsertion(instance))
        assert cid in repr(CompleteDeletion(instance))
        assert "GRADES" in repr(
            PartialInsertion(instance, "GRADES", {})
        )
