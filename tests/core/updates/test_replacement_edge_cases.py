"""Remaining VO-R branches: vanished outside rows, removed outside
components, and facade bulk wrappers."""

import copy


from repro.core.updates.translator import Translator


def course_with_all(engine):
    for values in engine.scan("COURSES"):
        if engine.find_by("GRADES", ("course_id",), (values[0],)):
            return values[0]
    raise AssertionError


def _vanish_student(engine, old):
    grade = old.tuples_at("GRADES")[0]
    sid = grade.child_tuples("STUDENT")[0]["person_id"]
    engine.delete("STUDENT", (sid,))
    return sid


def test_identical_pair_with_vanished_row_is_noop(omega, university_engine):
    """CASE I-1 with identical projections does nothing — even when the
    base row vanished, per R-1 ('the projections match exactly')."""
    translator = Translator(omega)
    cid = course_with_all(university_engine)
    old = translator.instantiate(university_engine, (cid,))
    sid = _vanish_student(university_engine, old)
    new = copy.deepcopy(old.to_dict())
    new["title"] = "Changed"
    plan = translator.replace(university_engine, old, new)
    assert university_engine.get("STUDENT", (sid,)) is None
    assert all(op.relation != "STUDENT" for op in plan)


def test_changed_pair_with_vanished_row_is_reinserted(
    omega, university_engine
):
    """CASE I-1 whose database row disappeared *and* whose values
    changed falls through to the insertion path."""
    translator = Translator(omega)
    cid = course_with_all(university_engine)
    old = translator.instantiate(university_engine, (cid,))
    sid = _vanish_student(university_engine, old)
    new = copy.deepcopy(old.to_dict())
    for grade in new["GRADES"]:
        for student in grade["STUDENT"]:
            if student["person_id"] == sid:
                student["year"] = 9
    plan = translator.replace(university_engine, old, new)
    revived = university_engine.get("STUDENT", (sid,))
    assert revived is not None and revived[2] == 9
    inserted = {op.relation for op in plan if op.kind == "insert"}
    assert "STUDENT" in inserted


def test_removed_outside_component_is_noop(omega, university_engine):
    """Dropping an outside component from the new instance leaves the
    base tuple alone — only island removals delete."""
    translator = Translator(omega)
    cid = course_with_all(university_engine)
    old = translator.instantiate(university_engine, (cid,))
    dept = old.root.values["dept_name"]
    new = copy.deepcopy(old.to_dict())
    new["DEPARTMENT"] = []
    plan = translator.replace(university_engine, old, new)
    assert university_engine.get("DEPARTMENT", (dept,)) is not None
    assert all(op.relation != "DEPARTMENT" for op in plan)


def test_penguin_bulk_wrappers(university_graph):
    from repro.penguin import Penguin
    from repro.workloads.figures import course_info_object
    from repro.workloads.university import populate_university, university_schema

    penguin = Penguin(university_schema())
    populate_university(penguin.engine)
    penguin.register_object(course_info_object(penguin.graph))

    def rename(data):
        data = dict(data)
        data["title"] = "BULK " + data["title"]
        return data

    plan = penguin.update_where("course_info", "level = 'graduate'", rename)
    assert plan.count("replace") > 0
    for values in penguin.engine.scan("COURSES"):
        if values[3] == "graduate":
            assert values[1].startswith("BULK ")

    plan = penguin.delete_where("course_info", "level = 'graduate'")
    assert plan.count("delete") > 0
    assert all(
        values[3] != "graduate" for values in penguin.engine.scan("COURSES")
    )
    assert penguin.is_consistent()
