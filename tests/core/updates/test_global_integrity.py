"""Step 4: global integrity maintenance primitives."""

import pytest

from repro.errors import UpdateRejectedError
from repro.core.updates import global_integrity
from repro.core.updates.context import TranslationContext
from repro.core.updates.policy import (
    ReferenceRepair,
    RelationPolicy,
    TranslatorPolicy,
)
from repro.structural.integrity import IntegrityChecker


@pytest.fixture
def ctx(omega, university_engine):
    return TranslationContext(omega, university_engine, TranslatorPolicy())


def course_with_grades(engine):
    for values in engine.scan("COURSES"):
        if engine.find_by("GRADES", ("course_id",), (values[0],)):
            return values
    pytest.skip("no course with grades")


class TestDeletionMaintenance:
    def test_cascade_to_owned(self, ctx, university_engine):
        course = course_with_grades(university_engine)
        ctx.delete("COURSES", (course[0],), reason="seed")
        global_integrity.maintain_after_deletions(ctx)
        assert (
            university_engine.find_by("GRADES", ("course_id",), (course[0],))
            == []
        )

    def test_cascade_is_transitive(
        self, chart, hospital_engine, hospital_graph
    ):
        ctx = TranslationContext(
            chart, hospital_engine, TranslatorPolicy()
        )
        ctx.delete("PATIENT", (101,), reason="seed")
        global_integrity.maintain_after_deletions(ctx)
        assert hospital_engine.find_by("VISIT", ("patient_id",), (101,)) == []
        assert (
            hospital_engine.find_by("DIAGNOSIS", ("patient_id",), (101,))
            == []
        )
        assert IntegrityChecker(hospital_graph).is_consistent(hospital_engine)

    def test_subset_cascade(self, bom, cad_engine):
        ctx = TranslationContext(bom, cad_engine, TranslatorPolicy())
        released = next(iter(cad_engine.scan("RELEASED_ASSEMBLY")))[0]
        ctx.delete("ASSEMBLY", (released,), reason="seed")
        global_integrity.maintain_after_deletions(ctx)
        assert cad_engine.get("RELEASED_ASSEMBLY", (released,)) is None

    def test_reference_repair_auto_deletes_key_fk(self, ctx, university_engine):
        course = course_with_grades(university_engine)
        university_engine.insert(
            "CURRICULUM",
            {"degree": "TESTDEG", "course_id": course[0], "category": "x"},
        )
        ctx.delete("COURSES", (course[0],), reason="seed")
        global_integrity.maintain_after_deletions(ctx)
        assert (
            university_engine.find_by(
                "CURRICULUM", ("course_id",), (course[0],)
            )
            == []
        )

    def test_reference_repair_auto_nullifies_nullable(
        self, university_graph, university_engine
    ):
        from repro.core.view_object import define_view_object

        faculty_object = define_view_object(
            university_graph,
            "fac",
            "FACULTY",
            selections={"FACULTY": ("person_id", "rank")},
        )
        ctx = TranslationContext(
            faculty_object, university_engine, TranslatorPolicy()
        )
        course = next(
            v for v in university_engine.scan("COURSES") if v[5] is not None
        )
        ctx.delete("FACULTY", (course[5],), reason="seed")
        global_integrity.maintain_after_deletions(ctx)
        assert university_engine.get("COURSES", (course[0],))[5] is None

    def test_prohibit_raises(self, omega, university_engine):
        policy = TranslatorPolicy()
        policy.set_relation(
            "CURRICULUM",
            RelationPolicy(on_reference_delete=ReferenceRepair.PROHIBIT),
        )
        ctx = TranslationContext(omega, university_engine, policy)
        course = course_with_grades(university_engine)
        university_engine.insert(
            "CURRICULUM",
            {"degree": "TESTDEG", "course_id": course[0], "category": "x"},
        )
        ctx.delete("COURSES", (course[0],), reason="seed")
        with pytest.raises(UpdateRejectedError):
            global_integrity.maintain_after_deletions(ctx)


def lenient_completer(relation, schema, partial):
    """Fabricate defaults for skeleton tuples in these tests."""
    completed = dict(partial)
    for attribute in schema.attributes:
        if attribute.name in completed:
            continue
        if attribute.nullable:
            completed[attribute.name] = None
        elif attribute.domain.name == "text":
            completed[attribute.name] = "?"
        else:
            completed[attribute.name] = 0
    return completed


@pytest.fixture
def lenient_ctx(omega, university_engine):
    return TranslationContext(
        omega,
        university_engine,
        TranslatorPolicy(completer=lenient_completer),
    )


class TestInsertionMaintenance:
    def test_missing_owner_inserted(self, lenient_ctx, university_engine):
        lenient_ctx.insert("GRADES", ("NEWC1", 1001, "A"), reason="seed")
        # 1001 is not a student in the generated data; NEWC1 not a course.
        global_integrity.maintain_after_insertions(lenient_ctx)
        assert university_engine.get("COURSES", ("NEWC1",)) is not None
        assert university_engine.get("STUDENT", (1001,)) is not None

    def test_recursion_to_people(self, lenient_ctx, university_engine):
        lenient_ctx.insert("GRADES", ("NEWC2", 777777, "A"), reason="seed")
        global_integrity.maintain_after_insertions(lenient_ctx)
        assert university_engine.get("PEOPLE", (777777,)) is not None

    def test_default_completer_rejects_unskeletonizable(
        self, ctx, university_engine
    ):
        """With the default null completer, fabricating a COURSES owner
        is impossible (title is non-nullable) and must be rejected."""
        ctx.insert("GRADES", ("NEWC9", 1001, "A"), reason="seed")
        with pytest.raises(UpdateRejectedError, match="title"):
            global_integrity.maintain_after_insertions(ctx)

    def test_missing_reference_inserted(self, ctx, university_engine):
        ctx.insert(
            "COURSES",
            ("NEWC3", "t", 1, "graduate", "Mystery Dept", None),
            reason="seed",
        )
        global_integrity.maintain_after_insertions(ctx)
        assert university_engine.get("DEPARTMENT", ("Mystery Dept",)) is not None

    def test_null_reference_needs_nothing(self, ctx, university_engine):
        before = university_engine.count("FACULTY")
        ctx.insert(
            "COURSES",
            ("NEWC4", "t", 1, "graduate", "Physics", None),
            reason="seed",
        )
        global_integrity.maintain_after_insertions(ctx)
        assert university_engine.count("FACULTY") == before

    def test_replacement_with_changed_fk_checked(self, ctx, university_engine):
        course = next(iter(university_engine.scan("COURSES")))
        new_values = course[:4] + ("Phantom Dept",) + course[5:]
        ctx.replace("COURSES", (course[0],), new_values, reason="seed")
        global_integrity.maintain_after_insertions(ctx)
        assert university_engine.get("DEPARTMENT", ("Phantom Dept",)) is not None


class TestKeyChangeMaintenance:
    def test_references_retargeted(self, ctx, university_engine):
        course = course_with_grades(university_engine)
        refs = university_engine.find_by(
            "CURRICULUM", ("course_id",), (course[0],)
        )
        new_values = ("RENAMED",) + course[1:]
        ctx.replace("COURSES", (course[0],), new_values, reason="seed")
        global_integrity.maintain_after_key_changes(ctx)
        assert (
            len(
                university_engine.find_by(
                    "CURRICULUM", ("course_id",), ("RENAMED",)
                )
            )
            == len(refs)
        )

    def test_owned_tuples_follow_key(self, ctx, university_engine):
        course = course_with_grades(university_engine)
        grades = university_engine.find_by(
            "GRADES", ("course_id",), (course[0],)
        )
        ctx.replace(
            "COURSES", (course[0],), ("RENAMED2",) + course[1:], reason="seed"
        )
        global_integrity.maintain_after_key_changes(ctx)
        assert len(
            university_engine.find_by("GRADES", ("course_id",), ("RENAMED2",))
        ) == len(grades)

    def test_retarget_blocked_by_policy(self, omega, university_engine):
        policy = TranslatorPolicy()
        policy.set_relation("CURRICULUM", RelationPolicy(can_modify=False))
        ctx = TranslationContext(omega, university_engine, policy)
        course = course_with_grades(university_engine)
        if not university_engine.find_by(
            "CURRICULUM", ("course_id",), (course[0],)
        ):
            university_engine.insert(
                "CURRICULUM",
                {"degree": "D", "course_id": course[0], "category": "x"},
            )
        ctx.replace(
            "COURSES", (course[0],), ("RENAMED3",) + course[1:], reason="seed"
        )
        with pytest.raises(UpdateRejectedError):
            global_integrity.maintain_after_key_changes(ctx)

    def test_chained_key_propagation(self, chart, hospital_engine):
        """Re-keying a patient propagates through VISIT to DIAGNOSIS,
        PRESCRIPTION, and LAB_RESULT (the work list runs to fixpoint)."""
        ctx = TranslationContext(chart, hospital_engine, TranslatorPolicy())
        patient = hospital_engine.get("PATIENT", (100,))
        ctx.replace("PATIENT", (100,), (55555,) + patient[1:], reason="seed")
        global_integrity.maintain_after_key_changes(ctx)
        assert hospital_engine.find_by("VISIT", ("patient_id",), (100,)) == []
        assert hospital_engine.find_by(
            "DIAGNOSIS", ("patient_id",), (100,)
        ) == []
        assert len(
            hospital_engine.find_by("VISIT", ("patient_id",), (55555,))
        ) == 3
