"""Stale-instance handling: the database moved under the application.

Instances are snapshots; by the time an update request arrives the base
data may have changed. These tests pin down the defined behaviours:
stale island tuples in deletions are skipped (the cascade would have
removed them), missing pivots are hard errors, and VO-R copes with
referenced tuples that vanished.
"""

import copy

import pytest

from repro.core.updates.translator import Translator
from repro.errors import UpdateRejectedError
from repro.structural.integrity import IntegrityChecker


@pytest.fixture
def translator(omega):
    return Translator(omega, verify_integrity=True)


def course_with_grades(engine):
    for values in engine.scan("COURSES"):
        if engine.find_by("GRADES", ("course_id",), (values[0],)):
            return values[0]
    raise AssertionError


def test_deletion_with_already_deleted_grade(translator, university_engine):
    cid = course_with_grades(university_engine)
    instance = translator.instantiate(university_engine, (cid,))
    # Someone else removes one grade between instantiation and deletion.
    grade = university_engine.find_by("GRADES", ("course_id",), (cid,))[0]
    university_engine.delete("GRADES", (grade[0], grade[1]))
    translator.delete(university_engine, instance)
    assert university_engine.get("COURSES", (cid,)) is None


def test_deletion_of_vanished_pivot_rejected(translator, university_engine):
    cid = course_with_grades(university_engine)
    instance = translator.instantiate(university_engine, (cid,))
    university_engine.delete("COURSES", (cid,))
    # Clean up dependents so verify_integrity doesn't trip on setup.
    for grade in university_engine.find_by("GRADES", ("course_id",), (cid,)):
        university_engine.delete("GRADES", (grade[0], grade[1]))
    for entry in university_engine.find_by(
        "CURRICULUM", ("course_id",), (cid,)
    ):
        university_engine.delete("CURRICULUM", (entry[0], entry[1]))
    with pytest.raises(UpdateRejectedError, match="does not exist"):
        translator.delete(university_engine, instance)


def test_replacement_of_vanished_island_tuple_rejected(
    translator, university_engine, university_graph
):
    cid = course_with_grades(university_engine)
    old = translator.instantiate(university_engine, (cid,))
    grade = university_engine.find_by("GRADES", ("course_id",), (cid,))[0]
    university_engine.delete("GRADES", (grade[0], grade[1]))
    new = copy.deepcopy(old.to_dict())
    for entry in new["GRADES"]:
        entry["grade"] = "A+"
    with pytest.raises(UpdateRejectedError, match="no longer exists"):
        translator.replace(university_engine, old, new)
    # All-or-nothing: the grades that were still present are untouched.
    remaining = university_engine.find_by("GRADES", ("course_id",), (cid,))
    assert all(values[2] != "A+" for values in remaining)


def _orphan_department(engine, cid, dept):
    """Remove ``dept`` from the database, leaving only ``cid`` pointing
    at it — a pre-existing inconsistency the translator did not cause."""
    for values in list(engine.scan("COURSES")):
        if values[4] == dept and values[0] != cid:
            engine.replace(
                "COURSES", (values[0],), values[:4] + ("Physics",) + values[5:]
            )
    for values in list(engine.scan("PEOPLE")):
        if values[2] == dept:
            engine.replace(
                "PEOPLE", (values[0],), values[:2] + (None,) + values[3:]
            )
    engine.delete("DEPARTMENT", (dept,))


def test_preexisting_corruption_surfaces_in_verify_mode(
    omega, university_engine
):
    """A dangling reference the translator did not create is *detected*
    (verify mode), not silently repaired: an unchanged-FK replacement
    performs no dependency checks (per VO-CI's "if some referencing
    attributes are involved in the replacement")."""
    from repro.errors import GlobalValidationError

    translator = Translator(omega, verify_integrity=True)
    cid = next(
        v[0]
        for v in university_engine.scan("COURSES")
        if v[4] != "Physics"
    )
    old = translator.instantiate(university_engine, (cid,))
    _orphan_department(university_engine, cid, old.root.values["dept_name"])
    new = copy.deepcopy(old.to_dict())
    new["title"] = "Survivor"
    new["DEPARTMENT"] = []
    with pytest.raises(GlobalValidationError, match="missing DEPARTMENT"):
        translator.replace(university_engine, old, new)
    # Rolled back: the title change did not land.
    assert university_engine.get("COURSES", (cid,))[1] == old.root.values["title"]


def test_changed_reference_to_vanished_tuple_reinserts(
    omega, university_engine, university_graph
):
    """When the replacement *does* change the reference, the missing
    referenced tuple is inserted (skeleton), restoring consistency."""
    translator = Translator(omega, verify_integrity=True)
    cid = next(
        v[0]
        for v in university_engine.scan("COURSES")
        if v[4] != "Physics"
    )
    old = translator.instantiate(university_engine, (cid,))
    dept = old.root.values["dept_name"]
    _orphan_department(university_engine, cid, dept)
    # Re-point the course at a *new* never-seen department: the FK is
    # involved in the replacement, so dependencies are ensured.
    new = copy.deepcopy(old.to_dict())
    new["dept_name"] = "Rebuilt Department"
    new["DEPARTMENT"] = []
    translator.replace(university_engine, old, new)
    assert university_engine.get("DEPARTMENT", ("Rebuilt Department",)) is not None
    assert IntegrityChecker(university_graph).is_consistent(university_engine)
