"""Projection value objects."""

import pytest

from repro.errors import ProjectionError
from repro.core.projection import Projection
from repro.workloads.university import university_schema


@pytest.fixture
def courses_schema():
    return university_schema().relation("COURSES")


def test_attributes_preserved_in_order():
    projection = Projection("COURSES", ("course_id", "title"))
    assert projection.attributes == ("course_id", "title")


def test_empty_projection_rejected():
    with pytest.raises(ProjectionError):
        Projection("COURSES", ())


def test_duplicate_attribute_rejected():
    with pytest.raises(ProjectionError):
        Projection("COURSES", ("course_id", "course_id"))


def test_validate_against(courses_schema):
    Projection("COURSES", ("course_id",)).validate_against(courses_schema)
    with pytest.raises(ProjectionError):
        Projection("COURSES", ("bogus",)).validate_against(courses_schema)


def test_validate_against_wrong_relation(courses_schema):
    with pytest.raises(ProjectionError):
        Projection("GRADES", ("course_id",)).validate_against(courses_schema)


def test_includes_key_of(courses_schema):
    assert Projection("COURSES", ("course_id", "title")).includes_key_of(
        courses_schema
    )
    assert not Projection("COURSES", ("title",)).includes_key_of(
        courses_schema
    )


def test_covers():
    projection = Projection("COURSES", ("course_id", "title", "units"))
    assert projection.covers(("title",))
    assert not projection.covers(("dept_name",))


def test_equality_and_hash():
    a = Projection("COURSES", ("course_id",))
    b = Projection("COURSES", ("course_id",))
    assert a == b and hash(a) == hash(b)
    assert a != Projection("COURSES", ("title",))
