"""Update semantics through composite-path objects (ω′ of Figure 3).

When an object elides an intermediate relation (GRADES in ω′), the
linkage between the pivot and a path-connected component lives in the
database, not in the instance. These tests pin down the resulting
semantics:

* the dependency island of ω′ is just the pivot — deleting an instance
  removes the course (and, via global integrity, its grades), never the
  students;
* inserted STUDENT components become base tuples, but no GRADES linkage
  is invented (the object cannot express one) — documented behaviour;
* replacements of pivot attributes work exactly as on single-hop
  objects.
"""

import copy

import pytest

from repro.core.instantiation import Instantiator
from repro.core.updates.translator import Translator
from repro.structural.integrity import IntegrityChecker


@pytest.fixture
def translator(omega_prime):
    return Translator(omega_prime, verify_integrity=True)


def course_with_students(engine):
    for values in engine.scan("COURSES"):
        if engine.find_by("GRADES", ("course_id",), (values[0],)):
            return values[0]
    raise AssertionError


class TestDeletion:
    def test_delete_removes_course_and_grades(
        self, translator, university_engine
    ):
        cid = course_with_students(university_engine)
        translator.delete(university_engine, key=(cid,))
        assert university_engine.get("COURSES", (cid,)) is None
        # GRADES go via the global ownership cascade even though GRADES
        # is not part of ω'.
        assert (
            university_engine.find_by("GRADES", ("course_id",), (cid,)) == []
        )

    def test_students_survive(self, translator, university_engine):
        cid = course_with_students(university_engine)
        students = {
            v[1]
            for v in university_engine.find_by(
                "GRADES", ("course_id",), (cid,)
            )
        }
        translator.delete(university_engine, key=(cid,))
        for sid in students:
            assert university_engine.get("STUDENT", (sid,)) is not None


class TestInsertion:
    def test_insert_does_not_invent_linkage(
        self, omega_prime, university_engine, university_graph
    ):
        """ω' cannot express the GRADES linkage: inserting an instance
        with STUDENT components creates/verifies the student tuples but
        no enrollment rows."""
        from repro.core.updates.policy import TranslatorPolicy

        def completer(relation, schema, partial):
            completed = dict(partial)
            if relation == "COURSES":
                completed.setdefault("dept_name", "Physics")
            for attribute in schema.attributes:
                completed.setdefault(
                    attribute.name, None if attribute.nullable else "?"
                )
            return completed

        translator = Translator(
            omega_prime,
            policy=TranslatorPolicy(completer=completer),
            verify_integrity=True,
        )
        student = next(iter(university_engine.scan("STUDENT")))
        translator.insert(
            university_engine,
            {
                "course_id": "OP1",
                "title": "t",
                "units": 1,
                "level": "graduate",
                "instructor_id": None,
                "FACULTY": [],
                "STUDENT": [
                    {
                        "person_id": student[0],
                        "degree_program": student[1],
                        "year": student[2],
                    }
                ],
            },
        )
        assert university_engine.get("COURSES", ("OP1",)) is not None
        assert (
            university_engine.find_by("GRADES", ("course_id",), ("OP1",))
            == []
        )
        # Re-instantiating therefore shows no students: the instance
        # does not round-trip through a composite path. Documented.
        instance = Instantiator(translator.view_object).by_key(
            university_engine, ("OP1",)
        )
        assert instance.count_at("STUDENT") == 0
        assert IntegrityChecker(university_graph).is_consistent(
            university_engine
        )


class TestReplacement:
    def test_pivot_replacement_works(self, translator, university_engine):
        cid = course_with_students(university_engine)
        old = Instantiator(translator.view_object).by_key(
            university_engine, (cid,)
        )
        new = copy.deepcopy(old.to_dict())
        new["title"] = "Through Omega Prime"
        translator.replace(university_engine, old, new)
        assert (
            university_engine.get("COURSES", (cid,))[1]
            == "Through Omega Prime"
        )

    def test_instructor_retarget(self, translator, university_engine):
        cid = course_with_students(university_engine)
        old = Instantiator(translator.view_object).by_key(
            university_engine, (cid,)
        )
        other_faculty = next(
            f[0]
            for f in university_engine.scan("FACULTY")
            if f[0] != old.root.values.get("instructor_id")
        )
        values = university_engine.get("FACULTY", (other_faculty,))
        new = copy.deepcopy(old.to_dict())
        new["instructor_id"] = other_faculty
        new["FACULTY"] = [
            {"person_id": values[0], "rank": values[1], "office": values[2]}
        ]
        translator.replace(university_engine, old, new)
        assert university_engine.get("COURSES", (cid,))[5] == other_faculty

    def test_rekey_propagates_to_elided_grades(
        self, translator, university_engine
    ):
        """A pivot key change cascades through the *database* GRADES
        rows even though GRADES is invisible to ω'."""
        cid = course_with_students(university_engine)
        n_grades = len(
            university_engine.find_by("GRADES", ("course_id",), (cid,))
        )
        old = Instantiator(translator.view_object).by_key(
            university_engine, (cid,)
        )
        new = copy.deepcopy(old.to_dict())
        new["course_id"] = "OPKEY"
        translator.replace(university_engine, old, new)
        migrated = university_engine.find_by(
            "GRADES", ("course_id",), ("OPKEY",)
        )
        assert len(migrated) == n_grades


def test_mn_relationship_representation(university_graph):
    """"m:n relationships are not modeled directly in the structural
    model but can be represented using combinations of connections" —
    COURSES m:n STUDENT is exactly the two ownerships into GRADES."""
    from repro.structural.connections import ConnectionKind

    owners = {
        c.source
        for c in university_graph.connections_to(
            "GRADES", ConnectionKind.OWNERSHIP
        )
    }
    assert owners == {"COURSES", "STUDENT"}
    # and ω' exposes the m:n pair through the composite path.
    from repro.workloads.figures import alternate_course_object

    omega_prime = alternate_course_object(university_graph)
    path = omega_prime.tree.node("STUDENT").path
    assert [t.connection.name for t in path] == [
        "courses_grades",
        "student_grades",
    ]
