"""Figure 4: the paper's instantiation example.

"An application's request to retrieve graduate courses with less than 5
students having enrolled produces one instance of ω."
"""

import pytest

from repro.core.query import execute_query


@pytest.fixture
def results(omega, university_engine):
    return execute_query(
        omega,
        university_engine,
        "level = 'graduate' and count(STUDENT) < 5",
    )


def test_at_least_one_instance(results):
    assert len(results) >= 1


def test_all_results_graduate(results):
    assert all(i.root.values["level"] == "graduate" for i in results)


def test_all_results_under_five_students(results):
    assert all(i.count_at("STUDENT") < 5 for i in results)


def test_instance_is_hierarchical(results):
    instance = results[0]
    # Atomic-valued attributes at the pivot...
    assert isinstance(instance.root.values["title"], str)
    # ...set-valued components below it...
    assert isinstance(instance.tuples_at("GRADES"), list)
    # ...and tuple-valued nesting (each grade carries its student).
    for grade in instance.tuples_at("GRADES"):
        assert len(grade.child_tuples("STUDENT")) == 1


def test_result_matches_manual_filter(omega, university_engine, results):
    from repro.core.instantiation import Instantiator
    from repro.relational.expressions import attr

    manual = [
        i
        for i in Instantiator(omega).where(
            university_engine, attr("level") == "graduate"
        )
        if i.count_at("STUDENT") < 5
    ]
    assert {i.key for i in manual} == {i.key for i in results}


def test_paper_rendering(results):
    text = results[0].describe()
    assert text.startswith("(COURSES:")
