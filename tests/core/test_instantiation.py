"""Instance assembly from base data (Figure 4 machinery)."""

import pytest

from repro.core.instantiation import Instantiator
from repro.relational.expressions import TRUE, attr


@pytest.fixture
def instantiator(omega):
    return Instantiator(omega)


class TestByKey:
    def test_existing_key(self, instantiator, university_engine):
        course_id = next(iter(university_engine.scan("COURSES")))[0]
        instance = instantiator.by_key(university_engine, (course_id,))
        assert instance is not None
        assert instance.key == (course_id,)

    def test_missing_key(self, instantiator, university_engine):
        assert instantiator.by_key(university_engine, ("NOPE",)) is None

    def test_components_match_database(self, instantiator, university_engine):
        course_id = next(iter(university_engine.scan("COURSES")))[0]
        instance = instantiator.by_key(university_engine, (course_id,))
        expected_grades = university_engine.find_by(
            "GRADES", ("course_id",), (course_id,)
        )
        assert instance.count_at("GRADES") == len(expected_grades)
        bound = {
            (g["course_id"], g["student_id"])
            for g in instance.tuples_at("GRADES")
        }
        assert bound == {(v[0], v[1]) for v in expected_grades}

    def test_students_nested_under_their_grades(
        self, instantiator, university_engine
    ):
        course_id = next(iter(university_engine.scan("COURSES")))[0]
        instance = instantiator.by_key(university_engine, (course_id,))
        for grade in instance.tuples_at("GRADES"):
            students = grade.child_tuples("STUDENT")
            assert len(students) == 1
            assert students[0]["person_id"] == grade["student_id"]

    def test_projection_applied(self, instantiator, university_engine):
        course_id = next(iter(university_engine.scan("COURSES")))[0]
        instance = instantiator.by_key(university_engine, (course_id,))
        assert set(instance.root.values) == {
            "course_id", "title", "units", "level", "dept_name",
        }


class TestWhere:
    def test_predicate_filters(self, instantiator, university_engine):
        graduate = instantiator.where(
            university_engine, attr("level") == "graduate"
        )
        assert graduate
        assert all(
            i.root.values["level"] == "graduate" for i in graduate
        )

    def test_all(self, instantiator, university_engine):
        everything = instantiator.all(university_engine)
        assert len(everything) == university_engine.count("COURSES")


class TestCompositePaths:
    def test_omega_prime_students_via_grades(
        self, omega_prime, university_engine
    ):
        instantiator = Instantiator(omega_prime)
        instance = instantiator.where(university_engine, TRUE)[0]
        course_id = instance.key[0]
        expected_students = {
            v[1]
            for v in university_engine.find_by(
                "GRADES", ("course_id",), (course_id,)
            )
        }
        bound = {s["person_id"] for s in instance.tuples_at("STUDENT")}
        assert bound == expected_students

    def test_composite_path_deduplicates(self, omega_prime, university_engine):
        instantiator = Instantiator(omega_prime)
        for instance in instantiator.all(university_engine):
            students = [s["person_id"] for s in instance.tuples_at("STUDENT")]
            assert len(students) == len(set(students))

    def test_nullable_reference_binds_empty(
        self, omega_prime, university_engine
    ):
        university_engine.insert(
            "COURSES",
            {
                "course_id": "X1",
                "title": "t",
                "units": 1,
                "level": "graduate",
                "dept_name": "Physics",
                "instructor_id": None,
            },
        )
        instantiator = Instantiator(omega_prime)
        instance = instantiator.by_key(university_engine, ("X1",))
        assert instance.count_at("FACULTY") == 0


class TestHospitalDepth:
    def test_three_level_chart(self, chart, hospital_engine):
        instantiator = Instantiator(chart)
        instance = instantiator.by_key(hospital_engine, (100,))
        assert instance.count_at("VISIT") == 3
        total_diagnoses = hospital_engine.count("DIAGNOSIS")
        assert instance.count_at("DIAGNOSIS") <= total_diagnoses
        for visit in instance.tuples_at("VISIT"):
            for diagnosis in visit.child_tuples("DIAGNOSIS"):
                assert diagnosis["visit_no"] == visit["visit_no"]
                assert diagnosis["patient_id"] == 100
