"""Projection-tree structure and traversal orders."""

import pytest

from repro.errors import ViewObjectError
from repro.core.projection_tree import ProjectionTree
from repro.structural.connections import Connection, ConnectionKind, Traversal
from repro.structural.paths import ConnectionPath


def edge(source, target, kind=ConnectionKind.OWNERSHIP, name=None):
    connection = Connection(
        name or f"{source}_{target}", kind, source, target, ["k"], ["k"]
    )
    return ConnectionPath([Traversal(connection, forward=True)])


@pytest.fixture
def tree():
    tree = ProjectionTree("A")
    tree.add_child("A", "B", edge("A", "B"))
    tree.add_child("A", "C", edge("A", "C"))
    tree.add_child("B", "D", edge("B", "D"))
    return tree


def test_root(tree):
    assert tree.root.relation == "A"
    assert tree.root.is_root


def test_children_order(tree):
    assert [c.relation for c in tree.children("A")] == ["B", "C"]


def test_parent(tree):
    assert tree.parent("D").node_id == "B"
    assert tree.parent("A") is None


def test_depth(tree):
    assert tree.depth("A") == 0
    assert tree.depth("D") == 2


def test_path_to_root(tree):
    assert [n.node_id for n in tree.path_to_root("D")] == ["D", "B", "A"]


def test_dfs_order(tree):
    assert [n.node_id for n in tree.dfs()] == ["A", "B", "D", "C"]


def test_bfs_order(tree):
    assert [n.node_id for n in tree.bfs()] == ["A", "B", "C", "D"]


def test_leaves(tree):
    assert {n.node_id for n in tree.leaves()} == {"D", "C"}


def test_copies_get_suffixed_ids(tree):
    node = tree.add_child("C", "B", edge("C", "B", name="second"))
    assert node.node_id == "B#2"
    assert len(tree.nodes_for_relation("B")) == 2


def test_relations_distinct(tree):
    tree.add_child("C", "B", edge("C", "B", name="second"))
    assert tree.relations() == ("A", "B", "C", "D")


def test_edge_must_match_parent_relation(tree):
    with pytest.raises(ViewObjectError):
        tree.add_child("A", "X", edge("B", "X"))


def test_edge_must_match_child_relation(tree):
    with pytest.raises(ViewObjectError):
        tree.add_child("A", "X", edge("A", "Y"))


def test_duplicate_node_id_rejected(tree):
    with pytest.raises(ViewObjectError):
        tree.add_child("A", "B", edge("A", "B", name="again"), node_id="B")


def test_unknown_node(tree):
    with pytest.raises(ViewObjectError):
        tree.node("Z")


def test_describe_contains_arrows(tree):
    assert "--*" in tree.describe()
