"""Dependency islands and peninsulas (the Section 5 example)."""


from repro.core.dependency_island import NodeRole, analyze_island


class TestPaperExample:
    """For ω (Figure 2c): D_ω = {COURSES, GRADES}; peninsula = {CURRICULUM}."""

    def test_island(self, omega):
        analysis = analyze_island(omega)
        assert analysis.island_nodes == ["COURSES", "GRADES"]

    def test_peninsula(self, omega):
        analysis = analyze_island(omega)
        assert analysis.peninsula_nodes == ["CURRICULUM"]

    def test_outside(self, omega):
        analysis = analyze_island(omega)
        assert set(analysis.outside_nodes) == {"DEPARTMENT", "STUDENT"}

    def test_island_relations(self, omega):
        analysis = analyze_island(omega)
        assert analysis.island_relations == ["COURSES", "GRADES"]

    def test_roles(self, omega):
        analysis = analyze_island(omega)
        assert analysis.role("COURSES") is NodeRole.ISLAND
        assert analysis.role("CURRICULUM") is NodeRole.PENINSULA
        assert analysis.role("DEPARTMENT") is NodeRole.OUTSIDE
        assert analysis.is_island("GRADES")
        assert not analysis.is_island("STUDENT")

    def test_describe(self, omega):
        text = analyze_island(omega).describe()
        assert "CURRICULUM: peninsula" in text


class TestOmegaPrime:
    """ω′ (Figure 3): island is just the pivot; no peninsulas."""

    def test_island_only_pivot(self, omega_prime):
        analysis = analyze_island(omega_prime)
        assert analysis.island_nodes == ["COURSES"]

    def test_no_peninsulas(self, omega_prime):
        analysis = analyze_island(omega_prime)
        assert analysis.peninsula_nodes == []

    def test_collapsed_path_is_outside(self, omega_prime):
        analysis = analyze_island(omega_prime)
        assert analysis.role("STUDENT") is NodeRole.OUTSIDE


class TestDeepIslands:
    def test_hospital_chart_island(self, chart):
        analysis = analyze_island(chart)
        assert set(analysis.island_nodes) == {
            "PATIENT", "VISIT", "DIAGNOSIS", "PRESCRIPTION", "LAB_RESULT",
        }
        assert set(analysis.outside_nodes) == {"PHYSICIAN", "MEDICATION"}
        assert analysis.peninsula_nodes == []

    def test_cad_island_includes_subset(self, bom):
        analysis = analyze_island(bom)
        assert set(analysis.island_nodes) == {
            "ASSEMBLY", "COMPONENT", "RELEASED_ASSEMBLY",
        }

    def test_island_is_contiguous(self, chart):
        """A node is in the island only if its parent is."""
        analysis = analyze_island(chart)
        for node_id in analysis.island_nodes:
            node = chart.node(node_id)
            if node.parent_id is not None:
                assert analysis.is_island(node.parent_id)
