"""Tree building (Figure 2b) and pruning (Figures 2c / 3)."""

import pytest

from repro.errors import ViewObjectError
from repro.core.information_metric import InformationMetric
from repro.core.tree_builder import build_maximal_tree, prune_tree
from repro.workloads.university import university_schema


@pytest.fixture
def graph():
    return university_schema()


@pytest.fixture
def maximal(graph):
    metric = InformationMetric()
    subgraph = metric.extract_subgraph(graph, "COURSES")
    return build_maximal_tree(graph, subgraph, metric.weights)


class TestFigure2b:
    def test_root_is_pivot(self, maximal):
        assert maximal.root.relation == "COURSES"

    def test_two_copies_of_people(self, maximal):
        copies = maximal.nodes_for_relation("PEOPLE")
        assert len(copies) == 2

    def test_people_copy_parents(self, maximal):
        parents = {
            maximal.parent(node.node_id).relation
            for node in maximal.nodes_for_relation("PEOPLE")
        }
        assert parents == {"DEPARTMENT", "STUDENT"}

    def test_every_other_relation_once(self, maximal):
        for relation in ("COURSES", "CURRICULUM", "DEPARTMENT", "FACULTY",
                         "GRADES", "STUDENT"):
            assert len(maximal.nodes_for_relation(relation)) == 1

    def test_node_count(self, maximal):
        # 7 relations in G + 1 duplicate from the single circuit.
        assert len(maximal) == 8

    def test_each_subgraph_edge_used_once(self, graph, maximal):
        used = [
            t.connection.name
            for node in maximal.nodes()
            if node.path is not None
            for t in node.path
        ]
        assert len(used) == len(set(used)) == 7

    def test_student_under_grades(self, maximal):
        student = maximal.nodes_for_relation("STUDENT")[0]
        assert maximal.parent(student.node_id).relation == "GRADES"

    def test_courses_children(self, maximal):
        children = {c.relation for c in maximal.children("COURSES")}
        assert children == {"CURRICULUM", "DEPARTMENT", "FACULTY", "GRADES"}

    def test_deterministic(self, graph):
        metric = InformationMetric()
        subgraph = metric.extract_subgraph(graph, "COURSES")
        first = build_maximal_tree(graph, subgraph, metric.weights)
        second = build_maximal_tree(graph, subgraph, metric.weights)
        assert first.describe() == second.describe()


class TestPruneFigure2c:
    def test_prune_to_omega(self, maximal):
        pruned = prune_tree(
            maximal,
            ["COURSES", "DEPARTMENT", "CURRICULUM", "GRADES", "STUDENT"],
        )
        assert len(pruned) == 5
        assert {n.relation for n in pruned.nodes()} == {
            "COURSES", "DEPARTMENT", "CURRICULUM", "GRADES", "STUDENT",
        }

    def test_pruned_edges_single_hop(self, maximal):
        pruned = prune_tree(
            maximal,
            ["COURSES", "DEPARTMENT", "CURRICULUM", "GRADES", "STUDENT"],
        )
        for node in pruned.nodes():
            if node.path is not None:
                assert len(node.path) == 1


class TestPruneFigure3:
    def test_collapsed_path(self, maximal):
        pruned = prune_tree(maximal, ["COURSES", "FACULTY", "STUDENT"])
        student = pruned.node("STUDENT")
        assert len(student.path) == 2
        assert student.path.describe() == "COURSES --* GRADES *-- STUDENT"

    def test_faculty_direct(self, maximal):
        pruned = prune_tree(maximal, ["COURSES", "FACULTY", "STUDENT"])
        assert len(pruned.node("FACULTY").path) == 1


class TestPruneErrors:
    def test_must_keep_root(self, maximal):
        with pytest.raises(ViewObjectError):
            prune_tree(maximal, ["GRADES"])

    def test_unknown_node(self, maximal):
        with pytest.raises(ViewObjectError):
            prune_tree(maximal, ["COURSES", "NOPE"])
