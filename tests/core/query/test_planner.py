"""Query planner: pushdown of pivot-only conjuncts."""

from repro.core.query.ast import QAnd
from repro.core.query.parser import parse_query
from repro.core.query.planner import plan_query
from repro.relational.expressions import TRUE


def test_all_pushed():
    plan = plan_query(parse_query("level = 'graduate' and units > 3"))
    assert plan.residual is None
    assert plan.pushed.evaluate({"level": "graduate", "units": 4})
    assert not plan.pushed.evaluate({"level": "graduate", "units": 2})


def test_count_not_pushed():
    plan = plan_query(parse_query("count(STUDENT) < 5"))
    assert plan.pushed is TRUE or plan.pushed.evaluate({})
    assert plan.residual is not None


def test_mixed_split():
    plan = plan_query(
        parse_query("level = 'graduate' and count(STUDENT) < 5")
    )
    assert plan.residual is not None
    assert plan.pushed.evaluate({"level": "graduate"})
    assert not plan.pushed.evaluate({"level": "undergraduate"})


def test_component_attribute_not_pushed():
    plan = plan_query(parse_query("STUDENT.year > 2"))
    assert plan.residual is not None


def test_or_with_component_not_pushed():
    plan = plan_query(parse_query("level = 'x' or STUDENT.year > 2"))
    # The whole disjunction is one conjunct; it touches a component.
    assert plan.residual is not None
    assert plan.pushed.evaluate({})


def test_pivot_only_or_pushed():
    plan = plan_query(parse_query("level = 'a' or level = 'b'"))
    assert plan.residual is None
    assert plan.pushed.evaluate({"level": "b"})


def test_is_null_pushed():
    plan = plan_query(parse_query("instructor_id is null"))
    assert plan.residual is None
    assert plan.pushed.evaluate({"instructor_id": None})
    assert not plan.pushed.evaluate({"instructor_id": 7})


def test_not_pushed_down():
    plan = plan_query(parse_query("not level = 'graduate'"))
    assert plan.residual is None
    assert plan.pushed.evaluate({"level": "undergraduate"})


def test_multiple_residuals_conjunction():
    plan = plan_query(
        parse_query("count(A) > 1 and count(B) > 2 and level = 'x'")
    )
    assert isinstance(plan.residual, QAnd)
    assert len(plan.residual.parts) == 2
