"""Query parser: AST shapes and error reporting."""

import pytest

from repro.errors import QuerySyntaxError
from repro.core.query.ast import (
    QAnd,
    QAttr,
    QCompare,
    QCount,
    QIsNull,
    QLiteral,
    QNot,
    QOr,
)
from repro.core.query.parser import parse_query


def test_figure4_query():
    ast = parse_query("level = 'graduate' and count(STUDENT) < 5")
    assert isinstance(ast, QAnd)
    left, right = ast.parts
    assert isinstance(left, QCompare) and left.op == "="
    assert isinstance(left.left, QAttr) and left.left.node is None
    assert isinstance(right.left, QCount) and right.left.node == "STUDENT"
    assert isinstance(right.right, QLiteral) and right.right.value == 5


def test_qualified_attribute():
    ast = parse_query("STUDENT.year >= 3")
    assert ast.left.node == "STUDENT"
    assert ast.left.name == "year"


def test_or_precedence():
    ast = parse_query("a = 1 or b = 2 and c = 3")
    assert isinstance(ast, QOr)
    assert isinstance(ast.parts[1], QAnd)


def test_parentheses_override():
    ast = parse_query("(a = 1 or b = 2) and c = 3")
    assert isinstance(ast, QAnd)
    assert isinstance(ast.parts[0], QOr)


def test_not():
    ast = parse_query("not a = 1")
    assert isinstance(ast, QNot)
    assert isinstance(ast.part, QCompare)


def test_double_not():
    ast = parse_query("not not a = 1")
    assert isinstance(ast.part, QNot)


def test_is_null():
    ast = parse_query("instructor_id is null")
    assert isinstance(ast, QIsNull) and not ast.negated


def test_is_not_null():
    ast = parse_query("instructor_id is not null")
    assert isinstance(ast, QIsNull) and ast.negated


def test_literals():
    ast = parse_query("a = true and b = false and c = null and d = -3")
    literals = [part.right.value for part in ast.parts]
    assert literals == [True, False, None, -3]


def test_literal_on_left():
    ast = parse_query("5 > units")
    assert isinstance(ast.left, QLiteral)


def test_trailing_garbage():
    with pytest.raises(QuerySyntaxError, match="trailing"):
        parse_query("a = 1 b")


def test_missing_operator():
    with pytest.raises(QuerySyntaxError, match="comparison"):
        parse_query("a")


def test_missing_operand():
    with pytest.raises(QuerySyntaxError, match="operand"):
        parse_query("a = ")


def test_unbalanced_paren():
    with pytest.raises(QuerySyntaxError):
        parse_query("(a = 1")


def test_count_requires_ident():
    with pytest.raises(QuerySyntaxError):
        parse_query("count(5) = 1")
