"""Query-language extensions: IN lists, LIKE patterns, aggregates."""

import pytest

from repro.errors import QueryError, QuerySyntaxError
from repro.core.instance import build_instance
from repro.core.query import execute_query
from repro.core.query.evaluator import evaluate, validate_against
from repro.core.query.parser import parse_query
from repro.core.query.planner import plan_query


@pytest.fixture
def instance(omega):
    return build_instance(
        omega,
        {
            "course_id": "CS145",
            "title": "Database Systems",
            "units": 4,
            "level": "undergraduate",
            "dept_name": "Computer Science",
            "GRADES": [
                {
                    "course_id": "CS145",
                    "student_id": 1,
                    "grade": "A",
                    "STUDENT": [
                        {"person_id": 1, "degree_program": "BSCS", "year": 2}
                    ],
                },
                {
                    "course_id": "CS145",
                    "student_id": 2,
                    "grade": "B",
                    "STUDENT": [
                        {"person_id": 2, "degree_program": "MSCS", "year": 6}
                    ],
                },
            ],
        },
    )


def holds(instance, text):
    return evaluate(parse_query(text), instance)


class TestIn:
    def test_pivot_in(self, instance):
        assert holds(instance, "units in (3, 4, 5)")
        assert not holds(instance, "units in (1, 2)")

    def test_not_in(self, instance):
        assert holds(instance, "units not in (1, 2)")
        assert not holds(instance, "units not in (4)")

    def test_component_in_existential(self, instance):
        assert holds(instance, "GRADES.grade in ('A', 'F')")
        assert not holds(instance, "GRADES.grade in ('F')")

    def test_component_not_in_existential(self, instance):
        # Some grade (B) is not in ('A').
        assert holds(instance, "GRADES.grade not in ('A')")
        assert not holds(instance, "GRADES.grade not in ('A', 'B')")

    def test_mixed_literal_types(self, instance):
        assert holds(instance, "level in ('graduate', 'undergraduate')")

    def test_empty_list_rejected(self, instance):
        with pytest.raises(QuerySyntaxError):
            parse_query("units in ()")


class TestLike:
    def test_prefix(self, instance):
        assert holds(instance, "title like 'Database%'")
        assert not holds(instance, "title like 'Compiler%'")

    def test_suffix_and_infix(self, instance):
        assert holds(instance, "title like '%Systems'")
        assert holds(instance, "title like '%base%'")

    def test_underscore(self, instance):
        assert holds(instance, "course_id like 'CS1__'")
        assert not holds(instance, "course_id like 'CS1_'")

    def test_not_like(self, instance):
        assert holds(instance, "title not like 'X%'")
        assert not holds(instance, "title not like '%'")

    def test_literal_percent_chars_escaped_regex(self, instance):
        # Regex metacharacters in the pattern are literal.
        assert not holds(instance, "title like 'Database (Systems)'")

    def test_like_requires_string(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("title like 42")


class TestAggregates:
    def test_min_max(self, instance):
        assert holds(instance, "min(STUDENT.year) = 2")
        assert holds(instance, "max(STUDENT.year) = 6")

    def test_sum_avg(self, instance):
        assert holds(instance, "sum(STUDENT.year) = 8")
        assert holds(instance, "avg(STUDENT.year) = 4")

    def test_empty_component_is_null(self, omega):
        empty = build_instance(
            omega,
            {
                "course_id": "E1",
                "title": "t",
                "units": 1,
                "level": "graduate",
                "dept_name": "Physics",
            },
        )
        # Aggregate over nothing is null: every comparison is false.
        assert not holds(empty, "max(STUDENT.year) > 0")
        assert not holds(empty, "max(STUDENT.year) <= 0")

    def test_aggregate_validation(self, omega):
        validate_against(parse_query("avg(STUDENT.year) > 1"), omega)
        with pytest.raises(QueryError):
            validate_against(parse_query("avg(STUDENT.gpa) > 1"), omega)

    def test_aggregate_never_pushed(self):
        plan = plan_query(parse_query("sum(STUDENT.year) > 4"))
        assert plan.residual is not None


class TestPushdown:
    def test_in_pushed_to_engine(self, omega, university_engine):
        results = execute_query(
            omega,
            university_engine,
            "dept_name in ('Physics', 'Mathematics')",
        )
        for instance in results:
            assert instance.root.values["dept_name"] in (
                "Physics",
                "Mathematics",
            )

    def test_like_pushed_to_engine(self, omega, university_engine):
        results = execute_query(omega, university_engine, "course_id like 'M%'")
        for instance in results:
            assert instance.key[0].startswith("M")

    def test_in_like_on_sqlite(self, omega, university_sqlite):
        memory_style = execute_query(
            omega, university_sqlite, "course_id like 'M%' and units in (3, 4, 5)"
        )
        for instance in memory_style:
            assert instance.key[0].startswith("M")
            assert instance.root.values["units"] in (3, 4, 5)

    def test_not_in_pushed(self, omega, university_engine):
        everything = {i.key for i in execute_query(omega, university_engine, "units >= 0")}
        kept = {
            i.key
            for i in execute_query(
                omega, university_engine, "dept_name not in ('Physics')"
            )
        }
        dropped = {
            i.key
            for i in execute_query(
                omega, university_engine, "dept_name in ('Physics')"
            )
        }
        assert kept | dropped == everything
        assert kept & dropped == set()


class TestRelationalExpressions:
    def test_like_sql(self):
        from repro.relational.expressions import Attr, Like

        sql, params = Like(Attr("title"), "Data%").to_sql()
        assert "LIKE" in sql
        assert params == ["Data%"]

    def test_in_sql(self):
        from repro.relational.expressions import Attr, In

        sql, params = In(Attr("units"), (1, 2)).to_sql()
        assert "IN" in sql and params == [1, 2]

    def test_empty_in_is_false(self):
        from repro.relational.expressions import Attr, In

        expr = In(Attr("units"), ())
        assert not expr.evaluate({"units": 1})
        sql, __ = expr.to_sql()
        assert sql == "(1 = 0)"

    def test_like_null_never_matches(self):
        from repro.relational.expressions import Attr, Like

        assert not Like(Attr("title"), "%").evaluate({"title": None})
