"""explain_query: the composed plan, human-readable."""

import pytest

from repro.errors import QueryError
from repro.core.query import explain_query


def test_fully_pushed(omega):
    text = explain_query(omega, "level = 'graduate' and units > 2")
    assert "pushed to engine" in text
    assert "level" in text and "units" in text
    assert "fully pushed down" in text


def test_mixed_plan(omega):
    text = explain_query(
        omega, "level = 'graduate' and count(STUDENT) < 5"
    )
    assert "residual" in text
    assert "QCount(STUDENT)" in text
    assert "existential" in text


def test_mentions_pivot(omega):
    assert "COURSES" in explain_query(omega, "units = 1")


def test_validates_first(omega):
    with pytest.raises(QueryError):
        explain_query(omega, "bogus_attr = 1")


def test_explains_order_and_limit(omega):
    text = explain_query(
        omega, "units > 1 order by count(STUDENT) desc limit 5"
    )
    assert "order by" in text
    assert "limit            : 5" in text
