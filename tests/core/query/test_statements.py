"""ORDER BY / LIMIT statement layer."""

import pytest

from repro.errors import QueryError, QuerySyntaxError
from repro.core.query import execute_query
from repro.core.query.parser import parse_statement


class TestParsing:
    def test_plain_condition(self):
        statement = parse_statement("units = 1")
        assert statement.order_by == []
        assert statement.limit is None

    def test_order_by_single(self):
        statement = parse_statement("units > 0 order by units")
        assert len(statement.order_by) == 1
        assert not statement.order_by[0].descending

    def test_order_by_desc_and_multiple(self):
        statement = parse_statement(
            "units > 0 order by units desc, title asc, count(GRADES)"
        )
        directions = [t.descending for t in statement.order_by]
        assert directions == [True, False, False]

    def test_limit(self):
        statement = parse_statement("units > 0 limit 3")
        assert statement.limit == 3

    def test_order_and_limit(self):
        statement = parse_statement(
            "units > 0 order by units desc limit 2"
        )
        assert statement.limit == 2
        assert statement.order_by[0].descending

    def test_limit_must_be_integer(self):
        with pytest.raises(QuerySyntaxError):
            parse_statement("units > 0 limit 2.5")

    def test_order_by_literal_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_statement("units > 0 order by 5")

    def test_trailing_garbage(self):
        with pytest.raises(QuerySyntaxError):
            parse_statement("units > 0 limit 2 extra")


class TestExecution:
    def test_order_ascending(self, omega, university_engine):
        results = execute_query(
            omega, university_engine, "units >= 1 order by units"
        )
        units = [i.root.values["units"] for i in results]
        assert units == sorted(units)

    def test_order_descending(self, omega, university_engine):
        results = execute_query(
            omega, university_engine, "units >= 1 order by units desc"
        )
        units = [i.root.values["units"] for i in results]
        assert units == sorted(units, reverse=True)

    def test_order_by_count(self, omega, university_engine):
        results = execute_query(
            omega,
            university_engine,
            "units >= 1 order by count(STUDENT) desc",
        )
        counts = [i.count_at("STUDENT") for i in results]
        assert counts == sorted(counts, reverse=True)

    def test_order_by_aggregate(self, omega, university_engine):
        results = execute_query(
            omega,
            university_engine,
            "count(STUDENT) > 0 order by avg(STUDENT.year)",
        )
        averages = [
            sum(s["year"] for s in i.tuples_at("STUDENT"))
            / i.count_at("STUDENT")
            for i in results
        ]
        assert averages == sorted(averages)

    def test_secondary_sort_key(self, omega, university_engine):
        results = execute_query(
            omega,
            university_engine,
            "units >= 1 order by units, course_id",
        )
        keys = [
            (i.root.values["units"], i.key[0]) for i in results
        ]
        assert keys == sorted(keys)

    def test_limit_truncates(self, omega, university_engine):
        total = len(execute_query(omega, university_engine, "units >= 1"))
        limited = execute_query(
            omega, university_engine, "units >= 1 limit 3"
        )
        assert len(limited) == min(3, total)

    def test_limit_zero(self, omega, university_engine):
        assert execute_query(omega, university_engine, "units >= 1 limit 0") == []

    def test_top_n_pattern(self, omega, university_engine):
        """The classic report: the 2 largest graduate courses."""
        results = execute_query(
            omega,
            university_engine,
            "level = 'graduate' order by count(STUDENT) desc limit 2",
        )
        assert len(results) == 2
        assert results[0].count_at("STUDENT") >= results[1].count_at("STUDENT")

    def test_component_attribute_order_rejected(
        self, omega, university_engine
    ):
        with pytest.raises(QueryError, match="ambiguous"):
            execute_query(
                omega,
                university_engine,
                "units >= 1 order by STUDENT.year",
            )

    def test_order_by_unknown_attribute(self, omega, university_engine):
        with pytest.raises(QueryError):
            execute_query(
                omega, university_engine, "units >= 1 order by credits"
            )
