"""Query tokenizer."""

import pytest

from repro.errors import QuerySyntaxError
from repro.core.query.lexer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)][:-1]  # drop EOF


def test_simple_comparison():
    assert kinds("level = 'graduate'") == ["IDENT", "OP", "STRING", "EOF"]


def test_string_value():
    assert values("'graduate'") == ["graduate"]


def test_string_escape_doubled_quote():
    assert values("'it''s'") == ["it's"]


def test_unterminated_string():
    with pytest.raises(QuerySyntaxError):
        tokenize("'oops")


def test_numbers():
    assert values("42 -7 2.5") == [42, -7, 2.5]
    assert isinstance(values("42")[0], int)
    assert isinstance(values("2.5")[0], float)


def test_operators():
    assert values("= != <> < <= > >=") == ["=", "!=", "!=", "<", "<=", ">", ">="]


def test_keywords_case_insensitive():
    assert values("AND Or NOT Count IS NULL TRUE false") == [
        "and", "or", "not", "count", "is", "null", "true", "false",
    ]


def test_identifier_with_hash():
    tokens = tokenize("PEOPLE#2.name")
    assert tokens[0].value == "PEOPLE#2"
    assert tokens[1].kind == "DOT"
    assert tokens[2].value == "name"


def test_parens_and_count():
    assert kinds("count(STUDENT) < 5") == [
        "KEYWORD", "LPAREN", "IDENT", "RPAREN", "OP", "NUMBER", "EOF",
    ]


def test_whitespace_ignored():
    assert kinds("  a   =  1 ") == ["IDENT", "OP", "NUMBER", "EOF"]


def test_unexpected_character():
    with pytest.raises(QuerySyntaxError):
        tokenize("a @ b")


def test_bang_without_equals():
    with pytest.raises(QuerySyntaxError):
        tokenize("a ! b")


def test_positions_recorded():
    tokens = tokenize("ab = 1")
    assert tokens[0].position == 0
    assert tokens[1].position == 3
