"""End-to-end object queries against live engines."""


from repro.core.query import execute_query


def test_pushdown_equals_full_scan(omega, university_engine):
    fast = execute_query(
        omega, university_engine, "level = 'graduate' and units >= 3"
    )
    # Same query phrased so nothing can be pushed down (count is residual).
    slow = execute_query(
        omega,
        university_engine,
        "level = 'graduate' and units >= 3 and count(COURSES) = 1",
    )
    assert {i.key for i in fast} == {i.key for i in slow}


def test_component_condition(omega, university_engine):
    results = execute_query(
        omega, university_engine, "GRADES.grade = 'F'"
    )
    for instance in results:
        grades = {g["grade"] for g in instance.tuples_at("GRADES")}
        assert "F" in grades


def test_empty_result(omega, university_engine):
    assert execute_query(omega, university_engine, "units > 99") == []


def test_hospital_query(chart, hospital_engine):
    results = execute_query(
        chart, hospital_engine, "count(DIAGNOSIS) >= 5"
    )
    for instance in results:
        assert instance.count_at("DIAGNOSIS") >= 5


def test_cad_query(bom, cad_engine):
    results = execute_query(
        bom, cad_engine, "count(RELEASED_ASSEMBLY) = 1 and PART.name = 'gear'"
    )
    for instance in results:
        assert instance.count_at("RELEASED_ASSEMBLY") == 1
        assert "gear" in {p["name"] for p in instance.tuples_at("PART")}


def test_query_on_sqlite(omega, university_sqlite):
    results = execute_query(
        omega, university_sqlite, "level = 'graduate' and count(STUDENT) < 5"
    )
    assert len(results) >= 1
