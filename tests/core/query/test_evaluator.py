"""Query evaluation semantics on instances."""

import pytest

from repro.errors import QueryError
from repro.core.instance import build_instance
from repro.core.query.evaluator import evaluate, validate_against
from repro.core.query.parser import parse_query


@pytest.fixture
def instance(omega):
    return build_instance(
        omega,
        {
            "course_id": "CS145",
            "title": "Databases",
            "units": 4,
            "level": "undergraduate",
            "dept_name": "Computer Science",
            "DEPARTMENT": [
                {"dept_name": "Computer Science", "building": "Gates"}
            ],
            "CURRICULUM": [],
            "GRADES": [
                {
                    "course_id": "CS145",
                    "student_id": 1,
                    "grade": "A",
                    "STUDENT": [
                        {"person_id": 1, "degree_program": "BSCS", "year": 2}
                    ],
                },
                {
                    "course_id": "CS145",
                    "student_id": 2,
                    "grade": "B",
                    "STUDENT": [
                        {"person_id": 2, "degree_program": "MSCS", "year": 5}
                    ],
                },
            ],
        },
    )


def holds(instance, text):
    return evaluate(parse_query(text), instance)


class TestPivotAttributes:
    def test_equality(self, instance):
        assert holds(instance, "level = 'undergraduate'")
        assert not holds(instance, "level = 'graduate'")

    def test_ordering(self, instance):
        assert holds(instance, "units >= 4")
        assert not holds(instance, "units > 4")

    def test_unknown_attribute_raises(self, instance):
        with pytest.raises(QueryError):
            holds(instance, "credits = 1")


class TestExistentialComponents:
    def test_some_tuple_matches(self, instance):
        assert holds(instance, "GRADES.grade = 'A'")
        assert holds(instance, "GRADES.grade = 'B'")

    def test_no_tuple_matches(self, instance):
        assert not holds(instance, "GRADES.grade = 'F'")

    def test_nested_component(self, instance):
        assert holds(instance, "STUDENT.year > 4")
        assert not holds(instance, "STUDENT.year > 5")

    def test_empty_component_never_matches(self, instance):
        assert not holds(instance, "CURRICULUM.degree = 'BSCS'")

    def test_negated_existential(self, instance):
        # NOT (exists grade = 'F') is true.
        assert holds(instance, "not GRADES.grade = 'F'")


class TestCounts:
    def test_count(self, instance):
        assert holds(instance, "count(GRADES) = 2")
        assert holds(instance, "count(CURRICULUM) = 0")
        assert holds(instance, "count(STUDENT) < 5")

    def test_count_comparison_both_sides(self, instance):
        assert holds(instance, "2 = count(GRADES)")


class TestBooleans:
    def test_and_or_not(self, instance):
        assert holds(instance, "units = 4 and count(GRADES) = 2")
        assert holds(instance, "units = 9 or count(GRADES) = 2")
        assert not holds(instance, "not units = 4")


class TestNulls:
    def test_null_comparison_false(self, instance):
        assert not holds(instance, "level = null")

    def test_is_null_on_pivot(self, omega, instance):
        assert not holds(instance, "title is null")
        assert holds(instance, "title is not null")


class TestValidateAgainst:
    def test_valid_query(self, omega):
        validate_against(
            parse_query("level = 'x' and count(GRADES) > 0 and STUDENT.year = 1"),
            omega,
        )

    def test_unknown_node(self, omega):
        with pytest.raises(Exception):
            validate_against(parse_query("count(PROFESSOR) > 0"), omega)

    def test_unknown_pivot_attribute(self, omega):
        with pytest.raises(QueryError):
            validate_against(parse_query("credits = 1"), omega)

    def test_unknown_component_attribute(self, omega):
        with pytest.raises(QueryError):
            validate_against(parse_query("STUDENT.gpa = 4"), omega)
