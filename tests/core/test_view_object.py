"""View-object definitions: Definitions 3.1/3.2 and their validation."""

import pytest

from repro.errors import PivotError, ProjectionError, ViewObjectError
from repro.core.view_object import define_view_object
from repro.workloads.figures import course_info_object
from repro.workloads.university import university_schema


@pytest.fixture
def graph():
    return university_schema()


class TestFigure2cObject:
    def test_complexity(self, graph):
        omega = course_info_object(graph)
        assert omega.complexity == 5

    def test_pivot(self, graph):
        omega = course_info_object(graph)
        assert omega.pivot_relation == "COURSES"
        assert omega.pivot_node_id == "COURSES"

    def test_object_key(self, graph):
        omega = course_info_object(graph)
        assert omega.object_key == ("course_id",)

    def test_relations(self, graph):
        omega = course_info_object(graph)
        assert set(omega.relations()) == {
            "COURSES", "DEPARTMENT", "CURRICULUM", "GRADES", "STUDENT",
        }

    def test_intermediate_artifacts_kept(self, graph):
        omega = course_info_object(graph)
        assert omega.subgraph is not None
        assert omega.maximal_tree is not None
        assert len(omega.maximal_tree) == 8

    def test_describe(self, graph):
        text = course_info_object(graph).describe()
        assert "complexity 5" in text
        assert "GRADES" in text


class TestValidation:
    def test_pivot_projection_must_include_key(self, graph):
        with pytest.raises(PivotError):
            define_view_object(
                graph, "bad", "COURSES",
                selections={"COURSES": ("title", "units", "dept_name")},
            )

    def test_updatable_requires_keys_everywhere(self, graph):
        with pytest.raises(ProjectionError):
            define_view_object(
                graph, "bad", "COURSES",
                selections={
                    "COURSES": ("course_id", "dept_name"),
                    "GRADES": ("course_id", "grade"),  # student_id missing
                },
            )

    def test_query_only_skips_key_requirement(self, graph):
        omega = define_view_object(
            graph, "readonly", "COURSES",
            selections={
                "COURSES": ("course_id", "dept_name"),
                "GRADES": ("course_id", "grade"),
            },
            updatable=False,
        )
        assert omega.complexity == 2

    def test_edge_attributes_must_be_projected(self, graph):
        with pytest.raises(ProjectionError, match="connecting attributes"):
            define_view_object(
                graph, "bad", "COURSES",
                selections={
                    # dept_name (edge to DEPARTMENT) missing from pivot.
                    "COURSES": ("course_id", "title"),
                    "DEPARTMENT": ("dept_name", "building"),
                },
            )

    def test_unknown_selection_node(self, graph):
        with pytest.raises(ViewObjectError, match="absent from the maximal"):
            define_view_object(
                graph, "bad", "COURSES",
                selections={"COURSES": ("course_id", "dept_name"), "STAFF": ("person_id",)},
            )

    def test_unknown_attribute_in_selection(self, graph):
        with pytest.raises(ProjectionError):
            define_view_object(
                graph, "bad", "COURSES",
                selections={"COURSES": ("course_id", "credits")},
            )

    def test_minimal_object_is_pivot_only(self, graph):
        omega = define_view_object(
            graph, "tiny", "COURSES",
            selections={"COURSES": ("course_id", "title")},
            updatable=False,
        )
        assert omega.complexity == 1
        assert omega.relations() == ("COURSES",)


class TestMultipleObjectsSamePivot:
    def test_several_objects_one_pivot(self, graph):
        """Several objects can be anchored on the same pivot relation."""
        first = course_info_object(graph, name="one")
        second = define_view_object(
            graph, "two", "COURSES",
            selections={"COURSES": ("course_id", "level")},
            updatable=False,
        )
        assert first.pivot_relation == second.pivot_relation
        assert first.complexity != second.complexity
