"""The information metric: relevance propagation and subgraph extraction."""

import pytest

from repro.core.information_metric import InformationMetric, MetricWeights
from repro.workloads.university import university_schema


@pytest.fixture
def graph():
    return university_schema()


@pytest.fixture
def metric():
    return InformationMetric()


class TestRelevanceMap:
    def test_pivot_has_relevance_one(self, graph, metric):
        relevance = metric.relevance_map(graph, "COURSES")
        assert relevance["COURSES"] == 1.0

    def test_relevance_in_unit_interval(self, graph, metric):
        relevance = metric.relevance_map(graph, "COURSES")
        assert all(0.0 < value <= 1.0 for value in relevance.values())

    def test_owned_stronger_than_referencing(self, graph, metric):
        relevance = metric.relevance_map(graph, "COURSES")
        assert relevance["GRADES"] > relevance["CURRICULUM"]

    def test_all_relations_reachable(self, graph, metric):
        relevance = metric.relevance_map(graph, "COURSES")
        assert set(relevance) == set(graph.relation_names)

    def test_relevance_decays_with_distance(self, graph, metric):
        relevance = metric.relevance_map(graph, "COURSES")
        assert relevance["STUDENT"] < relevance["GRADES"]
        assert relevance["PEOPLE"] < relevance["STUDENT"]


class TestSubgraphFigure2a:
    def test_relations_match_figure(self, graph, metric):
        subgraph = metric.extract_subgraph(graph, "COURSES")
        assert subgraph.relations == {
            "COURSES",
            "CURRICULUM",
            "DEPARTMENT",
            "FACULTY",
            "GRADES",
            "PEOPLE",
            "STUDENT",
        }

    def test_staff_excluded(self, graph, metric):
        subgraph = metric.extract_subgraph(graph, "COURSES")
        assert "STAFF" not in subgraph.relations

    def test_edges_form_one_circuit(self, graph, metric):
        subgraph = metric.extract_subgraph(graph, "COURSES")
        # 7 relations, 7 edges -> exactly one circuit.
        assert len(subgraph.connections) == 7
        assert graph.undirected_cycles_exist_within(subgraph.relations)

    def test_people_faculty_edge_excluded(self, graph, metric):
        subgraph = metric.extract_subgraph(graph, "COURSES")
        assert not subgraph.has_connection("people_faculty")
        assert not subgraph.has_connection("people_staff")

    def test_incident(self, graph, metric):
        subgraph = metric.extract_subgraph(graph, "COURSES")
        incident = {c.name for c in subgraph.incident("PEOPLE")}
        assert incident == {"people_department", "people_student"}

    def test_describe(self, graph, metric):
        text = metric.extract_subgraph(graph, "COURSES").describe()
        assert "COURSES" in text and "relevance" in text


class TestThresholdKnob:
    def test_high_threshold_shrinks_subgraph(self, graph):
        tight = InformationMetric(threshold=0.75)
        subgraph = tight.extract_subgraph(graph, "COURSES")
        assert subgraph.relations == {"COURSES", "GRADES"}

    def test_low_threshold_admits_everything(self, graph):
        loose = InformationMetric(threshold=0.05)
        subgraph = loose.extract_subgraph(graph, "COURSES")
        assert subgraph.relations == set(graph.relation_names)

    def test_custom_weights(self, graph):
        weights = MetricWeights(inverse_reference=0.1)
        metric = InformationMetric(weights=weights)
        subgraph = metric.extract_subgraph(graph, "COURSES")
        assert "CURRICULUM" not in subgraph.relations


class TestOtherPivots:
    def test_pivot_people(self, graph, metric):
        subgraph = metric.extract_subgraph(graph, "PEOPLE")
        assert "STUDENT" in subgraph.relations
        assert "FACULTY" in subgraph.relations
        assert "STAFF" in subgraph.relations

    def test_pivot_department(self, graph, metric):
        subgraph = metric.extract_subgraph(graph, "DEPARTMENT")
        assert "DEPARTMENT" in subgraph.relations
        assert subgraph.pivot == "DEPARTMENT"
