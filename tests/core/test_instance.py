"""Hierarchical instances: construction, flattening, rendering."""

import pytest

from repro.errors import ViewObjectError
from repro.core.instance import build_instance


@pytest.fixture
def data():
    return {
        "course_id": "CS145",
        "title": "Databases",
        "units": 4,
        "level": "undergraduate",
        "dept_name": "Computer Science",
        "DEPARTMENT": [
            {"dept_name": "Computer Science", "building": "Gates"}
        ],
        "CURRICULUM": [
            {"degree": "BSCS", "course_id": "CS145", "category": "required"},
            {"degree": "MSCS", "course_id": "CS145", "category": "elective"},
        ],
        "GRADES": [
            {
                "course_id": "CS145",
                "student_id": 1,
                "grade": "A",
                "STUDENT": [
                    {"person_id": 1, "degree_program": "BSCS", "year": 2}
                ],
            },
            {
                "course_id": "CS145",
                "student_id": 2,
                "grade": "B",
                "STUDENT": [
                    {"person_id": 2, "degree_program": "MSCS", "year": 1}
                ],
            },
        ],
    }


class TestBuild:
    def test_key(self, omega, data):
        instance = build_instance(omega, data)
        assert instance.key == ("CS145",)

    def test_counts(self, omega, data):
        instance = build_instance(omega, data)
        assert instance.count_at("GRADES") == 2
        assert instance.count_at("STUDENT") == 2
        assert instance.count_at("CURRICULUM") == 2
        assert instance.count_at("DEPARTMENT") == 1
        assert instance.count_at("COURSES") == 1

    def test_missing_children_default_empty(self, omega, data):
        del data["CURRICULUM"]
        instance = build_instance(omega, data)
        assert instance.count_at("CURRICULUM") == 0

    def test_missing_attribute_rejected(self, omega, data):
        del data["title"]
        with pytest.raises(ViewObjectError, match="missing values"):
            build_instance(omega, data)

    def test_unknown_key_rejected(self, omega, data):
        data["gpa"] = 4.0
        with pytest.raises(ViewObjectError, match="neither"):
            build_instance(omega, data)

    def test_child_must_be_list(self, omega, data):
        data["DEPARTMENT"] = {"dept_name": "CS", "building": "G"}
        with pytest.raises(ViewObjectError, match="list"):
            build_instance(omega, data)

    def test_unprojected_attribute_rejected(self, omega, data):
        data["GRADES"][0]["instructor"] = "Keller"
        with pytest.raises(ViewObjectError):
            build_instance(omega, data)


class TestFlattening:
    def test_tuples_at_nested(self, omega, data):
        instance = build_instance(omega, data)
        students = instance.tuples_at("STUDENT")
        assert sorted(s["person_id"] for s in students) == [1, 2]

    def test_iter_nodes_bfs(self, omega, data):
        instance = build_instance(omega, data)
        order = [node_id for node_id, __ in instance.iter_nodes()]
        assert order[0] == "COURSES"
        assert set(order) == set(omega.tree.node_ids)


class TestConversion:
    def test_round_trip(self, omega, data):
        instance = build_instance(omega, data)
        rebuilt = build_instance(omega, instance.to_dict())
        assert rebuilt == instance

    def test_describe_paper_style(self, omega, data):
        text = build_instance(omega, data).describe()
        assert text.startswith("(COURSES: CS145")
        assert "(GRADES: CS145, 1" in text
        assert "(STUDENT: 2" in text

    def test_equality(self, omega, data):
        a = build_instance(omega, data)
        b = build_instance(omega, data)
        assert a == b
        data["units"] = 3
        assert build_instance(omega, data) != a
