"""Instance diffing."""

import copy

import pytest

from repro.core.diff import diff_instances, render_diff
from repro.core.instance import build_instance
from repro.errors import ViewObjectError


@pytest.fixture
def base(omega):
    return {
        "course_id": "CS145",
        "title": "Databases",
        "units": 4,
        "level": "undergraduate",
        "dept_name": "Computer Science",
        "DEPARTMENT": [
            {"dept_name": "Computer Science", "building": "Gates"}
        ],
        "CURRICULUM": [
            {"degree": "BSCS", "course_id": "CS145", "category": "required"}
        ],
        "GRADES": [
            {
                "course_id": "CS145",
                "student_id": 1,
                "grade": "A",
                "STUDENT": [
                    {"person_id": 1, "degree_program": "BSCS", "year": 2}
                ],
            }
        ],
    }


def make(omega, data):
    return build_instance(omega, data)


def test_identical_instances_empty_diff(omega, base):
    changes = diff_instances(make(omega, base), make(omega, base))
    assert changes == []
    assert render_diff(changes) == "(no changes)"


def test_modified_pivot_attribute(omega, base):
    new = copy.deepcopy(base)
    new["title"] = "Advanced Databases"
    changes = diff_instances(make(omega, base), make(omega, new))
    assert len(changes) == 1
    change = changes[0]
    assert change.node_id == "COURSES"
    assert change.kind == "modified"
    assert change.changes["title"] == ("Databases", "Advanced Databases")


def test_added_component(omega, base):
    new = copy.deepcopy(base)
    new["GRADES"].append(
        {
            "course_id": "CS145",
            "student_id": 2,
            "grade": "B",
            "STUDENT": [],
        }
    )
    changes = diff_instances(make(omega, base), make(omega, new))
    assert [c.kind for c in changes] == ["added"]
    assert changes[0].key == ("CS145", 2)


def test_removed_component(omega, base):
    new = copy.deepcopy(base)
    new["GRADES"] = []
    changes = diff_instances(make(omega, base), make(omega, new))
    assert [c.kind for c in changes] == ["removed"]


def test_rekeyed_pivot(omega, base):
    new = copy.deepcopy(base)
    new["course_id"] = "EES345"
    for grade in new["GRADES"]:
        grade["course_id"] = "EES345"
    for entry in new["CURRICULUM"]:
        entry["course_id"] = "EES345"
    changes = diff_instances(make(omega, base), make(omega, new))
    pivot_changes = [c for c in changes if c.node_id == "COURSES"]
    assert pivot_changes[0].kind == "rekeyed"
    assert pivot_changes[0].key == ("CS145",)
    assert pivot_changes[0].new_key == ("EES345",)
    # Child key changes also surface as rekeys.
    kinds = {c.node_id: c.kind for c in changes}
    assert kinds["GRADES"] == "rekeyed"


def test_nested_modification(omega, base):
    new = copy.deepcopy(base)
    new["GRADES"][0]["STUDENT"][0]["year"] = 3
    changes = diff_instances(make(omega, base), make(omega, new))
    assert len(changes) == 1
    assert changes[0].node_id == "STUDENT"
    assert changes[0].changes["year"] == (2, 3)


def test_render_is_readable(omega, base):
    new = copy.deepcopy(base)
    new["units"] = 5
    text = render_diff(diff_instances(make(omega, base), make(omega, new)))
    assert "COURSES" in text
    assert "4 -> 5" in text


def test_cross_object_diff_rejected(omega, omega_prime, base):
    other = build_instance(
        omega_prime,
        {
            "course_id": "X",
            "title": "t",
            "units": 1,
            "level": "graduate",
            "instructor_id": None,
        },
    )
    with pytest.raises(ViewObjectError):
        diff_instances(make(omega, base), other)
