"""The person-pivot object: subset connections inside the island."""

import copy

import pytest

from repro.core.dependency_island import analyze_island
from repro.core.instantiation import Instantiator
from repro.core.updates.policy import ReferenceRepair, RelationPolicy, TranslatorPolicy
from repro.core.updates.translator import Translator
from repro.structural.integrity import IntegrityChecker
from repro.workloads.figures import person_object


@pytest.fixture
def person_vo(university_graph):
    return person_object(university_graph)


@pytest.fixture
def translator(person_vo):
    # Deleting people may orphan courses they instruct: the nullable
    # instructor reference is nullified (Definition 2.3's option).
    policy = TranslatorPolicy()
    policy.set_relation(
        "COURSES", RelationPolicy(on_reference_delete=ReferenceRepair.NULLIFY)
    )
    return Translator(person_vo, policy=policy, verify_integrity=True)


def find_person(engine, specialization):
    return next(iter(engine.scan(specialization)))[0]


class TestStructure:
    def test_island_includes_subsets_and_grades(self, person_vo):
        analysis = analyze_island(person_vo)
        assert set(analysis.island_nodes) == {
            "PEOPLE", "STUDENT", "FACULTY", "STAFF", "GRADES",
        }
        assert analysis.outside_nodes == ["DEPARTMENT"]

    def test_specializations_are_at_most_one(
        self, person_vo, university_engine
    ):
        """The subset connection's cardinality is 1:[0,1]: instances bind
        at most one tuple per specialization."""
        instantiator = Instantiator(person_vo)
        for instance in instantiator.all(university_engine):
            assert instance.count_at("STUDENT") <= 1
            assert instance.count_at("FACULTY") <= 1
            assert instance.count_at("STAFF") <= 1
            # Everyone in the generated data is exactly one of the three.
            total = (
                instance.count_at("STUDENT")
                + instance.count_at("FACULTY")
                + instance.count_at("STAFF")
            )
            assert total == 1


class TestDeletion:
    def test_delete_student_cascades_grades(
        self, translator, university_engine, university_graph
    ):
        sid = find_person(university_engine, "STUDENT")
        assert university_engine.find_by("GRADES", ("student_id",), (sid,))
        translator.delete(university_engine, key=(sid,))
        assert university_engine.get("PEOPLE", (sid,)) is None
        assert university_engine.get("STUDENT", (sid,)) is None
        assert university_engine.find_by("GRADES", ("student_id",), (sid,)) == []
        assert IntegrityChecker(university_graph).is_consistent(
            university_engine
        )

    def test_delete_faculty_nullifies_instructor(
        self, translator, university_engine
    ):
        course = next(
            v for v in university_engine.scan("COURSES") if v[5] is not None
        )
        instructor = course[5]
        translator.delete(university_engine, key=(instructor,))
        assert university_engine.get("FACULTY", (instructor,)) is None
        assert university_engine.get("COURSES", (course[0],))[5] is None

    def test_courses_survive_student_deletion(
        self, translator, university_engine
    ):
        sid = find_person(university_engine, "STUDENT")
        courses = [
            v[0]
            for v in university_engine.find_by(
                "GRADES", ("student_id",), (sid,)
            )
        ]
        translator.delete(university_engine, key=(sid,))
        for cid in courses:
            assert university_engine.get("COURSES", (cid,)) is not None


class TestRekey:
    def test_person_rekey_propagates_through_subset_and_grades(
        self, translator, university_engine, university_graph
    ):
        sid = find_person(university_engine, "STUDENT")
        n_grades = len(
            university_engine.find_by("GRADES", ("student_id",), (sid,))
        )
        old = translator.instantiate(university_engine, (sid,))
        new = copy.deepcopy(old.to_dict())

        def rekey(node):
            for key in ("person_id", "student_id"):
                if key in node:
                    node[key] = 555555
            for value in node.values():
                if isinstance(value, list):
                    for child in value:
                        rekey(child)
            return node

        translator.replace(university_engine, old, rekey(new))
        assert university_engine.get("PEOPLE", (sid,)) is None
        assert university_engine.get("PEOPLE", (555555,)) is not None
        assert university_engine.get("STUDENT", (555555,)) is not None
        migrated = university_engine.find_by(
            "GRADES", ("student_id",), (555555,)
        )
        assert len(migrated) == n_grades
        assert IntegrityChecker(university_graph).is_consistent(
            university_engine
        )


class TestInsertion:
    def test_insert_new_staff_member(
        self, translator, university_engine, university_graph
    ):
        translator.insert(
            university_engine,
            {
                "person_id": 777001,
                "name": "New Hire",
                "dept_name": "Physics",
                "STAFF": [
                    {
                        "person_id": 777001,
                        "position": "librarian",
                        "salary": 50000,
                    }
                ],
                "STUDENT": [],
                "FACULTY": [],
                "DEPARTMENT": [],
            },
        )
        assert university_engine.get("PEOPLE", (777001,)) is not None
        assert university_engine.get("STAFF", (777001,)) is not None
        assert IntegrityChecker(university_graph).is_consistent(
            university_engine
        )
