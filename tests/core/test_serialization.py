"""Serialization of definitions and policies ("only its definition is
saved")."""

import json

import pytest

from repro.errors import ViewObjectError
from repro.core.serialization import (
    policy_from_dict,
    policy_to_dict,
    view_object_from_dict,
    view_object_from_json,
    view_object_to_dict,
    view_object_to_json,
)
from repro.core.updates.policy import (
    ReferenceRepair,
    RelationPolicy,
    TranslatorPolicy,
)
from repro.workloads.figures import alternate_course_object
from repro.workloads.university import university_schema


class TestViewObjectRoundTrip:
    def test_round_trip_preserves_structure(self, omega, university_graph):
        rebuilt = view_object_from_dict(
            university_graph, view_object_to_dict(omega)
        )
        assert rebuilt.name == omega.name
        assert rebuilt.complexity == omega.complexity
        assert rebuilt.pivot_relation == omega.pivot_relation
        assert sorted(rebuilt.tree.node_ids) == sorted(omega.tree.node_ids)
        for node_id in omega.tree.node_ids:
            assert (
                rebuilt.projection(node_id).attributes
                == omega.projection(node_id).attributes
            )

    def test_round_trip_preserves_edges(self, university_graph):
        omega_prime = alternate_course_object(university_graph)
        rebuilt = view_object_from_dict(
            university_graph, view_object_to_dict(omega_prime)
        )
        # The composite two-connection path survives.
        assert rebuilt.tree.node("STUDENT").path.describe() == (
            "COURSES --* GRADES *-- STUDENT"
        )

    def test_json_round_trip(self, omega, university_graph):
        text = view_object_to_json(omega)
        json.loads(text)  # valid JSON
        rebuilt = view_object_from_json(university_graph, text)
        assert rebuilt.complexity == omega.complexity

    def test_rebuilt_object_is_fully_usable(self, omega, university_graph):
        from repro.core.dependency_island import analyze_island
        from repro.core.updates.translator import Translator
        from repro.relational.memory_engine import MemoryEngine
        from repro.workloads.university import populate_university

        rebuilt = view_object_from_dict(
            university_graph, view_object_to_dict(omega)
        )
        analysis = analyze_island(rebuilt)
        assert analysis.island_nodes == ["COURSES", "GRADES"]
        engine = MemoryEngine()
        university_graph.install(engine)
        populate_university(engine)
        translator = Translator(rebuilt, verify_integrity=True)
        cid = next(iter(engine.scan("COURSES")))[0]
        translator.delete(engine, key=(cid,))
        assert engine.get("COURSES", (cid,)) is None


class TestViewObjectErrors:
    def test_bad_format(self, university_graph):
        with pytest.raises(ViewObjectError, match="format"):
            view_object_from_dict(university_graph, {"format": 99})

    def test_missing_connection(self, omega):
        """Loading against a schema that lost a connection fails loudly."""
        stripped = university_schema()
        data = view_object_to_dict(omega)
        for entry in data["nodes"]:
            for hop in entry.get("path", []):
                hop["connection"] = hop["connection"].replace(
                    "curriculum_courses", "renamed_away"
                )
        from repro.errors import ConnectionError

        with pytest.raises(ConnectionError):
            view_object_from_dict(stripped, data)

    def test_orphan_nodes(self, omega, university_graph):
        data = view_object_to_dict(omega)
        for entry in data["nodes"]:
            if entry.get("parent") == "COURSES":
                entry["parent"] = "NOWHERE"
        with pytest.raises(ViewObjectError, match="orphan"):
            view_object_from_dict(university_graph, data)

    def test_two_roots(self, omega, university_graph):
        data = view_object_to_dict(omega)
        for entry in data["nodes"]:
            entry.pop("parent", None)
            entry.pop("path", None)
        with pytest.raises(ViewObjectError, match="one root"):
            view_object_from_dict(university_graph, data)


class TestPolicyRoundTrip:
    def test_round_trip(self):
        policy = TranslatorPolicy(allow_deletion=False)
        policy.set_relation(
            "DEPARTMENT",
            RelationPolicy(
                can_modify=False,
                can_insert=False,
                on_reference_delete=ReferenceRepair.PROHIBIT,
            ),
        )
        policy.set_relation(
            "COURSES", RelationPolicy(allow_merge_on_key_conflict=True)
        )
        rebuilt = policy_from_dict(policy_to_dict(policy))
        assert not rebuilt.allow_deletion
        assert rebuilt.allow_insertion
        dept = rebuilt.for_relation("DEPARTMENT")
        assert not dept.can_modify
        assert dept.on_reference_delete is ReferenceRepair.PROHIBIT
        assert rebuilt.for_relation("COURSES").allow_merge_on_key_conflict

    def test_bad_format(self):
        with pytest.raises(ViewObjectError):
            policy_from_dict({"format": 0})

    def test_authorized_users_round_trip(self):
        policy = TranslatorPolicy(authorized_users=["dba", "registrar"])
        rebuilt = policy_from_dict(policy_to_dict(policy))
        assert rebuilt.authorized_users == {"dba", "registrar"}
        open_policy = policy_from_dict(policy_to_dict(TranslatorPolicy()))
        assert open_policy.authorized_users is None


class TestPenguinCatalog:
    def test_catalog_round_trip(self, university_graph):
        from repro.penguin import Penguin
        from repro.workloads.figures import course_info_object
        from repro.workloads.university import populate_university

        first = Penguin(university_schema())
        populate_university(first.engine)
        first.register_object(course_info_object(first.graph))
        first.choose_translator(
            "course_info", {"modify.DEPARTMENT.allowed": False}
        )
        catalog = first.export_catalog()
        json.dumps(catalog)  # JSON-safe

        second = Penguin(university_schema())
        populate_university(second.engine)
        loaded = second.import_catalog(catalog)
        assert loaded == ["course_info"]
        translator = second.translator("course_info")
        assert not translator.policy.for_relation("DEPARTMENT").can_modify
        # And the loaded object still answers queries.
        assert second.query("course_info", "count(GRADES) >= 0")
