"""Shared fixtures: populated databases and canonical view objects."""

from __future__ import annotations

import time

import pytest

from repro.core.information_metric import InformationMetric
from repro.relational.memory_engine import MemoryEngine
from repro.relational.sqlite_engine import SqliteEngine
from repro.workloads.cad import assembly_object, cad_schema, populate_cad
from repro.workloads.figures import alternate_course_object, course_info_object
from repro.workloads.hospital import (
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)
from repro.workloads.university import populate_university, university_schema


def wait_until(predicate, timeout=5.0):
    """Poll until ``predicate()`` holds.

    Replaces fixed ``time.sleep`` pauses in concurrency tests: the
    follow-up assertion runs only once the watched thread is provably
    in the expected state, so the test cannot race the scheduler.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.001)
    raise AssertionError("condition not reached within timeout")


def make_engine(backend: str):
    """Fresh engine by backend name (used by parametrized fixtures)."""
    if backend == "memory":
        return MemoryEngine()
    if backend == "sqlite":
        return SqliteEngine()
    raise ValueError(backend)


@pytest.fixture(params=["memory", "sqlite"])
def backend(request):
    """Both storage backends; engine-contract tests run on each."""
    return request.param


@pytest.fixture
def university_graph():
    return university_schema()


@pytest.fixture
def university_engine(university_graph):
    engine = MemoryEngine()
    university_graph.install(engine)
    populate_university(engine)
    return engine


@pytest.fixture
def university_sqlite(university_graph):
    engine = SqliteEngine()
    university_graph.install(engine)
    populate_university(engine)
    return engine


@pytest.fixture
def omega(university_graph):
    """ω of Figure 2(c)."""
    return course_info_object(university_graph)


@pytest.fixture
def omega_prime(university_graph):
    """ω′ of Figure 3."""
    return alternate_course_object(university_graph)


@pytest.fixture
def metric():
    return InformationMetric()


@pytest.fixture
def hospital_graph():
    return hospital_schema()


@pytest.fixture
def hospital_engine(hospital_graph):
    engine = MemoryEngine()
    hospital_graph.install(engine)
    populate_hospital(engine)
    return engine


@pytest.fixture
def chart(hospital_graph):
    return patient_chart_object(hospital_graph)


@pytest.fixture
def cad_graph():
    return cad_schema()


@pytest.fixture
def cad_engine(cad_graph):
    engine = MemoryEngine()
    cad_graph.install(engine)
    populate_cad(engine)
    return engine


@pytest.fixture
def bom(cad_graph):
    return assembly_object(cad_graph)
