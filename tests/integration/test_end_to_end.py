"""End-to-end scenarios across workloads and backends."""

import copy


from repro.core.updates.translator import Translator
from repro.dialog.answers import ConstantAnswers
from repro.dialog.drivers import choose_translator
from repro.structural.integrity import IntegrityChecker


class TestHospitalScenario:
    """A patient chart evolves through a sequence of updates."""

    def test_chart_lifecycle(self, chart, hospital_engine, hospital_graph):
        translator = Translator(chart, verify_integrity=True)
        checker = IntegrityChecker(hospital_graph)

        # 1. Admit a new patient with one visit and a diagnosis.
        translator.insert(
            hospital_engine,
            {
                "patient_id": 9001,
                "name": "New Patient",
                "birth_year": 1970,
                "ward_name": "ICU",
                "VISIT": [
                    {
                        "patient_id": 9001,
                        "visit_no": 1,
                        "visit_date": "1991-05-29",
                        "physician_id": 9000,
                        "reason": "checkup",
                        "DIAGNOSIS": [
                            {
                                "patient_id": 9001,
                                "visit_no": 1,
                                "diag_no": 1,
                                "code": "hypertension",
                                "severity": "mild",
                            }
                        ],
                        "PRESCRIPTION": [],
                        "LAB_RESULT": [],
                        "PHYSICIAN": [
                            {
                                "physician_id": 9000,
                                "name": "Dr. #9000",
                                "specialty": "cardiology",
                            }
                        ],
                    }
                ],
            },
        )
        assert hospital_engine.get("PATIENT", (9001,)) is not None
        assert checker.is_consistent(hospital_engine)

        # 2. Add a prescription through a partial insertion.
        translator.insert_component(
            hospital_engine,
            (9001,),
            "PRESCRIPTION",
            {
                "patient_id": 9001,
                "visit_no": 1,
                "rx_no": 1,
                "med_id": "MED-01",
                "days": 10,
            },
        )
        assert hospital_engine.get("PRESCRIPTION", (9001, 1, 1)) is not None

        # 3. Replace: second visit appended via full replacement.
        old = translator.instantiate(hospital_engine, (9001,))
        new = copy.deepcopy(old.to_dict())
        new["VISIT"].append(
            {
                "patient_id": 9001,
                "visit_no": 2,
                "visit_date": "1991-06-15",
                "physician_id": 9001,
                "reason": "followup",
                "DIAGNOSIS": [],
                "PRESCRIPTION": [],
                "LAB_RESULT": [],
                "PHYSICIAN": [],
            }
        )
        translator.replace(hospital_engine, old, new)
        assert hospital_engine.get("VISIT", (9001, 2)) is not None
        assert checker.is_consistent(hospital_engine)

        # 4. Discharge: complete deletion cascades the whole chart.
        translator.delete(hospital_engine, key=(9001,))
        assert hospital_engine.get("PATIENT", (9001,)) is None
        assert hospital_engine.find_by("VISIT", ("patient_id",), (9001,)) == []
        assert checker.is_consistent(hospital_engine)


class TestCadScenario:
    def test_assembly_rekey(self, bom, cad_engine, cad_graph):
        """Renaming an assembly propagates to components and the
        released-assembly subset tuple."""
        translator = Translator(bom, verify_integrity=True)
        released = next(iter(cad_engine.scan("RELEASED_ASSEMBLY")))[0]
        old = translator.instantiate(cad_engine, (released,))
        new = copy.deepcopy(old.to_dict())
        new["asm_id"] = "ASM-RENAMED"
        for component in new.get("COMPONENT", []):
            component["asm_id"] = "ASM-RENAMED"
        for release in new.get("RELEASED_ASSEMBLY", []):
            release["asm_id"] = "ASM-RENAMED"
        translator.replace(cad_engine, old, new)
        assert cad_engine.get("ASSEMBLY", (released,)) is None
        assert cad_engine.get("ASSEMBLY", ("ASM-RENAMED",)) is not None
        assert cad_engine.get("RELEASED_ASSEMBLY", ("ASM-RENAMED",)) is not None
        assert cad_engine.find_by("COMPONENT", ("asm_id",), (released,)) == []
        assert IntegrityChecker(cad_graph).is_consistent(cad_engine)

    def test_dialog_then_update(self, bom, cad_engine):
        translator, __ = choose_translator(bom, ConstantAnswers(True))
        asm = next(iter(cad_engine.scan("ASSEMBLY")))[0]
        old = translator.instantiate(cad_engine, (asm,))
        new = copy.deepcopy(old.to_dict())
        new["project"] = "renamed-project"
        translator.replace(cad_engine, old, new)
        assert cad_engine.get("ASSEMBLY", (asm,))[2] == "renamed-project"


class TestCrossBackendEquivalence:
    def test_same_final_state(
        self, university_graph, university_engine, university_sqlite
    ):
        """An identical update sequence leaves both backends in the same
        logical state."""
        from repro.workloads.figures import course_info_object

        omega = course_info_object(university_graph)
        for engine in (university_engine, university_sqlite):
            translator = Translator(omega)
            cid = sorted(v[0] for v in engine.scan("COURSES"))[0]
            old = translator.instantiate(engine, (cid,))
            new = copy.deepcopy(old.to_dict())
            new["title"] = "Cross Backend"
            translator.replace(engine, old, new)
            translator.insert(
                engine,
                {
                    "course_id": "XB1",
                    "title": "t",
                    "units": 1,
                    "level": "graduate",
                    "dept_name": "Physics",
                },
            )
            translator.delete(
                engine, key=(sorted(v[0] for v in engine.scan("COURSES"))[1],)
            )
        for relation in university_graph.relation_names:
            assert sorted(university_engine.scan(relation)) == sorted(
                university_sqlite.scan(relation)
            ), relation
