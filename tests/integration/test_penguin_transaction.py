"""Atomic multi-operation sessions via Penguin.transaction()."""

import pytest

from repro.errors import UpdateRejectedError
from repro.penguin import Penguin
from repro.workloads.figures import course_info_object
from repro.workloads.university import populate_university, university_schema


@pytest.fixture
def penguin():
    session = Penguin(university_schema())
    populate_university(session.engine)
    session.register_object(course_info_object(session.graph))
    return session


def some_courses(penguin, n):
    return sorted(v[0] for v in penguin.engine.scan("COURSES"))[:n]


def canonical(value):
    """Order-insensitive form of ``Instance.to_dict`` output: rollback
    restores rows at the end of their tables, so component lists may
    come back reordered (true for dynamic instantiation too)."""
    if isinstance(value, dict):
        return tuple(sorted((k, canonical(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(sorted(canonical(v) for v in value))
    return value


def test_commit_on_success(penguin):
    first, second = some_courses(penguin, 2)
    with penguin.transaction():
        penguin.delete("course_info", (first,))
        penguin.delete("course_info", (second,))
    assert penguin.engine.get("COURSES", (first,)) is None
    assert penguin.engine.get("COURSES", (second,)) is None


def test_rollback_on_error(penguin):
    first, __ = some_courses(penguin, 2)
    with pytest.raises(UpdateRejectedError):
        with penguin.transaction():
            penguin.delete("course_info", (first,))
            # Second operation fails: identical pivot already exists.
            penguin.insert(
                "course_info",
                {
                    "course_id": some_courses(penguin, 2)[1],
                    "title": "clash",
                    "units": 1,
                    "level": "graduate",
                    "dept_name": "Physics",
                },
            )
    # The earlier deletion must have rolled back too.
    assert penguin.engine.get("COURSES", (first,)) is not None
    assert penguin.is_consistent()


def test_rollback_rolls_materialized_cache_back(penguin):
    """No stale instance survives an aborted translation: the changelog
    truncate performed by rollback must rewind the cache too."""
    view = penguin.materialize("course_info")
    before = {i.key: canonical(i.to_dict()) for i in penguin.query("course_info")}
    first, second = some_courses(penguin, 2)
    with pytest.raises(UpdateRejectedError):
        with penguin.transaction():
            penguin.delete("course_info", (first,))
            # Mid-transaction read: the cache absorbs the uncommitted
            # deletion, making the rollback's cache rewind observable.
            assert (first,) not in {i.key for i in penguin.query("course_info")}
            penguin.insert(
                "course_info",
                {
                    "course_id": second,
                    "title": "clash",
                    "units": 1,
                    "level": "graduate",
                    "dept_name": "Physics",
                },
            )
    assert view.stats.rollbacks == 1
    after = {i.key: canonical(i.to_dict()) for i in penguin.query("course_info")}
    assert after == before
    assert penguin.get("course_info", (first,)) is not None
    assert view.staleness() == 0


def test_commit_keeps_materialized_cache_consistent(penguin):
    penguin.materialize("course_info", policy="eager")
    first, second = some_courses(penguin, 2)
    penguin.query("course_info")
    with penguin.transaction():
        penguin.delete("course_info", (first,))
        penguin.delete("course_info", (second,))
    keys = {i.key for i in penguin.query("course_info")}
    assert (first,) not in keys and (second,) not in keys
    assert keys == {
        (v[0],) for v in penguin.engine.scan("COURSES")
    }


def test_swap_pattern(penguin):
    """Move all grades of one course onto a fresh course atomically."""
    cid = next(
        v[0]
        for v in penguin.engine.scan("COURSES")
        if penguin.engine.find_by("GRADES", ("course_id",), (v[0],))
    )
    old = penguin.get("course_info", (cid,))
    with penguin.transaction():
        new = old.to_dict()
        new["course_id"] = "SWAP1"
        for grade in new.get("GRADES", []):
            grade["course_id"] = "SWAP1"
        for entry in new.get("CURRICULUM", []):
            entry["course_id"] = "SWAP1"
        penguin.replace("course_info", old, new)
    assert penguin.engine.get("COURSES", ("SWAP1",)) is not None
    assert penguin.is_consistent()
