"""Failure injection: translations must be all-or-nothing under faults.

A wrapper engine fails after a configurable number of mutations; at
every possible failure point, the translator must roll back completely
and leave the database byte-identical and structurally consistent.
"""

import copy

import pytest

from repro.core.updates.translator import Translator
from repro.relational.memory_engine import MemoryEngine
from repro.structural.integrity import IntegrityChecker
from repro.workloads.figures import course_info_object
from repro.workloads.university import (
    UniversityConfig,
    populate_university,
    university_schema,
)

pytestmark = pytest.mark.chaos


class InjectedFault(Exception):
    """The synthetic storage failure."""


class FaultyEngine(MemoryEngine):
    """Fails the Nth mutation (insert/delete/replace) after arming."""

    def __init__(self):
        super().__init__()
        self._fail_at = None
        self._mutations = 0

    def arm(self, fail_at: int) -> None:
        self._fail_at = fail_at
        self._mutations = 0

    def _tick(self) -> None:
        if self._fail_at is None:
            return
        self._mutations += 1
        if self._mutations >= self._fail_at:
            self._fail_at = None
            raise InjectedFault(f"injected fault at mutation {self._mutations}")

    def insert(self, name, values):
        self._tick()
        return super().insert(name, values)

    def delete(self, name, key):
        self._tick()
        return super().delete(name, key)

    def replace(self, name, key, values):
        self._tick()
        return super().replace(name, key, values)


@pytest.fixture
def setup():
    graph = university_schema()
    engine = FaultyEngine()
    graph.install(engine)
    populate_university(
        engine, UniversityConfig(students=12, courses=8)
    )
    omega = course_info_object(graph)
    return graph, engine, Translator(omega)


def snapshot(engine, graph):
    return {name: sorted(engine.scan(name)) for name in graph.relation_names}


def connected_course(engine):
    for values in engine.scan("COURSES"):
        if engine.find_by("GRADES", ("course_id",), (values[0],)):
            return values[0]
    raise AssertionError


def run_at_every_fault_point(graph, engine, action, max_points=50):
    """Run ``action`` with a fault injected at every mutation index; the
    database must be unchanged after each failure. Returns the number of
    mutations the fault-free run performs."""
    checker = IntegrityChecker(graph)
    baseline = snapshot(engine, graph)
    fault_points = 0
    for index in range(1, max_points + 1):
        engine.arm(index)
        try:
            action()
        except InjectedFault:
            fault_points += 1
            assert snapshot(engine, graph) == baseline, (
                f"fault at mutation {index} leaked state"
            )
            assert checker.is_consistent(engine)
            assert not engine.in_transaction
            continue
        # The action completed before the fault fired: undo it for the
        # next iteration by restoring from the snapshot is impossible —
        # instead we stop; all earlier indices covered every real point.
        engine._fail_at = None
        return index - 1
    raise AssertionError("action never completed")


def test_deletion_atomic_under_faults(setup):
    graph, engine, translator = setup
    cid = connected_course(engine)
    points = run_at_every_fault_point(
        graph, engine, lambda: translator.delete(engine, key=(cid,))
    )
    assert points >= 2  # deletion is genuinely multi-operation
    assert engine.get("COURSES", (cid,)) is None  # final run applied


def test_insertion_atomic_under_faults(setup):
    graph, engine, translator = setup
    student = next(iter(engine.scan("STUDENT")))
    instance = {
        "course_id": "FAULT1",
        "title": "t",
        "units": 1,
        "level": "graduate",
        "dept_name": "Brand New Department",
        "GRADES": [
            {
                "course_id": "FAULT1",
                "student_id": student[0],
                "grade": "A",
                "STUDENT": [
                    {
                        "person_id": student[0],
                        "degree_program": student[1],
                        "year": student[2],
                    }
                ],
            }
        ],
    }
    points = run_at_every_fault_point(
        graph,
        engine,
        lambda: translator.insert(engine, copy.deepcopy(instance)),
    )
    assert points >= 2
    assert engine.get("COURSES", ("FAULT1",)) is not None


def test_replacement_atomic_under_faults(setup):
    graph, engine, translator = setup
    cid = connected_course(engine)

    def action():
        old = translator.instantiate(engine, (cid,))
        new = copy.deepcopy(old.to_dict())
        new["course_id"] = "FAULTKEY"
        for grade in new.get("GRADES", []):
            grade["course_id"] = "FAULTKEY"
        for entry in new.get("CURRICULUM", []):
            entry["course_id"] = "FAULTKEY"
        translator.replace(engine, old, new)

    points = run_at_every_fault_point(graph, engine, action)
    assert points >= 2
    assert engine.get("COURSES", ("FAULTKEY",)) is not None
