"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_demo_prints_all_figures(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "Figure 2(b)" in out
    assert "PEOPLE#2" in out  # the duplicated node
    assert "Figure 3" in out
    assert "Figure 4" in out
    assert (
        "Is replacement of tuples in an object instance allowed? <YES>" in out
    )


def test_dump_and_check_round_trip(tmp_path, capsys):
    assert main(["dump", "--workload", "university", str(tmp_path)]) == 0
    assert (tmp_path / "schema.json").exists()
    assert (tmp_path / "data.json").exists()
    json.loads((tmp_path / "schema.json").read_text())
    assert main(["check", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "structural integrity: OK" in out


def test_check_detects_corruption(tmp_path, capsys):
    main(["dump", "--workload", "university", str(tmp_path)])
    data = json.loads((tmp_path / "data.json").read_text())
    for entry in data["relations"]:
        if entry["schema"]["name"] == "GRADES":
            entry["rows"].append(["GHOST-COURSE", 999999, "A"])
    (tmp_path / "data.json").write_text(json.dumps(data))
    assert main(["check", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "violation" in out


def test_query_command(capsys):
    assert main(
        [
            "query",
            "--workload",
            "university",
            "--object",
            "course_info",
            "level = 'graduate' and count(STUDENT) < 5",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "1 instance(s)" in out
    assert "(COURSES:" in out


def test_query_unknown_object(capsys):
    assert main(
        ["query", "--workload", "cad", "--object", "nope", "units = 1"]
    ) == 2
    err = capsys.readouterr().err
    assert "assembly_bom" in err


@pytest.mark.parametrize("workload", ["university", "hospital", "cad"])
def test_dump_all_workloads(tmp_path, workload):
    target = tmp_path / workload
    assert main(["dump", "--workload", workload, str(target)]) == 0
    assert main(["check", str(target)]) == 0


def test_materialize_command(capsys):
    assert main(
        ["materialize", "--queries", "10", "--update-every", "4"]
    ) == 0
    out = capsys.readouterr().out
    assert "dynamic instantiation" in out
    assert "speedup" in out
    assert "hits" in out
    assert "staleness" in out


def test_materialize_default_object_per_workload(capsys):
    assert main(
        [
            "materialize",
            "--workload",
            "hospital",
            "--policy",
            "eager",
            "--queries",
            "5",
            "--update-every",
            "0",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "object=patient_chart" in out
    assert "eager" in out


def test_materialize_unknown_object(capsys):
    assert main(
        ["materialize", "--workload", "cad", "--object", "nope"]
    ) == 2
    assert "assembly_bom" in capsys.readouterr().err


def test_chaos_command(capsys):
    assert main(["chaos", "--seed", "0", "--ops", "60", "--patients", "2"]) == 0
    out = capsys.readouterr().out
    assert "chaos campaign (seed=0)" in out
    assert "crash sweep" in out
    assert "transient bulk" in out
    assert "degraded serving" in out
    assert "all held" in out
