"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_demo_prints_all_figures(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "Figure 2(b)" in out
    assert "PEOPLE#2" in out  # the duplicated node
    assert "Figure 3" in out
    assert "Figure 4" in out
    assert (
        "Is replacement of tuples in an object instance allowed? <YES>" in out
    )


def test_dump_and_check_round_trip(tmp_path, capsys):
    assert main(["dump", "--workload", "university", str(tmp_path)]) == 0
    assert (tmp_path / "schema.json").exists()
    assert (tmp_path / "data.json").exists()
    json.loads((tmp_path / "schema.json").read_text())
    assert main(["check", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "structural integrity: OK" in out


def test_check_detects_corruption(tmp_path, capsys):
    main(["dump", "--workload", "university", str(tmp_path)])
    data = json.loads((tmp_path / "data.json").read_text())
    for entry in data["relations"]:
        if entry["schema"]["name"] == "GRADES":
            entry["rows"].append(["GHOST-COURSE", 999999, "A"])
    (tmp_path / "data.json").write_text(json.dumps(data))
    assert main(["check", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "violation" in out


def test_query_command(capsys):
    assert main(
        [
            "query",
            "--workload",
            "university",
            "--object",
            "course_info",
            "level = 'graduate' and count(STUDENT) < 5",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "1 instance(s)" in out
    assert "(COURSES:" in out


def test_query_unknown_object(capsys):
    assert main(
        ["query", "--workload", "cad", "--object", "nope", "units = 1"]
    ) == 2
    err = capsys.readouterr().err
    assert "assembly_bom" in err


@pytest.mark.parametrize("workload", ["university", "hospital", "cad"])
def test_dump_all_workloads(tmp_path, workload):
    target = tmp_path / workload
    assert main(["dump", "--workload", workload, str(target)]) == 0
    assert main(["check", str(target)]) == 0


def test_materialize_command(capsys):
    assert main(
        ["materialize", "--queries", "10", "--update-every", "4"]
    ) == 0
    out = capsys.readouterr().out
    assert "dynamic instantiation" in out
    assert "speedup" in out
    assert "hits" in out
    assert "staleness" in out


def test_materialize_default_object_per_workload(capsys):
    assert main(
        [
            "materialize",
            "--workload",
            "hospital",
            "--policy",
            "eager",
            "--queries",
            "5",
            "--update-every",
            "0",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "object=patient_chart" in out
    assert "eager" in out


def test_materialize_unknown_object(capsys):
    assert main(
        ["materialize", "--workload", "cad", "--object", "nope"]
    ) == 2
    assert "assembly_bom" in capsys.readouterr().err


def test_trace_command_emits_explain_and_span_tree(capsys):
    assert main(["trace", "--no-durations"]) == 0
    out = capsys.readouterr().out
    # The EXPLAIN block, computed before anything executes.
    assert "=== update EXPLAIN (computed without executing) ===" in out
    assert "update translation on 'course_info'" in out
    assert "INSERT COURSES" in out
    # The span trees for the Figure-4 workload: query, insert, get, delete.
    assert "=== span trees (Figure-4 workload) ===" in out
    for name in ("translate", "validate", "propagate", "commit", "query"):
        assert name in out, f"span {name!r} missing from trace output"
    assert "op=insert" in out
    assert "op=delete" in out
    # Child spans are indented under their roots.
    assert "\n  validate" in out


def test_trace_command_jsonl_export(tmp_path, capsys):
    target = tmp_path / "spans.jsonl"
    assert main(["trace", "--jsonl", str(target)]) == 0
    out = capsys.readouterr().out
    assert f"root span(s) to {target}" in out
    lines = target.read_text().splitlines()
    assert lines, "JSONL export wrote no spans"
    names = [json.loads(line)["name"] for line in lines]
    assert "translate" in names


def test_trace_command_slow_log(capsys):
    # A zero threshold makes every root span "slow".
    assert main(["trace", "--slow-threshold", "0"]) == 0
    out = capsys.readouterr().out
    assert "=== slow operations" in out


def test_metrics_command_text_exposition(capsys):
    assert main(["metrics"]) == 0
    out = capsys.readouterr().out
    assert out.strip(), "metrics snapshot was empty"
    assert "translations_total" in out
    assert "plan_ops" in out
    assert '# TYPE' in out


def test_metrics_command_json_snapshot(capsys):
    assert main(["metrics", "--json"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["counters"], "no counters recorded on the Figure-4 workload"
    totals = {
        key: value
        for key, value in snap["counters"].items()
        if key.startswith("translations_total")
    }
    assert sum(totals.values()) >= 2  # the insert and the delete


def test_chaos_command(capsys):
    assert main(["chaos", "--seed", "0", "--ops", "60", "--patients", "2"]) == 0
    out = capsys.readouterr().out
    assert "chaos campaign (seed=0)" in out
    assert "crash sweep" in out
    assert "transient bulk" in out
    assert "degraded serving" in out
    assert "all held" in out
