"""Crash-point sweep: kill the process at every op index, then recover.

The ISSUE's acceptance scenario: a multi-relation patient-chart deletion
plan is applied *non-atomically* (each operation autocommits, modelling
a storage layer without multi-operation atomicity) under journal
protection, with a :class:`SimulatedCrash` injected at the k-th
mutation for every k. Recovery from the journaled before/after images
must leave the database exactly all-applied or all-reverted — never
torn — with structural integrity intact.
"""

import pytest

from repro.core.updates.translator import Translator
from repro.penguin import Penguin
from repro.relational.faults import FaultInjectingEngine, FaultPlan, SimulatedCrash
from repro.relational.journal import (
    ABORTED,
    COMMITTED,
    MemoryJournal,
    apply_journaled,
    recover,
)
from repro.relational.memory_engine import MemoryEngine
from repro.structural.integrity import IntegrityChecker
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)

pytestmark = pytest.mark.chaos

PATIENTS = 2


def fresh_hospital():
    graph = hospital_schema()
    engine = MemoryEngine()
    graph.install(engine)
    populate_hospital(engine, HospitalConfig(patients=PATIENTS))
    return graph, engine, patient_chart_object(graph)


def snapshot(engine):
    return {name: set(engine.scan(name)) for name in engine.relation_names()}


def _sweep_bounds():
    """(patient id, plan length) of the chart whose deletion we sweep."""
    _, engine, view_object = fresh_hospital()
    pid = min(row[0] for row in engine.scan("PATIENT"))
    plan = Translator(view_object).preview_delete(engine, key=(pid,))
    return pid, len(plan)


PID, PLAN_LEN = _sweep_bounds()


class TestNonAtomicCrashSweep:
    """Torn prefixes: each op autocommits, so only the journal can repair."""

    def test_plan_is_multi_relation(self):
        _, engine, view_object = fresh_hospital()
        plan = Translator(view_object).preview_delete(engine, key=(PID,))
        relations = {op.relation for op in plan.operations}
        assert len(relations) >= 3  # patient, visits, and their children
        assert len(plan) == PLAN_LEN >= 5

    @pytest.mark.parametrize("k", range(1, PLAN_LEN + 1))
    def test_crash_at_op_k_recovers_to_all_reverted(self, k):
        graph, engine, view_object = fresh_hospital()
        plan = Translator(view_object).preview_delete(engine, key=(PID,))
        before = snapshot(engine)
        journal = MemoryJournal()
        faulty = FaultInjectingEngine(
            engine, FaultPlan().crash_at("mutation", at=k)
        )
        with pytest.raises(SimulatedCrash):
            apply_journaled(faulty, journal, plan, atomic=False)

        report = recover(engine, journal)
        assert report.clean
        assert snapshot(engine) == before
        assert {e.status for e in journal.entries()} == {ABORTED}
        assert not IntegrityChecker(graph).check(engine)

    def test_no_crash_control_point_commits(self):
        """One index past the end: the plan completes and stays applied."""
        graph, engine, view_object = fresh_hospital()
        plan = Translator(view_object).preview_delete(engine, key=(PID,))
        journal = MemoryJournal()
        faulty = FaultInjectingEngine(
            engine, FaultPlan().crash_at("mutation", at=PLAN_LEN + 1)
        )
        apply_journaled(faulty, journal, plan, atomic=False)
        assert {e.status for e in journal.entries()} == {COMMITTED}
        assert engine.get("PATIENT", (PID,)) is None
        assert recover(engine, journal).pending_resolved == 0
        assert not IntegrityChecker(graph).check(engine)

    def test_crash_during_atomic_commit_reverts(self):
        """Crash inside commit: the rollback already undid the batch;
        recovery just has to notice nothing moved and mark ABORTED."""
        graph, engine, view_object = fresh_hospital()
        plan = Translator(view_object).preview_delete(engine, key=(PID,))
        before = snapshot(engine)
        journal = MemoryJournal()
        faulty = FaultInjectingEngine(
            engine, FaultPlan().crash_at("commit", at=1)
        )
        with pytest.raises(SimulatedCrash):
            apply_journaled(faulty, journal, plan, atomic=True)
        report = recover(engine, journal)
        assert report.clean
        assert snapshot(engine) == before
        assert {e.status for e in journal.entries()} == {ABORTED}


class TestTranslationCrash:
    """Crash inside eager translation: the open transaction is discarded."""

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_session_recovers_after_mid_translation_crash(self, k):
        graph, engine, view_object = fresh_hospital()
        faulty = FaultInjectingEngine(
            engine, FaultPlan().crash_at("mutation", at=k)
        )
        session = Penguin(
            graph, engine=faulty, install=False, journal=MemoryJournal()
        )
        session.register_object(view_object)
        before = snapshot(engine)
        with pytest.raises(SimulatedCrash):
            session.delete("patient_chart", (PID,))
        report = session.recover()
        assert report.clean
        assert report.transactions_discarded >= 1
        assert snapshot(engine) == before
        assert not IntegrityChecker(graph).check(engine)

    def test_recovery_runs_at_startup(self, tmp_path):
        """A new session over a journal with PENDING entries heals first."""
        from repro.relational.journal import FileJournal

        path = tmp_path / "plans.journal"
        graph, engine, view_object = fresh_hospital()
        plan = Translator(view_object).preview_delete(engine, key=(PID,))
        before = snapshot(engine)
        journal = FileJournal(path)
        faulty = FaultInjectingEngine(
            engine, FaultPlan().crash_at("mutation", at=3)
        )
        with pytest.raises(SimulatedCrash):
            apply_journaled(faulty, journal, plan, atomic=False)
        journal.close()  # process dies with the entry PENDING

        reopened = FileJournal(path)
        session = Penguin(
            graph, engine=engine, install=False, journal=reopened
        )
        assert session.recovery_report is not None
        assert session.recovery_report.reverted
        assert snapshot(engine) == before
        reopened.close()
