"""The Penguin facade: full workflow in one session."""

import pytest

from repro.errors import UpdateRejectedError, ViewObjectError
from repro.penguin import Penguin
from repro.workloads.figures import course_info_object
from repro.workloads.university import populate_university, university_schema


@pytest.fixture
def penguin():
    session = Penguin(university_schema())
    populate_university(session.engine)
    return session


@pytest.fixture
def loaded(penguin):
    penguin.register_object(course_info_object(penguin.graph))
    return penguin


class TestDefinition:
    def test_define_object(self, penguin):
        view_object = penguin.define_object(
            "mini",
            pivot="COURSES",
            selections={"COURSES": ("course_id", "title", "dept_name")},
        )
        assert view_object.complexity == 1
        assert penguin.object("mini") is view_object
        assert "mini" in penguin.object_names

    def test_duplicate_name_rejected(self, loaded):
        with pytest.raises(ViewObjectError):
            loaded.define_object(
                "course_info",
                pivot="COURSES",
                selections={"COURSES": ("course_id",)},
            )

    def test_unknown_object(self, penguin):
        with pytest.raises(ViewObjectError):
            penguin.object("nope")


class TestQueries:
    def test_query_text(self, loaded):
        results = loaded.query("course_info", "level = 'graduate'")
        assert results
        assert all(i.root.values["level"] == "graduate" for i in results)

    def test_query_all(self, loaded):
        assert len(loaded.query("course_info")) == loaded.engine.count(
            "COURSES"
        )

    def test_get_by_key(self, loaded):
        course_id = next(iter(loaded.engine.scan("COURSES")))[0]
        instance = loaded.get("course_info", (course_id,))
        assert instance.key == (course_id,)
        assert loaded.get("course_info", ("GHOST",)) is None


class TestUpdates:
    def test_insert_delete_cycle(self, loaded):
        data = {
            "course_id": "PG1",
            "title": "Facade Test",
            "units": 2,
            "level": "graduate",
            "dept_name": "Physics",
        }
        loaded.insert("course_info", data)
        assert loaded.engine.get("COURSES", ("PG1",)) is not None
        loaded.delete("course_info", ("PG1",))
        assert loaded.engine.get("COURSES", ("PG1",)) is None

    def test_replace(self, loaded):
        course_id = next(iter(loaded.engine.scan("COURSES")))[0]
        old = loaded.get("course_info", (course_id,))
        new = old.to_dict()
        new["title"] = "Facade Replaced"
        loaded.replace("course_info", old, new)
        assert loaded.engine.get("COURSES", (course_id,))[1] == "Facade Replaced"

    def test_consistency_check(self, loaded):
        assert loaded.is_consistent()
        assert loaded.check_integrity() == []


class TestDialogIntegration:
    def test_choose_translator_with_mapping(self, loaded):
        translator, transcript = loaded.choose_translator(
            "course_info", {"modify.DEPARTMENT.allowed": False}
        )
        assert len(transcript) > 0
        course_id = next(iter(loaded.engine.scan("COURSES")))[0]
        old = loaded.get("course_info", (course_id,))
        new = old.to_dict()
        new["dept_name"] = "Blocked Dept"
        new["DEPARTMENT"] = [
            {"dept_name": "Blocked Dept", "building": "X"}
        ]
        with pytest.raises(UpdateRejectedError):
            loaded.replace("course_info", old, new)

    def test_constant_false_blocks_everything(self, loaded):
        from repro.errors import LocalValidationError

        loaded.choose_translator("course_info", False)
        with pytest.raises(LocalValidationError):
            loaded.delete(
                "course_info",
                (next(iter(loaded.engine.scan("COURSES")))[0],),
            )

    def test_set_policy_programmatically(self, loaded):
        from repro.core.updates.policy import TranslatorPolicy

        translator = loaded.set_policy(
            "course_info", TranslatorPolicy.read_only()
        )
        assert loaded.translator("course_info") is translator


class TestBackends:
    def test_sqlite_backend(self):
        session = Penguin(university_schema(), backend="sqlite")
        populate_university(session.engine)
        session.register_object(course_info_object(session.graph))
        results = session.query("course_info", "count(STUDENT) < 5")
        assert isinstance(results, list)
        assert session.is_consistent()

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            Penguin(university_schema(), backend="oracle")
