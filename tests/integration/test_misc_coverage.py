"""Direct tests for smaller public entry points."""


import pytest

from repro.core.updates import global_integrity
from repro.core.updates.context import TranslationContext
from repro.core.updates.operations import PartialDeletion
from repro.core.updates.policy import TranslatorPolicy
from repro.core.updates.translator import Translator
from repro.relational.csv_io import dump_csv, load_csv
from repro.relational.sqlite_engine import SqliteEngine
from repro.structural.connections import Traversal
from repro.structural.integrity import connection_entry


def test_maintain_all_runs_every_pass(omega, university_engine):
    """maintain_all = deletions, then key changes, then insertions."""
    ctx = TranslationContext(omega, university_engine, TranslatorPolicy())
    course = next(
        v
        for v in university_engine.scan("COURSES")
        if university_engine.find_by("GRADES", ("course_id",), (v[0],))
    )
    ctx.delete("COURSES", (course[0],), reason="seed")
    global_integrity.maintain_all(ctx)
    assert (
        university_engine.find_by("GRADES", ("course_id",), (course[0],))
        == []
    )


def test_connection_entry(university_graph, university_engine):
    connection = university_graph.connection("courses_grades")
    course = next(iter(university_engine.scan("COURSES")))
    entry = connection_entry(
        university_engine, "COURSES", course, connection.source_attributes
    )
    assert entry == (course[0],)


def test_traversal_end_attributes(university_graph):
    connection = university_graph.connection("student_grades")
    forward = Traversal(connection, True)
    assert forward.start_attributes == ("person_id",)
    assert forward.end_attributes == ("student_id",)
    inverse = forward.inverse()
    assert inverse.start_attributes == ("student_id",)
    assert inverse.end_attributes == ("person_id",)


def test_csv_stream_variants(university_engine, tmp_path):
    path = tmp_path / "grades.csv"
    with open(path, "w", newline="") as stream:
        count = dump_csv(university_engine, "GRADES", stream)
    assert count == university_engine.count("GRADES")

    from repro.relational.memory_engine import MemoryEngine

    fresh = MemoryEngine()
    fresh.create_relation(university_engine.schema("GRADES"))
    with open(path, newline="") as stream:
        loaded = load_csv(fresh, "GRADES", stream)
    assert loaded == count
    assert sorted(fresh.scan("GRADES")) == sorted(
        university_engine.scan("GRADES")
    )


def test_sqlite_close():
    engine = SqliteEngine()
    engine.close()
    with pytest.raises(Exception):
        engine._connection.execute("SELECT 1")


def test_partial_deletion_request_dispatch(omega, university_engine):
    translator = Translator(omega)
    course = next(
        v
        for v in university_engine.scan("COURSES")
        if university_engine.find_by("GRADES", ("course_id",), (v[0],))
    )
    grade = university_engine.find_by(
        "GRADES", ("course_id",), (course[0],)
    )[0]
    instance = translator.instantiate(university_engine, (course[0],))
    translator.apply(
        university_engine,
        PartialDeletion(
            instance,
            "GRADES",
            {
                "course_id": grade[0],
                "student_id": grade[1],
                "grade": grade[2],
            },
        ),
    )
    assert university_engine.get("GRADES", (grade[0], grade[1])) is None
