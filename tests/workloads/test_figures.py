"""Figure 2(c) and Figure 3 canonical objects."""

from repro.core.dependency_island import analyze_island
from repro.workloads.figures import alternate_course_object, course_info_object


class TestOmega:
    def test_matches_figure_2c(self, university_graph):
        omega = course_info_object(university_graph)
        assert omega.complexity == 5
        assert set(omega.tree.node_ids) == {
            "COURSES", "DEPARTMENT", "CURRICULUM", "GRADES", "STUDENT",
        }

    def test_student_under_grades(self, university_graph):
        omega = course_info_object(university_graph)
        assert omega.tree.parent("STUDENT").relation == "GRADES"

    def test_section5_island(self, university_graph):
        analysis = analyze_island(course_info_object(university_graph))
        assert analysis.island_nodes == ["COURSES", "GRADES"]
        assert analysis.peninsula_nodes == ["CURRICULUM"]


class TestOmegaPrime:
    def test_matches_figure_3(self, university_graph):
        omega_prime = alternate_course_object(university_graph)
        assert omega_prime.complexity == 3
        assert set(omega_prime.tree.node_ids) == {
            "COURSES", "FACULTY", "STUDENT",
        }

    def test_student_edge_is_two_connections(self, university_graph):
        """'the edge from COURSES to STUDENT is no longer a structural
        connection but rather a path of two connections'."""
        omega_prime = alternate_course_object(university_graph)
        student = omega_prime.tree.node("STUDENT")
        assert len(student.path) == 2
        assert student.path.describe() == "COURSES --* GRADES *-- STUDENT"

    def test_same_pivot_as_omega(self, university_graph):
        omega = course_info_object(university_graph)
        omega_prime = alternate_course_object(university_graph)
        assert omega.pivot_relation == omega_prime.pivot_relation == "COURSES"
