"""The seeded zipfian multi-tenant operation stream."""

import pytest

from repro.workloads.synthetic import WorkloadOp, ZipfianWorkload


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = ZipfianWorkload(population=50, seed=11)
        b = ZipfianWorkload(population=50, seed=11)
        for op_a, op_b in zip(a.ops(200), b.ops(200)):
            assert (op_a.kind, op_a.tenant, op_a.rank, op_a.sequence) == (
                op_b.kind, op_b.tenant, op_b.rank, op_b.sequence
            )

    def test_different_seeds_diverge(self):
        a = [op.rank for op in ZipfianWorkload(50, seed=1).ops(50)]
        b = [op.rank for op in ZipfianWorkload(50, seed=2).ops(50)]
        assert a != b

    def test_sequence_numbers_are_consecutive(self):
        stream = list(ZipfianWorkload(10, seed=3).ops(20))
        assert [op.sequence for op in stream] == list(range(20))


class TestSkew:
    def counts(self, skew, samples=3000):
        workload = ZipfianWorkload(population=100, skew=skew, seed=5)
        counts = [0] * 100
        for _ in range(samples):
            counts[workload.sample_rank()] += 1
        return counts

    def test_head_dominates_at_high_skew(self):
        counts = self.counts(skew=1.4)
        head = sum(counts[:10])
        tail = sum(counts[50:])
        assert head > 5 * max(tail, 1)

    def test_zero_skew_is_roughly_uniform(self):
        counts = self.counts(skew=0.0)
        assert max(counts) < 3 * (sum(counts) / len(counts))

    def test_higher_skew_concentrates_harder(self):
        mild = sum(self.counts(skew=0.5)[:5])
        hot = sum(self.counts(skew=1.5)[:5])
        assert hot > mild

    def test_ranks_stay_in_population(self):
        workload = ZipfianWorkload(population=7, skew=1.1, seed=9)
        assert all(0 <= op.rank < 7 for op in workload.ops(500))

    def test_hot_ranks_are_the_head(self):
        workload = ZipfianWorkload(population=30, seed=1)
        assert workload.hot_ranks(5) == [0, 1, 2, 3, 4]
        assert ZipfianWorkload(3, seed=1).hot_ranks(10) == [0, 1, 2]


class TestMix:
    def test_fractions_hold_over_a_long_stream(self):
        workload = ZipfianWorkload(
            population=50, seed=13,
            read_fraction=0.6, insert_fraction=0.2, delete_fraction=0.1,
        )
        kinds = {"read": 0, "insert": 0, "delete": 0, "update": 0}
        total = 4000
        for op in workload.ops(total):
            kinds[op.kind] += 1
        assert abs(kinds["read"] / total - 0.6) < 0.05
        assert abs(kinds["insert"] / total - 0.2) < 0.05
        assert abs(kinds["delete"] / total - 0.1) < 0.05
        assert kinds["update"] > 0

    def test_tenants_all_appear(self):
        workload = ZipfianWorkload(population=10, seed=2, tenants=4)
        tenants = {op.tenant for op in workload.ops(200)}
        assert tenants == {0, 1, 2, 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianWorkload(population=0)
        with pytest.raises(ValueError):
            ZipfianWorkload(population=5, skew=-1)
        with pytest.raises(ValueError):
            ZipfianWorkload(population=5, read_fraction=1.5)
        with pytest.raises(ValueError):
            # Writes overcommitted: 0.8 reads leaves 0.2 for mutations.
            ZipfianWorkload(
                population=5,
                read_fraction=0.8,
                insert_fraction=0.15,
                delete_fraction=0.15,
            )

    def test_describe_and_repr(self):
        workload = ZipfianWorkload(population=25, skew=1.1, seed=7)
        assert "population=25" in workload.describe()
        op = WorkloadOp("read", tenant=1, rank=3, sequence=9)
        assert "read" in repr(op)
