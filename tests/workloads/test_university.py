"""Figure 1 workload: schema shape and generator determinism."""

import pytest

from repro.relational.memory_engine import MemoryEngine
from repro.structural.connections import ConnectionKind
from repro.structural.integrity import IntegrityChecker
from repro.workloads.university import (
    UniversityConfig,
    populate_university,
    university_schema,
)


@pytest.fixture
def graph():
    return university_schema()


class TestFigure1Shape:
    def test_eight_relations(self, graph):
        assert len(graph.relation_names) == 8

    def test_connection_kinds(self, graph):
        kinds = {}
        for connection in graph.connections:
            kinds.setdefault(connection.kind, []).append(connection.name)
        assert len(kinds[ConnectionKind.OWNERSHIP]) == 2
        assert len(kinds[ConnectionKind.SUBSET]) == 3
        assert len(kinds[ConnectionKind.REFERENCE]) == 4

    def test_people_specializations(self, graph):
        subsets = {
            c.target
            for c in graph.connections_from("PEOPLE", ConnectionKind.SUBSET)
        }
        assert subsets == {"STUDENT", "FACULTY", "STAFF"}

    def test_grades_owned_by_courses_and_students(self, graph):
        owners = {
            c.source
            for c in graph.connections_to("GRADES", ConnectionKind.OWNERSHIP)
        }
        assert owners == {"COURSES", "STUDENT"}

    def test_curriculum_references_courses(self, graph):
        connection = graph.connection("curriculum_courses")
        assert connection.kind is ConnectionKind.REFERENCE
        assert connection.source == "CURRICULUM"
        assert connection.target == "COURSES"


class TestGenerator:
    def test_counts_match_config(self, graph):
        engine = MemoryEngine()
        graph.install(engine)
        counts = populate_university(
            engine, UniversityConfig(students=10, faculty=3, staff=2, courses=5)
        )
        assert counts["STUDENT"] == 10
        assert counts["FACULTY"] == 3
        assert counts["STAFF"] == 2
        assert counts["COURSES"] == 5
        assert counts["PEOPLE"] == 15

    def test_deterministic(self, graph):
        first, second = MemoryEngine(), MemoryEngine()
        university_schema().install(first)
        university_schema().install(second)
        populate_university(first)
        populate_university(second)
        for name in graph.relation_names:
            assert sorted(first.scan(name)) == sorted(second.scan(name))

    def test_seed_changes_data(self, graph):
        first, second = MemoryEngine(), MemoryEngine()
        university_schema().install(first)
        university_schema().install(second)
        populate_university(first, UniversityConfig(seed=1))
        populate_university(second, UniversityConfig(seed=2))
        assert sorted(first.scan("PEOPLE")) != sorted(second.scan("PEOPLE"))

    def test_generated_data_consistent(self, graph):
        engine = MemoryEngine()
        graph.install(engine)
        populate_university(engine)
        assert IntegrityChecker(graph).is_consistent(engine)

    def test_levels_are_valid(self, university_engine):
        for values in university_engine.scan("COURSES"):
            assert values[3] in ("graduate", "undergraduate")
