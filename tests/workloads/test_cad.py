"""CAD workload: schema, generator, BOM object."""

from repro.relational.memory_engine import MemoryEngine
from repro.structural.connections import ConnectionKind
from repro.structural.integrity import IntegrityChecker
from repro.workloads.cad import CadConfig, cad_schema, populate_cad


def test_subset_connection(cad_graph):
    connection = cad_graph.connection("assembly_released")
    assert connection.kind is ConnectionKind.SUBSET
    assert connection.source == "ASSEMBLY"


def test_generated_data_consistent(cad_graph, cad_engine):
    assert IntegrityChecker(cad_graph).is_consistent(cad_engine)


def test_generator_deterministic():
    first, second = MemoryEngine(), MemoryEngine()
    cad_schema().install(first)
    cad_schema().install(second)
    populate_cad(first)
    populate_cad(second)
    assert sorted(first.scan("COMPONENT")) == sorted(second.scan("COMPONENT"))


def test_config_scales(cad_graph):
    engine = MemoryEngine()
    cad_graph.install(engine)
    counts = populate_cad(
        engine, CadConfig(assemblies=3, components_per_assembly=2)
    )
    assert counts["ASSEMBLY"] == 3
    assert counts["COMPONENT"] == 6


def test_bom_object_shape(bom):
    assert bom.pivot_relation == "ASSEMBLY"
    assert bom.complexity == 5
    assert bom.tree.parent("MATERIAL").relation == "PART"
