"""Hospital workload: schema, generator, chart object."""


from repro.relational.memory_engine import MemoryEngine
from repro.structural.connections import ConnectionKind
from repro.structural.integrity import IntegrityChecker
from repro.workloads.hospital import HospitalConfig, hospital_schema, populate_hospital


def test_ownership_chain(hospital_graph):
    assert (
        hospital_graph.connection("patient_visits").kind
        is ConnectionKind.OWNERSHIP
    )
    owned_by_visit = {
        c.target
        for c in hospital_graph.connections_from(
            "VISIT", ConnectionKind.OWNERSHIP
        )
    }
    assert owned_by_visit == {"DIAGNOSIS", "PRESCRIPTION", "LAB_RESULT"}


def test_generated_data_consistent(hospital_graph, hospital_engine):
    assert IntegrityChecker(hospital_graph).is_consistent(hospital_engine)


def test_generator_deterministic():
    graph = hospital_schema()
    first, second = MemoryEngine(), MemoryEngine()
    hospital_schema().install(first)
    hospital_schema().install(second)
    populate_hospital(first)
    populate_hospital(second)
    assert sorted(first.scan("VISIT")) == sorted(second.scan("VISIT"))


def test_config_scales(hospital_graph):
    engine = MemoryEngine()
    hospital_graph.install(engine)
    counts = populate_hospital(
        engine, HospitalConfig(patients=5, visits_per_patient=2)
    )
    assert counts["PATIENT"] == 5
    assert counts["VISIT"] == 10


def test_chart_object_shape(chart):
    assert chart.pivot_relation == "PATIENT"
    assert chart.complexity == 7
    assert chart.tree.parent("DIAGNOSIS").relation == "VISIT"
    assert chart.tree.parent("MEDICATION").relation == "PRESCRIPTION"
