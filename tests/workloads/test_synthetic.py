"""Synthetic chain workload: dialable island depth."""

import pytest

from repro.core.dependency_island import analyze_island
from repro.relational.memory_engine import MemoryEngine
from repro.structural.integrity import IntegrityChecker
from repro.workloads.synthetic import (
    chain_object,
    chain_schema,
    populate_chain,
)


@pytest.mark.parametrize("depth", [1, 2, 4])
def test_island_size_tracks_depth(depth):
    graph = chain_schema(depth=depth)
    view_object = chain_object(graph, depth)
    analysis = analyze_island(view_object)
    assert len(analysis.island_nodes) == depth + 1
    assert analysis.peninsula_nodes == ["PENINSULA"]


def test_row_counts():
    graph = chain_schema(depth=3)
    engine = MemoryEngine()
    graph.install(engine)
    counts = populate_chain(engine, depth=3, roots=4, fanout=2)
    assert counts["R0"] == 4
    assert counts["R1"] == 8
    assert counts["R2"] == 16
    assert counts["R3"] == 32
    assert counts["PENINSULA"] == 8


def test_generated_data_consistent():
    graph = chain_schema(depth=3)
    engine = MemoryEngine()
    graph.install(engine)
    populate_chain(engine, depth=3, roots=3, fanout=2)
    assert IntegrityChecker(graph).is_consistent(engine)


def test_without_optional_relations():
    graph = chain_schema(depth=2, with_peninsula=False, with_lookup=False)
    assert "PENINSULA" not in graph.relation_names
    assert "LOOKUP" not in graph.relation_names
    engine = MemoryEngine()
    graph.install(engine)
    populate_chain(engine, depth=2, roots=2, fanout=2)
    view_object = chain_object(
        graph, 2, with_peninsula=False, with_lookup=False
    )
    assert view_object.complexity == 3


def test_deletion_cascades_full_chain():
    from repro.core.updates.translator import Translator

    graph = chain_schema(depth=3)
    engine = MemoryEngine()
    graph.install(engine)
    populate_chain(engine, depth=3, roots=2, fanout=2)
    view_object = chain_object(graph, 3)
    translator = Translator(view_object, verify_integrity=True)
    translator.delete(engine, key=(0,))
    assert engine.find_by("R3", ("k0",), (0,)) == []
    assert engine.find_by("PENINSULA", ("k0",), (0,)) == []
    assert engine.count("R0") == 1
