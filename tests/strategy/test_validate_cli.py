"""``python -m repro validate``: the CLI wrapper over both halves."""

import json

import pytest

from repro.__main__ import main

pytestmark = pytest.mark.strategy


def test_workload_validation_succeeds(capsys):
    assert main(["validate", "--workload", "hospital"]) == 0
    out = capsys.readouterr().out
    assert "strategy risk" in out or "risk" in out.lower()
    assert "AGREEMENT" in out or "agree" in out.lower()


def test_sweep_reports_counts(capsys):
    assert main(["validate", "--sweep", "4"]) == 0
    out = capsys.readouterr().out
    assert "4 case(s)" in out
    assert "disagreement" in out


def test_adversarial_sweep_with_json_artifact(tmp_path, capsys):
    artifact = tmp_path / "risk.json"
    assert (
        main(
            [
                "validate",
                "--sweep",
                "6",
                "--adversarial",
                "--json",
                str(artifact),
            ]
        )
        == 0
    )
    payload = json.loads(artifact.read_text())
    assert payload["sweep"]["cases"] == 6
    assert payload["sweep"]["disagreements"] == 0
    assert len(payload["sweep"]["results"]) == 6
    out = capsys.readouterr().out
    assert "(adversarial)" in out


def test_strict_mode_fails_on_falsification(tmp_path):
    # The adversarial corpus contains law-falsified configurations even
    # under a permissive policy (hidden_attr cases), so --strict must
    # flip the exit code while plain mode stays green on agreement.
    code = main(
        ["validate", "--sweep", "12", "--adversarial", "--strict"]
    )
    assert code == 1


def test_no_arguments_is_usage_error(capsys):
    assert main(["validate"]) == 2
    err = capsys.readouterr().err
    assert "nothing to validate" in err


def test_unknown_workload_is_usage_error(capsys):
    assert main(["validate", "--workload", "bank"]) == 2
    err = capsys.readouterr().err
    assert "unknown workload" in err
