"""The ``strictness`` knob: refuse/warn/off at definition time, and the
risk report's ride through ``explain()``."""

import warnings

import pytest

from repro.core.updates.operations import CompleteDeletion
from repro.core.updates.policy import (
    ReferenceRepair,
    RelationPolicy,
    TranslatorPolicy,
)
from repro.core.updates.translator import Translator
from repro.errors import UnsafeTranslatorError
from repro.penguin import Penguin
from repro.relational.memory_engine import MemoryEngine
from repro.strategy import RiskLevel, StrategyWarning
from repro.workloads.synthetic import (
    chain_object,
    chain_schema,
    populate_chain,
)

pytestmark = pytest.mark.strategy


def critical_policy():
    # PENINSULA.k0 is a non-nullable key attribute: NULLIFY can never
    # be applied, which the policy layer used to accept silently.
    policy = TranslatorPolicy.permissive()
    policy.relations["PENINSULA"] = RelationPolicy(
        on_reference_delete=ReferenceRepair.NULLIFY
    )
    return policy


@pytest.fixture
def chain():
    graph = chain_schema(1)
    engine = MemoryEngine()
    graph.install(engine)
    populate_chain(engine, depth=1, roots=2, fanout=1)
    return graph, chain_object(graph, 1), engine


class TestStrictnessKnob:
    def test_refuse_raises_at_definition_time(self, chain):
        _, view_object, _ = chain
        with pytest.raises(UnsafeTranslatorError) as excinfo:
            Translator(
                view_object, policy=critical_policy(), strictness="refuse"
            )
        assert excinfo.value.report.is_critical
        assert "nullify" in str(excinfo.value).lower()

    def test_warn_emits_strategy_warning(self, chain):
        _, view_object, _ = chain
        with pytest.warns(StrategyWarning):
            translator = Translator(
                view_object, policy=critical_policy(), strictness="warn"
            )
        assert translator.risk().is_critical

    def test_warn_is_the_default(self, chain):
        _, view_object, _ = chain
        with pytest.warns(StrategyWarning):
            Translator(view_object, policy=critical_policy())

    def test_off_is_silent(self, chain):
        _, view_object, _ = chain
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            translator = Translator(
                view_object, policy=critical_policy(), strictness="off"
            )
        assert translator.risk().is_critical  # still computable on demand

    def test_safe_policy_passes_refuse(self, chain):
        _, view_object, _ = chain
        translator = Translator(view_object, strictness="refuse")
        assert translator.risk().level < RiskLevel.CRITICAL

    def test_unknown_strictness_rejected(self, chain):
        _, view_object, _ = chain
        with pytest.raises(ValueError):
            Translator(view_object, strictness="paranoid")

    def test_no_critical_config_reaches_compiled_program(self, chain):
        """Acceptance: under refuse, the constructor raises before the
        compiled-plan cache (or any plan) can exist."""
        _, view_object, _ = chain
        try:
            translator = Translator(
                view_object,
                policy=critical_policy(),
                strictness="refuse",
                compile_plans=True,
            )
        except UnsafeTranslatorError:
            translator = None
        assert translator is None

    def test_penguin_threads_strictness(self, chain):
        graph, view_object, engine = chain
        session = Penguin(graph, engine=engine, install=False,
                          strictness="refuse")
        session.register_object(view_object)
        with pytest.raises(UnsafeTranslatorError):
            session.set_policy(view_object.name, critical_policy())

    def test_for_user_inherits_strictness_and_report(self, chain):
        _, view_object, _ = chain
        translator = Translator(view_object, strictness="off")
        report = translator.risk()
        bound = translator.for_user("alice")
        assert bound.strictness == "off"
        assert bound.risk() is report


class TestExplainCarriesRisk:
    def test_render_has_strategy_risk_section(self, chain):
        _, view_object, engine = chain
        translator = Translator(view_object, strictness="warn")
        instance = translator.instantiate(engine, (0,))
        explanation = translator.explain(engine, CompleteDeletion(instance))
        rendered = explanation.render()
        assert "strategy risk" in rendered
        assert translator.risk().level.value.upper() in rendered
        assert explanation.to_dict()["risk"] == translator.risk().to_dict()

    def test_off_translator_still_explains_risk(self, chain):
        _, view_object, engine = chain
        translator = Translator(view_object, strictness="off")
        instance = translator.instantiate(engine, (1,))
        explanation = translator.explain(engine, CompleteDeletion(instance))
        # strictness="off" defers the check, but explain() still
        # computes the report lazily — never "unchecked" here.
        assert "strategy risk" in explanation.render()

    def test_hospital_views_all_carry_risk_levels(self):
        """Acceptance: explain() carries a risk level for every
        hospital view bound through the session."""
        from repro.workloads.hospital import hospital_schema, patient_chart_object

        graph = hospital_schema()
        session = Penguin(graph)
        session.register_object(patient_chart_object(graph))
        summary = session.risk_summary()
        assert set(summary) == {"patient_chart"}
        assert summary["patient_chart"]["level"] in {
            level.value for level in RiskLevel
        }
        assert summary["patient_chart"]["findings"] >= 1
