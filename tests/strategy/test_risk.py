"""Risk vocabulary: level ordering, finding sorting, report rendering."""

import pytest

from repro.strategy.risk import Finding, RiskLevel, RiskReport

pytestmark = pytest.mark.strategy


class TestRiskLevel:
    def test_total_order(self):
        assert (
            RiskLevel.SAFE
            < RiskLevel.LOW
            < RiskLevel.MEDIUM
            < RiskLevel.HIGH
            < RiskLevel.CRITICAL
        )

    def test_comparison_against_other_types_rejected(self):
        with pytest.raises(TypeError):
            RiskLevel.SAFE < "low"

    def test_values_are_stable_strings(self):
        assert [level.value for level in RiskLevel] == [
            "safe",
            "low",
            "medium",
            "high",
            "critical",
        ]


class TestFinding:
    def test_describe(self):
        finding = Finding(
            RiskLevel.HIGH, "replacement.key-never-translatable", "boom",
            relation="R0",
        )
        assert finding.describe() == (
            "[HIGH] replacement.key-never-translatable @ R0: boom"
        )

    def test_sorting_is_most_severe_first(self):
        low = Finding(RiskLevel.LOW, "a.b", "m1", relation="R1")
        high = Finding(RiskLevel.HIGH, "z.z", "m2", relation="R0")
        report = RiskReport("obj", [low, high])
        assert report.findings[0] is high

    def test_equal_findings_hash_equal(self):
        a = Finding(RiskLevel.LOW, "a.b", "m", relation="R1")
        b = Finding(RiskLevel.LOW, "a.b", "m", relation="R1")
        assert a == b and hash(a) == hash(b)


class TestRiskReport:
    def test_empty_report_is_safe(self):
        report = RiskReport("obj", [])
        assert report.level is RiskLevel.SAFE
        assert not report.is_critical
        assert report.at_least(RiskLevel.HIGH) == ()

    def test_level_is_max_of_findings(self):
        report = RiskReport(
            "obj",
            [
                Finding(RiskLevel.LOW, "a.a", "m"),
                Finding(RiskLevel.CRITICAL, "b.b", "m"),
            ],
        )
        assert report.level is RiskLevel.CRITICAL
        assert report.is_critical

    def test_render_and_to_dict_are_deterministic(self):
        findings = [
            Finding(RiskLevel.MEDIUM, "c.c", "m3", relation="R2"),
            Finding(RiskLevel.HIGH, "b.b", "m2", relation="R1"),
            Finding(RiskLevel.HIGH, "a.a", "m1", relation="R0"),
        ]
        one = RiskReport("obj", findings)
        two = RiskReport("obj", list(reversed(findings)))
        assert one.render() == two.render()
        assert one.to_dict() == two.to_dict()
        assert "HIGH" in one.render()
