"""The round-trip law harness itself: laws hold for sound configs,
reports are reproducible, and falsifications print their seed."""

import threading

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.updates.policy import (
    ReferenceRepair,
    RelationPolicy,
    TranslatorPolicy,
)
from repro.strategy.laws import (
    LAW_NAMES,
    chain_case,
    random_policy,
    run_laws,
    workload_case,
)
from tests.conftest import wait_until

pytestmark = pytest.mark.strategy


class TestLawsHoldForSoundConfigs:
    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_permissive_chain_cases_never_falsify(self, seed):
        report = run_laws(chain_case(seed), TranslatorPolicy.permissive())
        assert not report.falsified, report.render()

    @pytest.mark.parametrize(
        "workload", ["hospital", "university", "cad"]
    )
    def test_permissive_workloads_never_falsify(self, workload):
        report = run_laws(
            workload_case(workload), TranslatorPolicy.permissive()
        )
        assert not report.falsified, report.render()

    def test_every_law_runs(self):
        report = run_laws(chain_case(3), TranslatorPolicy.permissive())
        assert tuple(r.law for r in report.results) == LAW_NAMES


class TestReproducibility:
    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_report(self, seed):
        case = chain_case(seed)
        _, view_object, _ = case.build()
        policy = random_policy(view_object, seed)
        one = run_laws(case, policy)
        two = run_laws(case, policy)
        assert one.render() == two.render()
        assert one.to_dict() == two.to_dict()

    def test_random_policy_is_seed_deterministic(self):
        case = chain_case(5)
        _, view_object, _ = case.build()
        a = random_policy(view_object, 5)
        b = random_policy(view_object, 5)
        assert repr(sorted(a.relations.items())) == repr(
            sorted(b.relations.items())
        )
        assert (a.allow_insertion, a.allow_deletion, a.allow_replacement) == (
            b.allow_insertion,
            b.allow_deletion,
            b.allow_replacement,
        )


class TestFalsificationReport:
    def falsified_report(self):
        # PENINSULA.k0 is a non-nullable key attribute, so a NULLIFY
        # repair dies on an illegal null at deletion time.
        policy = TranslatorPolicy.permissive()
        policy.relations["PENINSULA"] = RelationPolicy(
            on_reference_delete=ReferenceRepair.NULLIFY
        )
        return run_laws(chain_case(0), policy)

    def test_unsound_repair_is_falsified(self):
        report = self.falsified_report()
        assert report.falsified

    def test_report_prints_reproduction_seed_and_schema(self):
        report = self.falsified_report()
        rendered = report.render()
        assert "REPRODUCE WITH" in rendered
        assert "seed=0" in rendered
        assert "depth" in rendered
        payload = report.to_dict()
        assert payload["seed"] == 0
        assert payload["case"] == "chain"
        assert payload["falsified"]


class TestHarnessConcurrency:
    def test_concurrent_sessions_agree(self):
        """Two harness runs on separate threads share nothing; the
        shared ``wait_until`` helper bounds the join without a fixed
        sleep (the usual source of CI flakes)."""
        results = {}

        def run(tag):
            report = run_laws(chain_case(7), TranslatorPolicy.permissive())
            results[tag] = report.render()

        threads = [
            threading.Thread(target=run, args=(tag,)) for tag in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        wait_until(lambda: len(results) == 2)
        for thread in threads:
            thread.join(timeout=5.0)
        assert results["a"] == results["b"]
