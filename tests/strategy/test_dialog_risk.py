"""Dialog-layer properties of the risk report: same answers produce a
byte-identical report, and the hospital workload's reachable risk
levels are pinned by golden transcripts.

To regenerate the fixtures after an intentional checker change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/strategy/test_dialog_risk.py
"""

import os
import random
from pathlib import Path

import pytest

from repro.core.updates.policy import TranslatorPolicy
from repro.dialog.answers import CallableAnswers, ConstantAnswers, MappingAnswers
from repro.penguin import Penguin
from repro.strategy import RiskLevel, StrategyWarning
from repro.workloads.hospital import hospital_schema, patient_chart_object

pytestmark = pytest.mark.strategy

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = bool(os.environ.get("REGEN_GOLDEN"))

READ_ONLY_ANSWERS = {
    "insertion.allowed": False,
    "deletion.allowed": False,
    "replacement.allowed": False,
}


def standard_answers(question):
    """The sensible DBA: yes to everything except merge-on-conflict."""
    return "merge_on_conflict" not in question.qid


def check_golden(name, actual):
    path = GOLDEN_DIR / name
    if REGEN:
        path.write_text(actual + "\n")
        pytest.skip(f"regenerated {name}")
    expected = path.read_text().rstrip("\n")
    assert actual == expected, (
        f"{name} drifted from the committed fixture; if the change is "
        f"intentional, regenerate with REGEN_GOLDEN=1"
    )


def hospital_session():
    graph = hospital_schema()
    session = Penguin(graph)
    session.register_object(patient_chart_object(graph))
    return session


def dialog_report(answers):
    session = hospital_session()
    translator, _ = session.choose_translator("patient_chart", answers)
    return translator.risk()


class TestDialogDeterminism:
    def seeded_answers(self, seed):
        rng = random.Random(seed)
        return CallableAnswers(lambda question: rng.random() < 0.8)

    @pytest.mark.parametrize("seed", [0, 1, 7, 23, 99])
    def test_same_answers_byte_identical_report(self, seed):
        one = dialog_report(self.seeded_answers(seed))
        two = dialog_report(self.seeded_answers(seed))
        assert one.render() == two.render()
        assert one.to_dict() == two.to_dict()

    def test_report_travels_through_explain_dict(self):
        report = dialog_report(ConstantAnswers(True))
        session = hospital_session()
        translator, _ = session.choose_translator(
            "patient_chart", ConstantAnswers(True)
        )
        assert translator.risk().to_dict() == report.to_dict()


class TestHospitalGoldenTranscripts:
    """One pinned transcript per dialog-reachable risk level."""

    def test_safe_is_unreachable_for_hospital(self):
        # WARD always needs skeleton support the default completer
        # cannot supply, so no answer set reaches SAFE: the floor for
        # a writable patient_chart translator is MEDIUM.
        report = dialog_report(CallableAnswers(standard_answers))
        assert report.level >= RiskLevel.MEDIUM

    def test_low_read_only(self):
        report = dialog_report(MappingAnswers(READ_ONLY_ANSWERS, default=True))
        assert report.level is RiskLevel.LOW
        check_golden("hospital_risk_low.txt", report.render())

    def test_medium_standard_configuration(self):
        report = dialog_report(CallableAnswers(standard_answers))
        assert report.level is RiskLevel.MEDIUM
        check_golden("hospital_risk_medium.txt", report.render())

    def test_high_all_yes_enables_merge_side_effects(self):
        report = dialog_report(ConstantAnswers(True))
        assert report.level is RiskLevel.HIGH
        assert "replacement.merge-side-effects" in report.codes()
        check_golden("hospital_risk_high.txt", report.render())

    def test_high_key_replacement_without_db_support(self):
        answers = CallableAnswers(
            lambda q: "merge_on_conflict" not in q.qid
            and "db_key_replace" not in q.qid
        )
        report = dialog_report(answers)
        assert report.level is RiskLevel.HIGH
        assert "replacement.key-never-translatable" in report.codes()

    def test_critical_needs_a_programmatic_definition(self):
        # The dialog never offers a configuration the translator cannot
        # execute; CRITICAL is only reachable by hand-building a view
        # that projects out a non-nullable pivot attribute — exactly
        # the hole the strictness knob closes.
        from repro.core.view_object import define_view_object

        graph = hospital_schema()
        visit_summary = define_view_object(
            graph,
            "visit_summary",
            pivot="VISIT",
            selections={
                "VISIT": ["patient_id", "visit_no", "physician_id", "reason"]
            },
        )
        session = Penguin(graph)
        session.register_object(visit_summary)
        with pytest.warns(StrategyWarning):
            translator = session.set_policy(
                "visit_summary", TranslatorPolicy.permissive()
            )
        report = translator.risk()
        assert report.is_critical
        assert "insertion.completer-dead-end" in report.codes()
        check_golden("hospital_risk_critical.txt", report.render())
