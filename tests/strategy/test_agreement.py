"""The contract between the two halves: every configuration the law
harness falsifies must carry a >=HIGH finding from the static checker
(over-flagging is allowed, a false SAFE is not)."""

import pytest

from repro.strategy import RiskLevel, check_strategy
from repro.strategy.laws import chain_case, random_policy, run_laws
from repro.strategy.validate import sweep, validate_workload

pytestmark = pytest.mark.strategy

SEEDS = range(12)


def agreement_failures(seeds, adversarial):
    failures = []
    falsified = 0
    for seed in seeds:
        case = chain_case(seed, adversarial=adversarial)
        _, view_object, _ = case.build()
        policy = random_policy(view_object, seed)
        report = check_strategy(view_object, policy)
        law_report = run_laws(case, policy)
        if law_report.falsified:
            falsified += 1
            if report.level < RiskLevel.HIGH:
                failures.append(
                    f"seed {seed} (adversarial={adversarial}): laws "
                    f"falsified but risk is {report.level.value}\n"
                    f"{law_report.render()}\n{report.render()}"
                )
    return failures, falsified


class TestCheckerNeverUnderFlags:
    def test_random_policies_on_plain_schemas(self):
        failures, _ = agreement_failures(SEEDS, adversarial=False)
        assert not failures, "\n\n".join(failures)

    @pytest.mark.slow
    def test_random_policies_on_adversarial_schemas(self):
        failures, falsified = agreement_failures(SEEDS, adversarial=True)
        assert not failures, "\n\n".join(failures)
        # The adversarial corpus must actually exercise the contract:
        # at least one configuration has to be falsified, otherwise the
        # assertion above is vacuous.
        assert falsified > 0

    def test_adversarial_hidden_attr_is_falsified_and_critical(self):
        # A hidden non-nullable attribute means a permissive policy
        # cannot complete pivot insertions: the laws notice, and the
        # checker says CRITICAL.
        from repro.core.updates.policy import TranslatorPolicy

        found = False
        for seed in range(20):
            case = chain_case(seed, adversarial=True)
            if "hidden_attr" not in str(case.params.get("adversarial", "")):
                continue
            found = True
            _, view_object, _ = case.build()
            policy = TranslatorPolicy.permissive()
            report = check_strategy(view_object, policy)
            law_report = run_laws(case, policy)
            assert law_report.falsified, law_report.render()
            assert report.is_critical, report.render()
            break
        assert found, "no hidden_attr case in the first 20 seeds"


class TestValidateDriver:
    def test_sweep_reports_agreement(self):
        outcome = sweep(count=6, adversarial=True)
        assert outcome["cases"] == 6
        assert outcome["disagreements"] == 0
        assert len(outcome["results"]) == 6

    @pytest.mark.parametrize("workload", ["hospital", "university", "cad"])
    def test_workload_validation_agrees(self, workload):
        result = validate_workload(workload)
        assert result["agreement"], result["_law_report"].render()
        assert result["risk"]["object"] == result["object"]
