"""Unit coverage for every finding code of the static strategy checker."""

import pytest

from repro.core.updates.policy import (
    ReferenceRepair,
    RelationPolicy,
    TranslatorPolicy,
)
from repro.core.view_object import define_view_object
from repro.relational.ddl import relation
from repro.relational.memory_engine import MemoryEngine
from repro.strategy import RiskLevel, check_strategy
from repro.strategy.laws import workload_case
from repro.structural.schema_graph import StructuralSchema
from repro.workloads.synthetic import (
    chain_object,
    chain_schema,
    chain_selections,
    random_chain_case,
)

pytestmark = pytest.mark.strategy


def chain_view(depth=1, with_peninsula=True, with_lookup=True, **schema_kwargs):
    graph = chain_schema(depth, with_peninsula, with_lookup, **schema_kwargs)
    return graph, chain_object(graph, depth, with_peninsula, with_lookup)


def policy_with(**relations):
    policy = TranslatorPolicy.permissive()
    for name, relation_policy in relations.items():
        policy.relations[name] = relation_policy
    return policy


class TestGateFindings:
    def test_read_only_translator_is_flagged_low(self):
        _, view_object = chain_view()
        policy = TranslatorPolicy(
            allow_insertion=False,
            allow_deletion=False,
            allow_replacement=False,
        )
        report = check_strategy(view_object, policy)
        assert "gates.read-only" in report.codes()
        assert report.level >= RiskLevel.LOW


class TestInsertionFindings:
    def test_pivot_completer_dead_end_is_critical(self):
        _, view_object = chain_view(hidden_attr=True)
        report = check_strategy(view_object, TranslatorPolicy.permissive())
        findings = [
            f for f in report if f.code == "insertion.completer-dead-end"
        ]
        assert findings and findings[0].level is RiskLevel.CRITICAL
        assert findings[0].relation == "R0"
        assert "secret" in findings[0].message

    def test_non_pivot_island_dead_end_is_high(self):
        graph = StructuralSchema("deadend_child")
        graph.add_relation(
            relation("A").integer("a_id").key("a_id").build()
        )
        graph.add_relation(
            relation("B")
            .integer("a_id")
            .integer("b_id")
            .text("hidden")
            .text("note", nullable=True)
            .key("a_id", "b_id")
            .build()
        )
        graph.ownership("a_b", "A", "B", ["a_id"], ["a_id"])
        view_object = define_view_object(
            graph,
            "ab",
            pivot="A",
            selections={"A": ["a_id"], "B": ["a_id", "b_id", "note"]},
        )
        report = check_strategy(view_object, TranslatorPolicy.permissive())
        findings = [
            f for f in report if f.code == "insertion.completer-dead-end"
        ]
        assert findings and findings[0].level is RiskLevel.HIGH
        assert findings[0].relation == "B"

    def test_custom_completer_clears_dead_end(self):
        _, view_object = chain_view(hidden_attr=True)
        policy = TranslatorPolicy.permissive()
        policy.completer = lambda rel, schema, partial: dict(
            partial, secret="filled"
        )
        report = check_strategy(view_object, policy)
        assert "insertion.completer-dead-end" not in report.codes()

    def test_outside_relation_without_insert_is_medium(self):
        case = workload_case("university")
        _, view_object, _ = case.build()
        policy = policy_with(
            DEPARTMENT=RelationPolicy(can_insert=False)
        )
        report = check_strategy(view_object, policy)
        codes = {
            (f.code, f.relation): f.level for f in report
        }
        assert (
            codes[("insertion.outside-no-insert", "DEPARTMENT")]
            is RiskLevel.MEDIUM
        )

    def test_outside_relation_without_replace_is_low(self):
        case = workload_case("university")
        _, view_object, _ = case.build()
        policy = policy_with(
            DEPARTMENT=RelationPolicy(can_replace_existing=False)
        )
        report = check_strategy(view_object, policy)
        assert ("insertion.outside-no-replace") in report.codes()

    def test_skeleton_uncompletable_on_hospital_ward(self):
        case = workload_case("hospital")
        _, view_object, _ = case.build()
        report = check_strategy(view_object, TranslatorPolicy.permissive())
        findings = [
            f for f in report if f.code == "insertion.skeleton-uncompletable"
        ]
        assert [f.relation for f in findings] == ["WARD"]

    def test_skeleton_prohibited_when_support_insert_denied(self):
        case = workload_case("hospital")
        _, view_object, _ = case.build()
        policy = policy_with(WARD=RelationPolicy(can_insert=False))
        report = check_strategy(view_object, policy)
        findings = [
            f for f in report if f.code == "insertion.skeleton-prohibited"
        ]
        assert [f.relation for f in findings] == ["WARD"]


class TestDeletionFindings:
    def test_auto_repair_reports_resolution(self):
        _, view_object = chain_view()
        report = check_strategy(view_object, TranslatorPolicy.permissive())
        findings = [f for f in report if f.code == "deletion.auto-repair"]
        assert findings and findings[0].level is RiskLevel.LOW
        assert "DELETE" in findings[0].message

    def test_prohibit_repair_is_medium(self):
        _, view_object = chain_view()
        policy = policy_with(
            PENINSULA=RelationPolicy(
                on_reference_delete=ReferenceRepair.PROHIBIT
            )
        )
        report = check_strategy(view_object, policy)
        assert "deletion.repair-prohibit" in report.codes()

    def test_impossible_nullify_is_critical(self):
        # PENINSULA.k0 is a non-nullable key attribute: NULLIFY can
        # never be applied, which _coerce_answers used to accept
        # silently.
        _, view_object = chain_view()
        policy = policy_with(
            PENINSULA=RelationPolicy(
                on_reference_delete=ReferenceRepair.NULLIFY
            )
        )
        report = check_strategy(view_object, policy)
        findings = [
            f for f in report if f.code == "deletion.nullify-impossible"
        ]
        assert findings and findings[0].level is RiskLevel.CRITICAL
        assert report.is_critical


class TestReplacementFindings:
    def test_key_replacement_without_db_support_is_high(self):
        _, view_object = chain_view()
        policy = policy_with(
            R0=RelationPolicy(allow_db_key_replacement=False)
        )
        report = check_strategy(view_object, policy)
        findings = [
            f
            for f in report
            if f.code == "replacement.key-never-translatable"
        ]
        assert findings and findings[0].level is RiskLevel.HIGH

    def test_merge_with_shared_tuples_is_high(self):
        _, view_object = chain_view()
        policy = policy_with(
            R0=RelationPolicy(allow_merge_on_key_conflict=True)
        )
        report = check_strategy(view_object, policy)
        findings = [
            f for f in report if f.code == "replacement.merge-side-effects"
        ]
        assert findings and findings[0].level is RiskLevel.HIGH

    def test_merge_on_leaf_is_medium(self):
        _, view_object = chain_view(
            depth=1, with_peninsula=False, with_lookup=False
        )
        policy = policy_with(
            R1=RelationPolicy(allow_merge_on_key_conflict=True)
        )
        report = check_strategy(view_object, policy)
        findings = [
            f for f in report if f.code == "replacement.merge-side-effects"
        ]
        assert findings and findings[0].level is RiskLevel.MEDIUM

    def test_unreachable_merge_is_low(self):
        _, view_object = chain_view()
        policy = policy_with(
            R0=RelationPolicy(
                allow_key_replacement=False,
                allow_merge_on_key_conflict=True,
            )
        )
        report = check_strategy(view_object, policy)
        assert "replacement.unreachable-merge" in report.codes()

    def test_retarget_without_modify_is_medium(self):
        _, view_object = chain_view()
        policy = policy_with(PENINSULA=RelationPolicy(can_modify=False))
        report = check_strategy(view_object, policy)
        findings = [
            f for f in report if f.code == "replacement.retarget-prohibited"
        ]
        assert findings and findings[0].relation == "PENINSULA"


class TestStructureFindings:
    def test_circuit_is_high(self):
        graph = chain_schema(1)
        graph.reference("circuit_r1", "R1", "R0", ["k0"], ["k0"])
        view_object = define_view_object(
            graph,
            "chain_circuit",
            pivot="R0",
            selections=chain_selections(1),
        )
        report = check_strategy(view_object, TranslatorPolicy.permissive())
        findings = [f for f in report if f.code == "structure.circuit"]
        assert findings and findings[0].level is RiskLevel.HIGH


class TestCheckerHygiene:
    def test_checker_never_mutates_the_policy(self):
        # for_relation() inserts defaults as a side effect; the checker
        # must use a read-only lookup or audit replay would observe a
        # different policy snapshot after validation.
        case = workload_case("hospital")
        _, view_object, _ = case.build()
        policy = TranslatorPolicy.permissive()
        before = dict(policy.relations)
        check_strategy(view_object, policy)
        assert policy.relations == before

    def test_reports_are_deterministic(self):
        engine = MemoryEngine()
        _, view_object, _ = random_chain_case(engine, 11, adversarial=True)
        policy = policy_with(
            PENINSULA=RelationPolicy(
                on_reference_delete=ReferenceRepair.NULLIFY
            ),
            R0=RelationPolicy(allow_db_key_replacement=False),
        )
        one = check_strategy(view_object, policy)
        two = check_strategy(view_object, policy)
        assert one.render() == two.render()
        assert one.to_dict() == two.to_dict()
