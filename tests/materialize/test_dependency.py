"""DependencyIndex: mapping base-tuple changes to affected pivot keys."""

import pytest

from repro.materialize.dependency import DependencyIndex
from repro.relational.changelog import ChangeRecord
from repro.relational.memory_engine import MemoryEngine
from repro.workloads.figures import alternate_course_object, course_info_object
from repro.workloads.university import (
    UniversityConfig,
    populate_university,
    university_schema,
)

GRAPH = university_schema()
OMEGA = course_info_object(GRAPH)
OMEGA_PRIME = alternate_course_object(GRAPH)


@pytest.fixture(scope="module")
def engine():
    engine = MemoryEngine()
    GRAPH.install(engine)
    populate_university(engine, UniversityConfig())
    return engine


@pytest.fixture(scope="module")
def index():
    return DependencyIndex(OMEGA)


def row_map(engine, relation, values):
    return dict(zip((a.name for a in engine.schema(relation).attributes), values))


def test_tracked_relations_cover_tree(index):
    for relation in ("COURSES", "DEPARTMENT", "CURRICULUM", "GRADES", "STUDENT"):
        assert index.tracks(relation)
    # STAFF is nowhere in omega's tree or its edge paths.
    assert not index.tracks("STAFF")


def test_pivot_tuple_resolves_to_itself(engine, index):
    values = next(iter(engine.scan("COURSES")))
    assert index.pivots_for(engine, "COURSES", values) == {(values[0],)}


def test_grade_resolves_to_owning_course(engine, index):
    grade = next(iter(engine.scan("GRADES")))
    course_id = row_map(engine, "GRADES", grade)["course_id"]
    assert index.pivots_for(engine, "GRADES", grade) == {(course_id,)}


def test_department_resolves_to_every_course_in_it(engine, index):
    department = next(iter(engine.scan("DEPARTMENT")))
    dept_name = department[0]
    expected = {
        (row[0],)
        for row in engine.scan("COURSES")
        if row_map(engine, "COURSES", row)["dept_name"] == dept_name
    }
    assert index.pivots_for(engine, "DEPARTMENT", department) == expected


def test_student_resolves_through_grades(engine, index):
    student = next(iter(engine.scan("STUDENT")))
    person_id = student[0]
    expected = {
        (row_map(engine, "GRADES", g)["course_id"],)
        for g in engine.scan("GRADES")
        if row_map(engine, "GRADES", g)["student_id"] == person_id
    }
    assert index.pivots_for(engine, "STUDENT", student) == expected


def test_pruned_intermediate_relation_is_tracked(engine):
    """ω′ reaches STUDENT via COURSES --* GRADES *-- STUDENT with GRADES
    pruned away (Figure 3); a GRADES change must still resolve."""
    index = DependencyIndex(OMEGA_PRIME)
    assert index.tracks("GRADES")
    grade = next(iter(engine.scan("GRADES")))
    course_id = row_map(engine, "GRADES", grade)["course_id"]
    assert (course_id,) in index.pivots_for(engine, "GRADES", grade)


def test_replace_record_resolves_both_sides(engine, index):
    """A grade migrating between courses affects both instances."""
    schema = engine.schema("GRADES")
    grades = list(engine.scan("GRADES"))
    old = grades[0]
    courses = sorted(v[0] for v in engine.scan("COURSES"))
    other_course = next(
        c for c in courses if c != row_map(engine, "GRADES", old)["course_id"]
    )
    new = (other_course,) + tuple(old[1:])
    record = ChangeRecord(
        "replace", "GRADES", schema.key_of(old), new_values=new, old_values=old
    )
    affected = index.affected_pivots(engine, record)
    assert (row_map(engine, "GRADES", old)["course_id"],) in affected
    assert (other_course,) in affected


def test_untracked_relation_resolves_to_nothing(engine, index):
    staff = next(iter(engine.scan("STAFF")))
    assert index.pivots_for(engine, "STAFF", staff) == set()


def test_null_connecting_value_resolves_to_nothing(engine):
    """A FACULTY row only affects ω′ courses that reference it; with no
    referencing course the resolution is empty, and null instructor ids
    never match."""
    index = DependencyIndex(OMEGA_PRIME)
    referenced = {
        row_map(engine, "COURSES", c)["instructor_id"]
        for c in engine.scan("COURSES")
    }
    unreferenced = [
        f for f in engine.scan("FACULTY") if f[0] not in referenced
    ]
    if unreferenced:  # population is deterministic but stay defensive
        assert index.pivots_for(engine, "FACULTY", unreferenced[0]) == set()
