"""MaterializedStore / MaterializedView behavior and policies."""

import pytest

from repro.core.instantiation import Instantiator
from repro.errors import ViewObjectError
from repro.materialize import EAGER, FULL_REFRESH, LAZY, MaterializedStore
from repro.penguin import Penguin
from repro.relational.engine import Engine
from repro.relational.sqlite_engine import SqliteEngine
from repro.workloads.figures import course_info_object
from repro.workloads.university import (
    UniversityConfig,
    populate_university,
    university_schema,
)

CONFIG = UniversityConfig(students=10, faculty=4, staff=2, courses=6)


def make_penguin(backend="memory"):
    penguin = Penguin(university_schema(), backend=backend)
    populate_university(penguin.engine, CONFIG)
    penguin.register_object(course_info_object(penguin.graph))
    return penguin


def fresh_extent(penguin):
    instantiator = Instantiator(penguin.object("course_info"))
    return {i.key: i.to_dict() for i in instantiator.all(penguin.engine)}


def course_row(penguin, offset=0):
    rows = sorted(penguin.engine.scan("COURSES"))
    return rows[offset % len(rows)]


def retitle(penguin, values, title):
    schema = penguin.engine.schema("COURSES")
    row = dict(zip((a.name for a in schema.attributes), values))
    row["title"] = title
    penguin.engine.replace("COURSES", schema.key_of(values), row)


# -- cache accounting ---------------------------------------------------------


def test_warm_then_hit(backend="memory"):
    penguin = make_penguin(backend)
    view = penguin.materialize("course_info")
    first = penguin.query("course_info")
    assert view.stats.misses == len(first)
    assert view.stats.hits == 0
    second = penguin.query("course_info")
    assert view.stats.hits == len(second)
    assert view.stats.misses == len(first)
    assert [i.key for i in first] == [i.key for i in second]


def test_query_text_served_from_cache():
    penguin = make_penguin()
    expected = [i.to_dict() for i in penguin.query("course_info", "units >= 3")]
    view = penguin.materialize("course_info")
    got = [i.to_dict() for i in penguin.query("course_info", "units >= 3")]
    assert got == expected
    assert view.stats.requests > 0
    again = [i.to_dict() for i in penguin.query("course_info", "units >= 3")]
    assert again == expected
    assert view.stats.hits > 0


def test_get_served_from_cache():
    penguin = make_penguin()
    view = penguin.materialize("course_info")
    key = (course_row(penguin)[0],)
    assert penguin.get("course_info", key) is not None
    assert view.stats.misses == 1
    assert penguin.get("course_info", key) is not None
    assert view.stats.hits == 1
    assert penguin.get("course_info", ("NOPE",)) is None


def test_staleness_counts_pending_records():
    penguin = make_penguin()
    view = penguin.materialize("course_info")
    assert view.staleness() == 0
    retitle(penguin, course_row(penguin), "Pending")
    assert view.staleness() == 1
    penguin.query("course_info")
    assert view.staleness() == 0


# -- maintenance policies ------------------------------------------------------


def test_lazy_policy_evicts_and_reassembles_on_demand():
    penguin = make_penguin()
    view = penguin.materialize("course_info", policy=LAZY)
    penguin.query("course_info")
    cached_before = len(view)
    values = course_row(penguin)
    retitle(penguin, values, "Lazily Retitled")
    view.sync()
    assert len(view) == cached_before - 1
    assert view.stats.invalidations == 1
    assert view.stats.refreshes == 0
    instance = penguin.get("course_info", (values[0],))
    assert instance.root.values["title"] == "Lazily Retitled"
    assert fresh_extent(penguin) == {
        i.key: i.to_dict() for i in penguin.query("course_info")
    }


def test_eager_policy_reassembles_at_sync():
    penguin = make_penguin()
    view = penguin.materialize("course_info", policy=EAGER)
    penguin.query("course_info")
    values = course_row(penguin)
    retitle(penguin, values, "Eagerly Retitled")
    view.sync()
    assert view.stats.refreshes == 1
    hits_before = view.stats.hits
    instance = penguin.get("course_info", (values[0],))
    assert instance.root.values["title"] == "Eagerly Retitled"
    assert view.stats.hits == hits_before + 1  # no assembly on read


def test_full_refresh_policy_rebuilds_extent():
    penguin = make_penguin()
    view = penguin.materialize("course_info", policy=FULL_REFRESH)
    penguin.query("course_info")
    retitle(penguin, course_row(penguin), "Rebuilt")
    view.sync()
    assert view.stats.full_refreshes == 1
    assert len(view) == penguin.engine.count("COURSES")
    assert fresh_extent(penguin) == {
        i.key: i.to_dict() for i in penguin.query("course_info")
    }


def test_unknown_policy_rejected():
    penguin = make_penguin()
    with pytest.raises(ViewObjectError):
        penguin.materialize("course_info", policy="psychic")


# -- extent membership ---------------------------------------------------------


def test_pivot_insert_and_delete_visible(policy=LAZY):
    for policy in (LAZY, EAGER, FULL_REFRESH):
        penguin = make_penguin()
        penguin.materialize("course_info", policy=policy)
        baseline = {i.key for i in penguin.query("course_info")}
        penguin.engine.insert(
            "COURSES",
            {
                "course_id": "NEW1",
                "title": "Fresh",
                "units": 3,
                "level": "graduate",
                "dept_name": course_row(penguin)[4],
                "instructor_id": None,
            },
        )
        keys = {i.key for i in penguin.query("course_info")}
        assert keys == baseline | {("NEW1",)}
        penguin.engine.delete("COURSES", ("NEW1",))
        keys = {i.key for i in penguin.query("course_info")}
        assert keys == baseline


def test_component_insert_reflected():
    penguin = make_penguin()
    penguin.materialize("course_info")
    values = course_row(penguin)
    key = (values[0],)
    before = penguin.get("course_info", key).count_at("GRADES")
    graded = {
        g[1] for g in penguin.engine.scan("GRADES") if g[0] == values[0]
    }
    student = next(
        v[0]
        for v in sorted(penguin.engine.scan("STUDENT"))
        if v[0] not in graded
    )
    penguin.engine.insert(
        "GRADES",
        {"course_id": values[0], "student_id": student, "grade": "A"},
    )
    after = penguin.get("course_info", key).count_at("GRADES")
    assert after == before + 1


# -- wiring ---------------------------------------------------------------------


def test_engine_without_changelog_rejected():
    penguin = make_penguin()
    store = MaterializedStore(Engine())
    with pytest.raises(ViewObjectError, match="changelog"):
        store.materialize(penguin.object("course_info"))


def test_foreign_engine_rejected():
    penguin = make_penguin()
    other = make_penguin()
    view = penguin.materialize("course_info")
    with pytest.raises(ViewObjectError, match="different engine"):
        view.where(other.engine)


def test_double_materialize_rejected():
    penguin = make_penguin()
    penguin.materialize("course_info")
    with pytest.raises(ViewObjectError, match="already materialized"):
        penguin.materialize("course_info")


def test_dematerialize_detaches():
    penguin = make_penguin()
    view = penguin.materialize("course_info")
    penguin.query("course_info")
    assert penguin.materialized_names == ("course_info",)
    penguin.dematerialize("course_info")
    assert penguin.materialized("course_info") is None
    # Changes no longer reach the detached cache.
    retitle(penguin, course_row(penguin), "Unseen")
    assert view.staleness() > 0  # pending but nobody syncs it via queries
    assert penguin.query("course_info")  # served dynamically again
    with pytest.raises(ViewObjectError):
        penguin.dematerialize("course_info")


def test_store_stats_aggregate():
    penguin = make_penguin()
    penguin.materialize("course_info")
    penguin.query("course_info")
    penguin.query("course_info")
    total = penguin._materialized.stats()
    per_view = penguin.cache_stats()
    assert total.hits == per_view["course_info"]["hits"] > 0
    assert 0.0 < total.hit_rate <= 1.0


# -- sqlite backend --------------------------------------------------------------


def test_sqlite_changelog_records_mutations():
    engine = SqliteEngine()
    graph = university_schema()
    graph.install(engine)
    populate_university(engine, CONFIG)
    base = len(engine.changelog)
    values = sorted(engine.scan("COURSES"))[0]
    schema = engine.schema("COURSES")
    row = dict(zip((a.name for a in schema.attributes), values))
    row["title"] = "Logged"
    engine.replace("COURSES", schema.key_of(values), row)
    assert len(engine.changelog) == base + 1
    record = engine.changelog.records[-1]
    assert record.kind == "replace"
    assert record.relation == "COURSES"
    assert record.old_values == values


def test_sqlite_rollback_truncates_changelog():
    engine = SqliteEngine()
    graph = university_schema()
    graph.install(engine)
    populate_university(engine, CONFIG)
    mark = engine.changelog.mark()
    engine.begin()
    key = sorted(engine.scan("CURRICULUM"))[0][:2]
    engine.delete("CURRICULUM", key)
    assert len(engine.changelog) == mark + 1
    engine.rollback()
    assert len(engine.changelog) == mark
    assert engine.get("CURRICULUM", key) is not None


def test_materialized_on_sqlite_backend():
    penguin = make_penguin(backend="sqlite")
    penguin.materialize("course_info")
    expected = fresh_extent(penguin)
    assert {i.key: i.to_dict() for i in penguin.query("course_info")} == expected
    retitle(penguin, course_row(penguin), "Sqlite Retitle")
    assert fresh_extent(penguin) == {
        i.key: i.to_dict() for i in penguin.query("course_info")
    }
