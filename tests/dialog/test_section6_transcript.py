"""Verbatim reproduction of the Section 6 dialog transcript.

The paper shows the replacement portion of the dialog for ω (Figure 2c)
with the DBA's answers; the generated transcript must match it word for
word, including the question order (DFS over the object's tree, the
same order VO-R walks) and the conditional skipping of footnote 5.
"""

import pytest

from repro.core.updates.policy import TranslatorPolicy
from repro.dialog.answers import ScriptedAnswers
from repro.dialog.drivers import run_replacement_dialog
from repro.dialog.transcript import Transcript

PAPER_TRANSCRIPT = """\
Is replacement of tuples in an object instance allowed? <YES>
The key of a tuple of relation COURSES could be modified during replacements. Do you allow this? <YES>
Can we replace the key of the corresponding database tuple? <YES>
The system might need to delete the old database tuple, and replace it with an existing tuple with matching key. Do you allow this? <NO>
Can the relation CURRICULUM be modified during insertions (or replacements)? <YES>
Can a new tuple be inserted? <YES>
Can an existing tuple be modified? <YES>
Can the relation DEPARTMENT be modified during insertions (or replacements)? <YES>
Can a new tuple be inserted? <YES>
Can an existing tuple be modified? <YES>
The key of a tuple of relation GRADES could be modified during replacements. Do you allow this? <YES>
Can we replace the key of the corresponding database tuple? <YES>
The system might need to delete the old database tuple, and replace it with an existing tuple with matching key. Do you allow this? <NO>
Can the relation STUDENT be modified during insertions (or replacements)? <YES>
Can a new tuple be inserted? <YES>
Can an existing tuple be modified? <YES>"""

PAPER_ANSWERS = [
    True, True, True, False,   # gate + COURSES island triplet
    True, True, True,          # CURRICULUM
    True, True, True,          # DEPARTMENT
    True, True, False,         # GRADES island triplet
    True, True, True,          # STUDENT
]


@pytest.fixture
def transcript_and_policy(omega):
    policy = TranslatorPolicy()
    transcript = Transcript()
    run_replacement_dialog(
        omega, ScriptedAnswers(PAPER_ANSWERS), policy, transcript
    )
    return transcript, policy


def test_transcript_matches_paper_verbatim(transcript_and_policy):
    transcript, __ = transcript_and_policy
    assert transcript.render() == PAPER_TRANSCRIPT


def test_sixteen_questions_asked(transcript_and_policy):
    transcript, __ = transcript_and_policy
    assert len(transcript) == 16


def test_resulting_policy(transcript_and_policy):
    __, policy = transcript_and_policy
    assert policy.allow_replacement
    courses = policy.for_relation("COURSES")
    assert courses.allow_key_replacement
    assert courses.allow_db_key_replacement
    assert not courses.allow_merge_on_key_conflict  # the <NO> answers
    grades = policy.for_relation("GRADES")
    assert not grades.allow_merge_on_key_conflict
    for relation in ("CURRICULUM", "DEPARTMENT", "STUDENT"):
        relation_policy = policy.for_relation(relation)
        assert relation_policy.can_modify
        assert relation_policy.can_insert
        assert relation_policy.can_replace_existing


def test_footnote5_skipping(omega):
    """Answering <NO> to 'Can the relation DEPARTMENT be modified...'
    skips its two follow-up questions."""
    answers = [
        True, True, True, False,   # gate + COURSES
        True, True, True,          # CURRICULUM
        False,                     # DEPARTMENT gate: NO -> skip 2
        True, True, False,         # GRADES
        True, True, True,          # STUDENT
    ]
    policy = TranslatorPolicy()
    transcript = Transcript()
    run_replacement_dialog(omega, ScriptedAnswers(answers), policy, transcript)
    assert len(transcript) == 14
    department = policy.for_relation("DEPARTMENT")
    assert not department.can_modify
    assert not department.can_insert
    assert not department.can_replace_existing


def test_replacement_disallowed_short_circuits(omega):
    policy = TranslatorPolicy()
    transcript = Transcript()
    run_replacement_dialog(omega, ScriptedAnswers([False]), policy, transcript)
    assert len(transcript) == 1
    assert not policy.allow_replacement


def test_island_gate_no_skips_followups(omega):
    answers = [
        True,
        False,                    # COURSES key not modifiable -> skip 2
        True, True, True,         # CURRICULUM
        True, True, True,         # DEPARTMENT
        False,                    # GRADES key not modifiable -> skip 2
        True, True, True,         # STUDENT
    ]
    policy = TranslatorPolicy()
    transcript = Transcript()
    run_replacement_dialog(omega, ScriptedAnswers(answers), policy, transcript)
    assert len(transcript) == 12
    assert not policy.for_relation("COURSES").allow_key_replacement
    assert not policy.for_relation("COURSES").allow_db_key_replacement
