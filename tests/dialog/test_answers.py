"""Answer sources."""

import io

import pytest

from repro.errors import AnswerError
from repro.dialog.answers import (
    CallableAnswers,
    ConstantAnswers,
    InteractiveAnswers,
    MappingAnswers,
    ScriptedAnswers,
)
from repro.dialog.questions import Question

Q = Question("x.y", "A question?")


def test_scripted_in_order():
    source = ScriptedAnswers([True, False, True])
    assert source.answer(Q) is True
    assert source.answer(Q) is False
    assert source.remaining == 1


def test_scripted_exhaustion():
    source = ScriptedAnswers([True])
    source.answer(Q)
    with pytest.raises(AnswerError, match="exhausted"):
        source.answer(Q)


def test_mapping_with_default():
    source = MappingAnswers({"x.y": False}, default=True)
    assert source.answer(Q) is False
    assert source.answer(Question("other", "?")) is True


def test_constant():
    assert ConstantAnswers(True).answer(Q) is True
    assert ConstantAnswers(False).answer(Q) is False


def test_callable():
    source = CallableAnswers(lambda q: q.qid.startswith("x"))
    assert source.answer(Q) is True
    assert source.answer(Question("z", "?")) is False


class TestInteractive:
    def test_yes_variants(self):
        source = InteractiveAnswers(io.StringIO("y\n"), io.StringIO())
        assert source.answer(Q) is True

    def test_no_variants(self):
        source = InteractiveAnswers(io.StringIO("NO\n"), io.StringIO())
        assert source.answer(Q) is False

    def test_reprompts_on_garbage(self):
        out = io.StringIO()
        source = InteractiveAnswers(io.StringIO("maybe\nyes\n"), out)
        assert source.answer(Q) is True
        assert "Please answer YES or NO" in out.getvalue()

    def test_eof_raises(self):
        source = InteractiveAnswers(io.StringIO(""), io.StringIO())
        with pytest.raises(AnswerError):
            source.answer(Q)

    def test_prompt_contains_question(self):
        out = io.StringIO()
        InteractiveAnswers(io.StringIO("y\n"), out).answer(Q)
        assert "A question?" in out.getvalue()
