"""Transcript recording and rendering."""

from repro.dialog.questions import Question
from repro.dialog.transcript import Transcript


def test_render_format():
    transcript = Transcript()
    transcript.record(Question("a", "First?", section="s1"), True)
    transcript.record(Question("b", "Second?", section="s2"), False)
    assert transcript.render() == "First? <YES>\nSecond? <NO>"


def test_render_section_filter():
    transcript = Transcript()
    transcript.record(Question("a", "First?", section="s1"), True)
    transcript.record(Question("b", "Second?", section="s2"), False)
    assert transcript.render(section="s2") == "Second? <NO>"


def test_questions_asked():
    transcript = Transcript()
    transcript.record(Question("a", "First?", section="s1"), True)
    transcript.record(Question("b", "Second?", section="s2"), False)
    assert transcript.questions_asked() == ["a", "b"]
    assert transcript.questions_asked(section="s1") == ["a"]


def test_len():
    transcript = Transcript()
    assert len(transcript) == 0
    transcript.record(Question("a", "?"), True)
    assert len(transcript) == 1
