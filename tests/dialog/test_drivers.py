"""Full definition dialog, deletion/insertion sections, end-to-end use."""

import pytest

from repro.core.updates.policy import ReferenceRepair
from repro.dialog.answers import ConstantAnswers, MappingAnswers
from repro.dialog.drivers import choose_translator, run_definition_dialog
from repro.errors import UpdateRejectedError


class TestFullDialog:
    def test_permissive_answers(self, omega):
        policy, transcript = run_definition_dialog(
            omega, ConstantAnswers(True)
        )
        assert policy.allow_insertion
        assert policy.allow_deletion
        assert policy.allow_replacement
        sections = {q.section for q, __ in transcript.entries}
        assert sections == {"insertion", "deletion", "replacement"}

    def test_deletion_section_covers_peninsula(self, omega):
        __, transcript = run_definition_dialog(omega, ConstantAnswers(True))
        deletion_qids = transcript.questions_asked(section="deletion")
        assert "deletion.allowed" in deletion_qids
        assert any("CURRICULUM" in qid for qid in deletion_qids)

    def test_deletion_repair_delete_choice(self, omega):
        policy, __ = run_definition_dialog(omega, ConstantAnswers(True))
        assert (
            policy.for_relation("CURRICULUM").on_reference_delete
            is ReferenceRepair.DELETE
        )

    def test_deletion_repair_prohibit_choice(self, omega):
        answers = MappingAnswers(
            {"deletion.CURRICULUM.repair_delete": False}, default=True
        )
        policy, __ = run_definition_dialog(omega, answers)
        # CURRICULUM's FK sits in its key: nullify is impossible, so a
        # "no" to deletion means prohibition.
        assert (
            policy.for_relation("CURRICULUM").on_reference_delete
            is ReferenceRepair.PROHIBIT
        )

    def test_deletion_disallowed_skips_repairs(self, omega):
        answers = MappingAnswers({"deletion.allowed": False}, default=True)
        policy, transcript = run_definition_dialog(omega, answers)
        assert not policy.allow_deletion
        assert transcript.questions_asked(section="deletion") == [
            "deletion.allowed"
        ]


class TestNullifiableRepairQuestion:
    def test_nullify_offered_for_nullable_fk(self, university_graph):
        """When FACULTY is in the island, the COURSES.instructor_id
        reference is nullable, so the dialog offers nullification."""
        from repro.core.view_object import define_view_object

        faculty_object = define_view_object(
            university_graph,
            "fac",
            "FACULTY",
            selections={"FACULTY": ("person_id", "rank", "office")},
        )
        answers = MappingAnswers(
            {
                "deletion.COURSES.repair_delete": False,
                "deletion.COURSES.repair_nullify": True,
            },
            default=True,
        )
        policy, transcript = run_definition_dialog(faculty_object, answers)
        assert (
            policy.for_relation("COURSES").on_reference_delete
            is ReferenceRepair.NULLIFY
        )
        assert "deletion.COURSES.repair_nullify" in transcript.questions_asked()


class TestChooseTranslator:
    def test_translator_enforces_dialog_choices(
        self, omega, university_engine
    ):
        """The paper's closing example: a translator that forbids
        modifying DEPARTMENT rejects the EES345 replacement."""
        answers = MappingAnswers(
            {"modify.DEPARTMENT.allowed": False}, default=True
        )
        translator, __ = choose_translator(omega, answers)
        course_id = next(iter(university_engine.scan("COURSES")))[0]
        old = translator.instantiate(university_engine, (course_id,))
        new = old.to_dict()
        new["dept_name"] = "Engineering Economic Systems"
        new["DEPARTMENT"] = [
            {
                "dept_name": "Engineering Economic Systems",
                "building": "Terman",
            }
        ]
        with pytest.raises(UpdateRejectedError):
            translator.replace(university_engine, old, new)
        assert (
            university_engine.get(
                "DEPARTMENT", ("Engineering Economic Systems",)
            )
            is None
        )

    def test_permissive_translator_accepts(self, omega, university_engine):
        translator, __ = choose_translator(omega, ConstantAnswers(True))
        course_id = next(iter(university_engine.scan("COURSES")))[0]
        old = translator.instantiate(university_engine, (course_id,))
        new = old.to_dict()
        new["title"] = "After Dialog"
        translator.replace(university_engine, old, new)
        assert university_engine.get("COURSES", (course_id,))[1] == "After Dialog"

    def test_amortization(self, omega, university_engine):
        """One dialog, many updates — no further questions."""
        source = ConstantAnswers(True)
        translator, transcript = choose_translator(omega, source)
        asked_before = len(transcript)
        for values in list(university_engine.scan("COURSES"))[:3]:
            old = translator.instantiate(university_engine, (values[0],))
            new = old.to_dict()
            new["units"] = (new["units"] % 5) + 1
            translator.replace(university_engine, old, new)
        assert len(transcript) == asked_before
