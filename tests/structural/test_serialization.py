"""Structural-schema serialization round-trips."""

import json

import pytest

from repro.errors import StructuralError
from repro.structural.serialization import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
)
from repro.workloads.cad import cad_schema
from repro.workloads.hospital import hospital_schema
from repro.workloads.university import university_schema


@pytest.mark.parametrize(
    "factory", [university_schema, hospital_schema, cad_schema]
)
def test_round_trip(factory):
    original = factory()
    rebuilt = graph_from_dict(graph_to_dict(original))
    assert rebuilt.name == original.name
    assert rebuilt.relation_names == original.relation_names
    assert len(rebuilt.connections) == len(original.connections)
    for connection in original.connections:
        clone = rebuilt.connection(connection.name)
        assert clone.kind == connection.kind
        assert clone.source == connection.source
        assert clone.target == connection.target
        assert clone.source_attributes == connection.source_attributes


def test_json_round_trip():
    original = university_schema()
    text = graph_to_json(original)
    json.loads(text)
    rebuilt = graph_from_json(text)
    assert rebuilt.relation_names == original.relation_names


def test_rebuilt_graph_validates_connections():
    """Deserialization re-runs Definition 2.2-2.4 validation."""
    data = graph_to_dict(university_schema())
    for connection in data["connections"]:
        if connection["name"] == "courses_grades":
            connection["source_attributes"] = ["title"]  # not K(COURSES)
    from repro.errors import ConnectionError

    with pytest.raises(ConnectionError):
        graph_from_dict(data)


def test_bad_format():
    with pytest.raises(StructuralError):
        graph_from_dict({"format": 0})


def test_rebuilt_graph_supports_full_pipeline():
    """Schema → objects → data, all from serialized state."""
    from repro.core.serialization import view_object_from_dict, view_object_to_dict
    from repro.relational.memory_engine import MemoryEngine
    from repro.relational.persistence import dump_database, load_database
    from repro.workloads.figures import course_info_object
    from repro.workloads.university import populate_university

    graph = university_schema()
    engine = MemoryEngine()
    graph.install(engine)
    populate_university(engine)
    omega = course_info_object(graph)

    # Serialize everything...
    stored_graph = graph_to_dict(graph)
    stored_object = view_object_to_dict(omega)
    stored_data = dump_database(engine)

    # ...and reconstruct a working session from the stored state alone.
    graph2 = graph_from_dict(stored_graph)
    engine2 = MemoryEngine()
    load_database(engine2, stored_data)
    omega2 = view_object_from_dict(graph2, stored_object)

    from repro.core.query import execute_query

    results = execute_query(
        omega2, engine2, "level = 'graduate' and count(STUDENT) < 5"
    )
    assert len(results) == 1
