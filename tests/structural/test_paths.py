"""Path enumeration over the structural graph."""

import pytest

from repro.structural.connections import ConnectionKind
from repro.structural.paths import ConnectionPath, shortest_path, simple_paths
from repro.workloads.university import university_schema


@pytest.fixture
def graph():
    return university_schema()


def test_paths_courses_to_student(graph):
    paths = simple_paths(graph, "COURSES", "STUDENT")
    descriptions = {p.describe() for p in paths}
    # The two-hop path of Figure 3 must be among them.
    assert "COURSES --* GRADES *-- STUDENT" in descriptions


def test_paths_courses_to_people_two_short_routes(graph):
    paths = simple_paths(graph, "COURSES", "PEOPLE", max_length=3)
    assert len(paths) >= 2
    via = {p.relations[1] for p in paths}
    assert {"DEPARTMENT", "GRADES"} <= via


def test_shortest_path(graph):
    path = shortest_path(graph, "COURSES", "STUDENT")
    assert len(path) == 2
    assert path.relations == ("COURSES", "GRADES", "STUDENT")


def test_kind_filter(graph):
    only_ownership = simple_paths(
        graph, "COURSES", "STUDENT", kinds=[ConnectionKind.OWNERSHIP]
    )
    assert all(
        t.kind is ConnectionKind.OWNERSHIP for p in only_ownership for t in p
    )
    assert len(only_ownership) == 1


def test_max_length_bounds(graph):
    assert simple_paths(graph, "COURSES", "PEOPLE", max_length=1) == []


def test_no_path(graph):
    assert shortest_path(graph, "CURRICULUM", "STAFF", kinds=[ConnectionKind.SUBSET]) is None


def test_identical_endpoints(graph):
    assert simple_paths(graph, "COURSES", "COURSES") == []


def test_path_relations_property(graph):
    path = shortest_path(graph, "CURRICULUM", "GRADES")
    assert path.relations[0] == "CURRICULUM"
    assert path.relations[-1] == "GRADES"


def test_bad_chain_rejected(graph):
    p1 = shortest_path(graph, "COURSES", "GRADES")
    p2 = shortest_path(graph, "PEOPLE", "STUDENT")
    with pytest.raises(ValueError):
        ConnectionPath(list(p1.traversals) + list(p2.traversals))
