"""Integrity checker: the existence rules of Definitions 2.2-2.4."""

import pytest

from repro.relational.memory_engine import MemoryEngine
from repro.structural.connections import Traversal
from repro.structural.integrity import IntegrityChecker, connected_tuples
from repro.workloads.university import populate_university, university_schema


@pytest.fixture
def graph():
    return university_schema()


@pytest.fixture
def engine(graph):
    engine = MemoryEngine()
    graph.install(engine)
    populate_university(engine)
    return engine


@pytest.fixture
def checker(graph):
    return IntegrityChecker(graph)


class TestCleanDatabase:
    def test_generated_data_is_consistent(self, engine, checker):
        assert checker.is_consistent(engine)

    def test_check_returns_empty(self, engine, checker):
        assert checker.check(engine) == []


class TestOwnershipRule:
    def test_orphan_grade_detected(self, engine, checker):
        engine.insert(
            "GRADES",
            {"course_id": "GHOST1", "student_id": 1001, "grade": "A"},
        )
        violations = checker.check(engine)
        rules = {v.rule for v in violations}
        assert "ownership-1" in rules

    def test_orphan_grade_names_connection(self, engine, checker, graph):
        engine.insert(
            "GRADES",
            {"course_id": "GHOST1", "student_id": 1001, "grade": "A"},
        )
        violation = [v for v in checker.check(engine) if v.rule == "ownership-1"][0]
        assert violation.relation == "GRADES"
        assert "courses_grades" in violation.message


class TestSubsetRule:
    def test_student_without_person(self, engine, checker):
        engine.insert(
            "STUDENT",
            {"person_id": 999999, "degree_program": "MSCS", "year": 1},
        )
        rules = {v.rule for v in checker.check(engine)}
        assert "subset-1" in rules


class TestReferenceRule:
    def test_dangling_reference(self, engine, checker):
        engine.insert(
            "CURRICULUM",
            {"degree": "MSCS", "course_id": "GHOST9", "category": "required"},
        )
        violations = [
            v for v in checker.check(engine) if v.rule == "reference-1"
        ]
        assert violations and violations[0].relation == "CURRICULUM"

    def test_null_reference_is_legal(self, engine, checker):
        engine.insert(
            "COURSES",
            {
                "course_id": "X1",
                "title": "t",
                "units": 1,
                "level": "graduate",
                "dept_name": "Physics",
                "instructor_id": None,
            },
        )
        assert checker.is_consistent(engine)


class TestConnectedTuples:
    def test_forward_match(self, engine, graph):
        connection = graph.connection("courses_grades")
        course = engine.scan("COURSES").__next__()
        grades = connected_tuples(
            engine, Traversal(connection, True), course
        )
        for grade in grades:
            assert grade[0] == course[0]

    def test_backward_match(self, engine, graph):
        connection = graph.connection("courses_grades")
        grade = next(iter(engine.scan("GRADES")))
        owners = connected_tuples(
            engine, Traversal(connection, False), grade
        )
        assert len(owners) == 1
        assert owners[0][0] == grade[0]

    def test_null_connects_nothing(self, engine, graph):
        engine.insert(
            "COURSES",
            {
                "course_id": "X1",
                "title": "t",
                "units": 1,
                "level": "graduate",
                "dept_name": "Physics",
                "instructor_id": None,
            },
        )
        connection = graph.connection("courses_instructor")
        course = engine.get("COURSES", ("X1",))
        assert connected_tuples(engine, Traversal(connection, True), course) == []
