"""ASCII and DOT rendering of structural schemas."""

from repro.structural.rendering import to_ascii, to_dot
from repro.workloads.university import university_schema


def test_ascii_uses_paper_symbols():
    text = to_ascii(university_schema())
    assert "--*" in text
    assert "-->" in text
    assert "==>o" in text


def test_ascii_lists_every_relation():
    graph = university_schema()
    text = to_ascii(graph)
    for name in graph.relation_names:
        assert name in text


def test_dot_is_well_formed():
    graph = university_schema()
    dot = to_dot(graph)
    assert dot.startswith('digraph "university"')
    assert dot.rstrip().endswith("}")
    assert dot.count("->") == len(graph.connections)


def test_dot_styles_by_kind():
    dot = to_dot(university_schema())
    assert "owns" in dot
    assert "refs" in dot
    assert "isa" in dot
