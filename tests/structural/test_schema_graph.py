"""Structural schema graph: construction, traversal, circuits."""

import pytest

from repro.errors import ConnectionError, StructuralError, UnknownRelationError
from repro.relational.memory_engine import MemoryEngine
from repro.structural.connections import ConnectionKind
from repro.workloads.university import university_schema


@pytest.fixture
def graph():
    return university_schema()


class TestCatalog:
    def test_relation_names(self, graph):
        assert set(graph.relation_names) == {
            "DEPARTMENT",
            "PEOPLE",
            "STUDENT",
            "FACULTY",
            "STAFF",
            "COURSES",
            "CURRICULUM",
            "GRADES",
        }

    def test_connection_count_matches_figure1(self, graph):
        assert len(graph.connections) == 9

    def test_relation_lookup(self, graph):
        assert graph.relation("COURSES").key == ("course_id",)
        with pytest.raises(UnknownRelationError):
            graph.relation("NOPE")

    def test_connection_lookup(self, graph):
        assert graph.connection("courses_grades").kind is ConnectionKind.OWNERSHIP
        with pytest.raises(ConnectionError):
            graph.connection("nope")

    def test_duplicate_relation_rejected(self, graph):
        with pytest.raises(StructuralError):
            graph.add_relation(graph.relation("COURSES"))

    def test_duplicate_connection_rejected(self, graph):
        with pytest.raises(ConnectionError):
            graph.ownership(
                "courses_grades", "COURSES", "GRADES",
                ["course_id"], ["course_id"],
            )


class TestTraversal:
    def test_connections_from(self, graph):
        names = {c.name for c in graph.connections_from("COURSES")}
        assert names == {
            "courses_department",
            "courses_grades",
            "courses_instructor",
        }

    def test_connections_from_filtered(self, graph):
        owned = graph.connections_from("COURSES", ConnectionKind.OWNERSHIP)
        assert [c.name for c in owned] == ["courses_grades"]

    def test_connections_to(self, graph):
        names = {c.name for c in graph.connections_to("DEPARTMENT")}
        assert names == {"people_department", "courses_department"}

    def test_traversals_include_inverse(self, graph):
        traversals = graph.traversals_from("GRADES")
        starts = {(t.end, t.forward) for t in traversals}
        assert ("COURSES", False) in starts
        assert ("STUDENT", False) in starts

    def test_traversals_without_inverse(self, graph):
        traversals = graph.traversals_from("GRADES", include_inverse=False)
        assert traversals == []

    def test_traversal_kind_filter(self, graph):
        subsets = graph.traversals_from(
            "PEOPLE", kinds=[ConnectionKind.SUBSET]
        )
        assert {t.end for t in subsets} == {"STUDENT", "FACULTY", "STAFF"}

    def test_neighbors(self, graph):
        assert graph.neighbors("GRADES") == {"COURSES", "STUDENT"}


class TestCircuits:
    def test_figure2_circuit_exists(self, graph):
        relations = ["COURSES", "DEPARTMENT", "PEOPLE", "STUDENT", "GRADES"]
        assert graph.undirected_cycles_exist_within(relations)

    def test_no_circuit_in_subset(self, graph):
        assert not graph.undirected_cycles_exist_within(
            ["COURSES", "GRADES", "CURRICULUM"]
        )

    def test_no_circuit_singleton(self, graph):
        assert not graph.undirected_cycles_exist_within(["COURSES"])


class TestInstall:
    def test_install_creates_relations(self, graph):
        engine = MemoryEngine()
        graph.install(engine)
        assert set(engine.relation_names()) == set(graph.relation_names)

    def test_install_creates_indexes(self, graph):
        engine = MemoryEngine()
        graph.install(engine)
        table = engine._table("GRADES")
        assert table.has_index(("course_id",))
        assert table.has_index(("student_id",))

    def test_install_without_indexes(self, graph):
        engine = MemoryEngine()
        graph.install(engine, with_indexes=False)
        assert engine._table("GRADES").index_count == 0


def test_describe_mentions_all_connections(graph):
    text = graph.describe()
    for connection in graph.connections:
        assert connection.name in text
