"""Connection and traversal value objects."""

import pytest

from repro.structural.connections import Connection, ConnectionKind, Traversal


@pytest.fixture
def ownership():
    return Connection(
        "courses_grades",
        ConnectionKind.OWNERSHIP,
        "COURSES",
        "GRADES",
        ["course_id"],
        ["course_id"],
    )


class TestConnection:
    def test_symbols(self):
        assert ConnectionKind.OWNERSHIP.symbol == "--*"
        assert ConnectionKind.REFERENCE.symbol == "-->"
        assert ConnectionKind.SUBSET.symbol == "==>o"

    def test_endpoint_attributes(self, ownership):
        assert ownership.endpoint_attributes("COURSES") == ("course_id",)
        assert ownership.endpoint_attributes("GRADES") == ("course_id",)

    def test_endpoint_attributes_bad_relation(self, ownership):
        with pytest.raises(ValueError):
            ownership.endpoint_attributes("STUDENT")

    def test_other_endpoint(self, ownership):
        assert ownership.other_endpoint("COURSES") == "GRADES"
        assert ownership.other_endpoint("GRADES") == "COURSES"

    def test_describe(self, ownership):
        assert ownership.describe() == "COURSES(course_id) --* GRADES(course_id)"

    def test_equality(self, ownership):
        clone = Connection(
            "courses_grades",
            ConnectionKind.OWNERSHIP,
            "COURSES",
            "GRADES",
            ["course_id"],
            ["course_id"],
        )
        assert clone == ownership
        assert hash(clone) == hash(ownership)


class TestTraversal:
    def test_forward(self, ownership):
        forward = Traversal(ownership, forward=True)
        assert forward.start == "COURSES"
        assert forward.end == "GRADES"
        assert forward.start_attributes == ("course_id",)
        assert forward.kind is ConnectionKind.OWNERSHIP

    def test_inverse(self, ownership):
        inverse = Traversal(ownership, forward=False)
        assert inverse.start == "GRADES"
        assert inverse.end == "COURSES"

    def test_inverse_of_inverse(self, ownership):
        forward = Traversal(ownership, forward=True)
        assert forward.inverse().inverse() == forward

    def test_describe_directions(self, ownership):
        assert "--*" in Traversal(ownership, True).describe()
        assert "*--" in Traversal(ownership, False).describe()
