"""Connection validation: the key conditions of Definitions 2.2-2.4."""

import pytest

from repro.errors import ConnectionError
from repro.relational.ddl import relation
from repro.structural.connections import Connection, ConnectionKind
from repro.structural.validation import validate_connection


@pytest.fixture
def schemas():
    return {
        s.name: s
        for s in (
            relation("OWNER").text("oid").text("info", nullable=True).key("oid").build(),
            relation("OWNED")
            .text("oid")
            .integer("seq")
            .text("payload", nullable=True)
            .key("oid", "seq")
            .build(),
            relation("REFERRER")
            .text("rid")
            .text("oid", nullable=True)
            .key("rid")
            .build(),
            relation("SPECIAL").text("oid").text("extra").key("oid").build(),
            relation("INTKEY").integer("oid").key("oid").build(),
            relation("PAIRKEY").text("a").text("b").key("a", "b").build(),
        )
    }


def make(kind, source, target, x1, x2):
    return Connection("c", kind, source, target, x1, x2)


class TestCommon:
    def test_valid_ownership(self, schemas):
        validate_connection(
            make(ConnectionKind.OWNERSHIP, "OWNER", "OWNED", ["oid"], ["oid"]),
            schemas,
        )

    def test_unknown_relation(self, schemas):
        with pytest.raises(ConnectionError, match="unknown relation"):
            validate_connection(
                make(ConnectionKind.OWNERSHIP, "NOPE", "OWNED", ["oid"], ["oid"]),
                schemas,
            )

    def test_arity_mismatch(self, schemas):
        with pytest.raises(ConnectionError, match="equal arity"):
            validate_connection(
                make(
                    ConnectionKind.OWNERSHIP,
                    "OWNER",
                    "OWNED",
                    ["oid"],
                    ["oid", "seq"],
                ),
                schemas,
            )

    def test_empty_attributes(self, schemas):
        with pytest.raises(ConnectionError, match="nonempty"):
            validate_connection(
                make(ConnectionKind.OWNERSHIP, "OWNER", "OWNED", [], []),
                schemas,
            )

    def test_unknown_attribute(self, schemas):
        with pytest.raises(ConnectionError, match="no attribute"):
            validate_connection(
                make(ConnectionKind.OWNERSHIP, "OWNER", "OWNED", ["bogus"], ["oid"]),
                schemas,
            )

    def test_domain_mismatch(self, schemas):
        with pytest.raises(ConnectionError, match="domain mismatch"):
            validate_connection(
                make(ConnectionKind.REFERENCE, "INTKEY", "OWNER", ["oid"], ["oid"]),
                schemas,
            )

    def test_repeated_attribute(self, schemas):
        with pytest.raises(ConnectionError, match="repeat"):
            validate_connection(
                make(
                    ConnectionKind.OWNERSHIP,
                    "OWNER",
                    "OWNED",
                    ["oid", "oid"],
                    ["oid", "seq"],
                ),
                schemas,
            )


class TestOwnership:
    def test_x1_must_be_owner_key(self, schemas):
        with pytest.raises(ConnectionError, match="X1 must equal"):
            validate_connection(
                make(ConnectionKind.OWNERSHIP, "OWNER", "OWNED", ["info"], ["oid"]),
                schemas,
            )

    def test_x2_must_be_in_key(self, schemas):
        with pytest.raises(ConnectionError, match="within"):
            validate_connection(
                make(
                    ConnectionKind.OWNERSHIP, "OWNER", "OWNED", ["oid"], ["payload"]
                ),
                schemas,
            )

    def test_x2_proper_subset(self, schemas):
        # X2 equal to the whole key means a 1:1 subset relationship.
        with pytest.raises(ConnectionError, match="subset connection"):
            validate_connection(
                make(ConnectionKind.OWNERSHIP, "OWNER", "SPECIAL", ["oid"], ["oid"]),
                schemas,
            )


class TestReference:
    def test_valid_nonkey_reference(self, schemas):
        validate_connection(
            make(ConnectionKind.REFERENCE, "REFERRER", "OWNER", ["oid"], ["oid"]),
            schemas,
        )

    def test_valid_key_reference(self, schemas):
        validate_connection(
            make(ConnectionKind.REFERENCE, "OWNED", "OWNER", ["oid"], ["oid"]),
            schemas,
        )

    def test_x2_must_be_target_key(self, schemas):
        with pytest.raises(ConnectionError, match="X2 must equal"):
            validate_connection(
                make(ConnectionKind.REFERENCE, "REFERRER", "OWNER", ["oid"], ["info"]),
                schemas,
            )

    def test_x1_must_not_straddle_key(self, schemas):
        # oid is a key attribute of OWNED, payload a nonkey attribute:
        # X1 straddles K(R1) and NK(R1), which Definition 2.3 forbids.
        with pytest.raises(ConnectionError, match="entirely"):
            validate_connection(
                make(
                    ConnectionKind.REFERENCE,
                    "OWNED",
                    "PAIRKEY",
                    ["oid", "payload"],
                    ["a", "b"],
                ),
                schemas,
            )


class TestSubset:
    def test_valid_subset(self, schemas):
        validate_connection(
            make(ConnectionKind.SUBSET, "OWNER", "SPECIAL", ["oid"], ["oid"]),
            schemas,
        )

    def test_x1_must_be_source_key(self, schemas):
        with pytest.raises(ConnectionError, match="X1 must equal"):
            validate_connection(
                make(ConnectionKind.SUBSET, "OWNER", "SPECIAL", ["info"], ["oid"]),
                schemas,
            )

    def test_x2_must_be_target_key(self, schemas):
        with pytest.raises(ConnectionError, match="X2 must equal"):
            validate_connection(
                make(ConnectionKind.SUBSET, "OWNER", "SPECIAL", ["oid"], ["extra"]),
                schemas,
            )
