"""The deterministic fault-injection harness."""

import pytest

from repro.errors import TransientEngineError
from repro.relational.ddl import relation
from repro.relational.faults import (
    FaultInjectingEngine,
    FaultPlan,
    FaultRule,
    SimulatedCrash,
)
from repro.relational.memory_engine import MemoryEngine

pytestmark = pytest.mark.chaos

ITEMS = relation("ITEMS").integer("item_id").text("label").key("item_id").build()


def make_engine(plan=None):
    base = MemoryEngine()
    base.create_relation(ITEMS)
    return base, FaultInjectingEngine(base, plan)


class TestFaultRules:
    def test_group_matching(self):
        rule = FaultRule("transient", ("mutation",))
        assert rule.matches("insert")
        assert rule.matches("clear")
        assert not rule.matches("get")
        assert FaultRule("transient", ("*",)).matches("commit")
        assert FaultRule("transient", ("get",)).matches("get")

    def test_at_fires_once_on_nth_match(self):
        plan = FaultPlan().transient_at("insert", 2)
        _, engine = make_engine(plan)
        engine.insert("ITEMS", (1, "a"))
        with pytest.raises(TransientEngineError):
            engine.insert("ITEMS", (2, "b"))
        engine.insert("ITEMS", (2, "b"))  # rule exhausted
        assert plan.exhausted
        assert engine.injected["transient"] == 1

    def test_rate_is_deterministic_per_seed(self):
        def histories(seed):
            plan = FaultPlan(seed).transient_rate(0.5, ("insert",))
            _, engine = make_engine(plan)
            for i in range(40):
                try:
                    engine.insert("ITEMS", (i, "x"))
                except TransientEngineError:
                    pass
            return tuple(engine.history)

        assert histories(3) == histories(3)
        assert histories(3) != histories(4)

    def test_burst_caps_fires(self):
        plan = FaultPlan().transient_burst(2, ("insert",))
        _, engine = make_engine(plan)
        for i in range(2):
            with pytest.raises(TransientEngineError):
                engine.insert("ITEMS", (i, "x"))
        engine.insert("ITEMS", (7, "x"))
        assert plan.exhausted

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("meltdown")


class TestSimulatedCrash:
    def test_crash_is_not_an_exception(self):
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)

    def test_crash_bypasses_rollback_handlers(self):
        """``except Exception`` cleanup must not swallow a crash."""
        plan = FaultPlan().crash_at("insert", 2)
        base, engine = make_engine(plan)
        with pytest.raises(SimulatedCrash):
            engine.insert_many("ITEMS", [(1, "a"), (2, "b"), (3, "c")])
        # The generic loop's rollback never ran: the first insert is
        # still there, mid-transaction, exactly like after a kill -9.
        assert engine.in_transaction
        assert base.get("ITEMS", (1,)) is not None

    def test_crash_carries_location(self):
        plan = FaultPlan().crash_at("delete", 1)
        base, engine = make_engine(plan)
        base.insert("ITEMS", (1, "a"))
        with pytest.raises(SimulatedCrash) as excinfo:
            engine.delete("ITEMS", (1,))
        assert excinfo.value.operation == "delete"
        assert excinfo.value.index == 1


class TestLatency:
    def test_latency_sleeps_and_proceeds(self):
        plan = FaultPlan().latency("insert", 0.01, times=1)
        _, engine = make_engine(plan)
        slept = []
        engine._sleep = slept.append
        engine.insert("ITEMS", (1, "a"))
        engine.insert("ITEMS", (2, "b"))
        assert slept == [0.01]
        assert engine.injected["latency"] == 1


class TestWrapperTransparency:
    def test_rollback_is_never_ticked(self):
        plan = FaultPlan().add(FaultRule("transient", ("*",), rate=1.0))
        base, engine = make_engine(plan)
        base.begin()
        engine.rollback()  # would raise if ticked
        assert not engine.in_transaction

    def test_changelog_and_counters_pass_through(self):
        base, engine = make_engine()
        assert engine.changelog is base.changelog
        engine.insert("ITEMS", (1, "a"))
        assert engine.operation_counters()["insert"] == 1
        assert engine.operation_count("insert") == 1

    def test_plan_reset_replays_identically(self):
        plan = FaultPlan(seed=5).transient_rate(0.3, ("insert",))
        _, engine = make_engine(plan)

        def run():
            out = []
            for i in range(20):
                try:
                    engine.insert("ITEMS", (100 + i, "x"))
                    engine.delete("ITEMS", (100 + i,))
                except TransientEngineError:
                    out.append(i)
            return out

        first = run()
        plan.reset()
        assert run() == first
