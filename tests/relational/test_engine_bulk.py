"""Engine batch primitives, plan coalescing, and cross-backend parity
fixes (integrity-error mapping, index naming, datetime narrowing)."""

import datetime

import pytest

from repro.errors import DuplicateKeyError, NoSuchRowError, SchemaError
from repro.relational.ddl import relation
from repro.relational.operations import (
    Delete,
    Insert,
    Replace,
    UpdatePlan,
    apply_plan_batch,
    coalesce_plans,
)
from repro.relational.sqlite_engine import SqliteEngine
from tests.conftest import make_engine


@pytest.fixture
def engine(backend):
    engine = make_engine(backend)
    engine.create_relation(
        relation("T")
        .text("k")
        .integer("n", nullable=True)
        .date("d", nullable=True)
        .key("k")
        .build()
    )
    return engine


def row(i, n=None, d=None):
    return (f"k{i}", n if n is not None else i, d)


class TestInsertMany:
    def test_inserts_and_returns_keys(self, engine):
        keys = engine.insert_many("T", [row(i) for i in range(5)])
        assert keys == [(f"k{i}",) for i in range(5)]
        assert engine.count("T") == 5

    def test_accepts_mappings(self, engine):
        engine.insert_many("T", [{"k": "a", "n": 1, "d": None}])
        assert engine.get("T", ("a",)) == ("a", 1, None)

    def test_atomic_on_duplicate_against_table(self, engine):
        engine.insert("T", row(1))
        with pytest.raises(DuplicateKeyError) as err:
            engine.insert_many("T", [row(2), row(1), row(3)])
        assert err.value.key == ("k1",)
        # nothing from the batch survived
        assert engine.count("T") == 1
        assert engine.get("T", ("k2",)) is None

    def test_atomic_on_intra_batch_duplicate(self, engine):
        with pytest.raises(DuplicateKeyError) as err:
            engine.insert_many("T", [row(1), row(2), row(1, n=9)])
        assert err.value.key == ("k1",)
        assert engine.count("T") == 0

    def test_empty_batch(self, engine):
        assert engine.insert_many("T", []) == []

    def test_changelog_records_each_row(self, engine):
        before = engine.operation_counters()["insert"]
        engine.insert_many("T", [row(i) for i in range(3)])
        assert engine.operation_counters()["insert"] == before + 3


class TestApplyBatch:
    def test_mixed_operations(self, engine):
        engine.insert("T", row(0))
        applied = engine.apply_batch(
            [
                Insert("T", row(1)),
                Insert("T", row(2)),
                Replace("T", ("k0",), ("k0", 99, None)),
                Delete("T", ("k1",)),
            ]
        )
        assert applied == 4
        assert engine.get("T", ("k0",)) == ("k0", 99, None)
        assert engine.get("T", ("k1",)) is None
        assert engine.get("T", ("k2",)) == ("k2", 2, None)

    def test_atomic_on_failure(self, engine):
        engine.insert("T", row(0))
        with pytest.raises(NoSuchRowError):
            engine.apply_batch(
                [Insert("T", row(1)), Delete("T", ("missing",))]
            )
        assert engine.get("T", ("k1",)) is None
        assert engine.count("T") == 1

    def test_adjacent_insert_runs_grouped_on_sqlite(self):
        engine = SqliteEngine()
        engine.create_relation(
            relation("T").text("k").integer("n", nullable=True).key("k").build()
        )
        applied = engine.apply_batch(
            [Insert("T", ("a", 1)), Insert("T", ("b", 2)), Delete("T", ("a",))]
        )
        assert applied == 3
        assert engine.count("T") == 1


class TestGetMany:
    def test_found_and_missing(self, engine):
        engine.insert_many("T", [row(i) for i in range(4)])
        found = engine.get_many("T", [("k1",), ("k3",), ("nope",)])
        assert found == {("k1",): row(1), ("k3",): row(3)}

    def test_sqlite_chunking(self):
        engine = SqliteEngine()
        engine.create_relation(
            relation("T").text("k").integer("n", nullable=True).key("k").build()
        )
        engine.insert_many("T", [(f"k{i}", i) for i in range(1200)])
        keys = [(f"k{i}",) for i in range(1200)]
        found = engine.get_many("T", keys)
        assert len(found) == 1200
        assert found[("k777",)] == ("k777", 777)

    def test_composite_key_fallback(self, backend):
        engine = make_engine(backend)
        engine.create_relation(
            relation("P")
            .text("a")
            .text("b")
            .integer("n", nullable=True)
            .key("a", "b")
            .build()
        )
        engine.insert("P", ("x", "y", 1))
        engine.insert("P", ("x", "z", 2))
        found = engine.get_many("P", [("x", "y"), ("x", "q")])
        assert found == {("x", "y"): ("x", "y", 1)}


class FakeSchema:
    def key_of(self, values):
        return (values[0],)


def schema_of(_name):
    return FakeSchema()


def plan_of(*ops):
    plan = UpdatePlan()
    for op in ops:
        plan.add(op, "test")
    return plan


class TestCoalescePlans:
    def test_insert_then_replace_folds_to_insert(self):
        merged = coalesce_plans(
            [plan_of(Insert("R", (1, "a"))), plan_of(Replace("R", (1,), (1, "b")))],
            schema_of,
        )
        assert list(merged) == [Insert("R", (1, "b"))]

    def test_insert_then_delete_annihilates(self):
        merged = coalesce_plans(
            [plan_of(Insert("R", (1, "a")), Delete("R", (1,)))], schema_of
        )
        assert len(merged) == 0

    def test_replace_then_replace_keeps_last(self):
        merged = coalesce_plans(
            [
                plan_of(
                    Replace("R", (1,), (1, "a")), Replace("R", (1,), (1, "b"))
                )
            ],
            schema_of,
        )
        assert list(merged) == [Replace("R", (1,), (1, "b"))]

    def test_replace_then_delete_deletes_original_key(self):
        merged = coalesce_plans(
            [plan_of(Replace("R", (1,), (2, "a"))), plan_of(Delete("R", (2,)))],
            schema_of,
        )
        assert list(merged) == [Delete("R", (1,))]

    def test_delete_then_insert_becomes_replace(self):
        merged = coalesce_plans(
            [plan_of(Delete("R", (1,))), plan_of(Insert("R", (1, "z")))],
            schema_of,
        )
        assert list(merged) == [Replace("R", (1,), (1, "z"))]

    def test_duplicate_inserts_collapse(self):
        merged = coalesce_plans(
            [plan_of(Insert("R", (1, "a"))), plan_of(Insert("R", (1, "a")))],
            schema_of,
        )
        assert list(merged) == [Insert("R", (1, "a"))]

    def test_conflicting_duplicate_inserts_rejected(self):
        with pytest.raises(ValueError):
            coalesce_plans(
                [plan_of(Insert("R", (1, "a"))), plan_of(Insert("R", (1, "b")))],
                schema_of,
            )

    def test_key_changing_chain_follows_current_key(self):
        merged = coalesce_plans(
            [
                plan_of(
                    Insert("R", (1, "a")),
                    Replace("R", (1,), (2, "b")),
                    Replace("R", (2,), (2, "c")),
                )
            ],
            schema_of,
        )
        assert list(merged) == [Insert("R", (2, "c"))]

    def test_first_touch_order_preserved(self):
        merged = coalesce_plans(
            [plan_of(Insert("A", (1,)), Insert("B", (2,)), Insert("A", (3,)))],
            schema_of,
        )
        assert [op.relation for op in merged] == ["A", "B", "A"]

    def test_cancelled_key_can_be_reinserted(self):
        merged = coalesce_plans(
            [
                plan_of(
                    Insert("R", (1, "a")),
                    Delete("R", (1,)),
                    Insert("R", (1, "b")),
                )
            ],
            schema_of,
        )
        assert list(merged) == [Insert("R", (1, "b"))]


class TestApplyPlanBatch:
    def test_executes_coalesced(self, engine):
        engine.insert("T", row(0))
        plans = [
            plan_of(Insert("T", row(1))),
            plan_of(Replace("T", ("k1",), ("k1", 42, None))),
            plan_of(Delete("T", ("k0",))),
        ]
        combined = apply_plan_batch(engine, plans)
        # insert+replace folded into one insert of the final values
        assert combined.count("insert") == 1
        assert combined.count("replace") == 0
        assert engine.get("T", ("k1",)) == ("k1", 42, None)
        assert engine.get("T", ("k0",)) is None


class TestIntegrityErrorMapping:
    """Satellite: sqlite must raise the same types as the memory engine."""

    def test_null_in_non_nullable_parity(self, engine):
        with pytest.raises(SchemaError):
            engine.insert("T", (None, 1, None))

    def test_sqlite_not_null_constraint_maps_to_schema_error(self):
        engine = SqliteEngine()
        engine.create_relation(
            relation("T").text("k").integer("n", nullable=True).key("k").build()
        )
        # Bypass schema validation so sqlite itself sees the NULL and
        # raises its IntegrityError — the mapping must not mislabel it
        # as a duplicate key.
        engine._coerce_values = lambda name, values: tuple(values)
        with pytest.raises(SchemaError):
            engine.insert("T", (None, 1))

    def test_sqlite_duplicate_still_duplicate(self):
        engine = SqliteEngine()
        engine.create_relation(
            relation("T").text("k").integer("n", nullable=True).key("k").build()
        )
        engine.insert("T", ("a", 1))
        with pytest.raises(DuplicateKeyError):
            engine.insert("T", ("a", 2))


class TestIndexNaming:
    """Satellite: index names derive from columns so IF NOT EXISTS dedupes."""

    def _index_count(self, engine):
        cursor = engine._connection.execute(
            "SELECT COUNT(*) FROM sqlite_master "
            "WHERE type = 'index' AND name LIKE 'idx_%'"
        )
        return cursor.fetchone()[0]

    def test_repeated_create_index_dedupes(self):
        engine = SqliteEngine()
        engine.create_relation(
            relation("T").text("k").integer("n", nullable=True).key("k").build()
        )
        for _ in range(5):
            engine.create_index("T", ["n"])
        assert self._index_count(engine) == 1

    def test_distinct_column_lists_get_distinct_indexes(self):
        engine = SqliteEngine()
        engine.create_relation(
            relation("T")
            .text("k")
            .integer("n", nullable=True)
            .integer("m", nullable=True)
            .key("k")
            .build()
        )
        engine.create_index("T", ["n"])
        engine.create_index("T", ["m"])
        engine.create_index("T", ["n", "m"])
        assert self._index_count(engine) == 3


class TestDatetimeNarrowing:
    """Satellite regression: datetime.datetime narrows to date at the
    engine boundary, on both backends, for every entry point."""

    NOON = datetime.datetime(2024, 3, 14, 12, 30, 45)
    DAY = datetime.date(2024, 3, 14)

    def test_insert_narrows(self, engine):
        engine.insert("T", ("a", 1, self.NOON))
        stored = engine.get("T", ("a",))
        assert stored[2] == self.DAY
        assert type(stored[2]) is datetime.date

    def test_roundtrip_decode(self, engine):
        # A stored time suffix would break date.fromisoformat on sqlite.
        engine.insert("T", ("a", 1, self.NOON))
        assert list(engine.scan("T")) == [("a", 1, self.DAY)]

    def test_replace_narrows(self, engine):
        engine.insert("T", ("a", 1, None))
        engine.replace("T", ("a",), ("a", 1, self.NOON))
        assert engine.get("T", ("a",))[2] == self.DAY

    def test_find_by_accepts_datetime_entry(self, engine):
        engine.insert("T", ("a", 1, self.DAY))
        assert engine.find_by("T", ["d"], [self.NOON]) == [("a", 1, self.DAY)]

    def test_date_key_lookup_accepts_datetime(self, backend):
        engine = make_engine(backend)
        engine.create_relation(
            relation("E").date("day").integer("n", nullable=True).key("day").build()
        )
        engine.insert("E", (self.NOON, 7))
        assert engine.get("E", (self.NOON,)) == (self.DAY, 7)
        assert engine.get("E", (self.DAY,)) == (self.DAY, 7)
        engine.delete("E", (self.NOON,))
        assert engine.count("E") == 0

    def test_insert_many_narrows(self, engine):
        engine.insert_many("T", [("a", 1, self.NOON), ("b", 2, self.NOON)])
        assert engine.get("T", ("b",))[2] == self.DAY
