"""Change log: counters, marks, truncation."""

from repro.relational.changelog import ChangeLog


def test_counters():
    log = ChangeLog()
    log.record_insert("T", ("a",), ("a", 1))
    log.record_delete("T", ("a",), ("a", 1))
    log.record_replace("T", ("b",), ("b", 1), ("b", 2))
    assert log.counters == {"insert": 1, "delete": 1, "replace": 1}
    assert log.total() == 3
    assert len(log) == 3


def test_mark_and_since():
    log = ChangeLog()
    log.record_insert("T", ("a",), ("a", 1))
    mark = log.mark()
    log.record_insert("T", ("b",), ("b", 1))
    assert [r.key for r in log.since(mark)] == [("b",)]


def test_truncate_restores_counters():
    log = ChangeLog()
    log.record_insert("T", ("a",), ("a", 1))
    mark = log.mark()
    log.record_delete("T", ("a",), ("a", 1))
    log.record_replace("T", ("b",), ("b", 1), ("b", 2))
    log.truncate(mark)
    assert log.counters == {"insert": 1, "delete": 0, "replace": 0}
    assert len(log) == 1


def test_reset_counters_keeps_records():
    log = ChangeLog()
    log.record_insert("T", ("a",), ("a", 1))
    log.reset_counters()
    assert log.total() == 0
    assert len(log) == 1
