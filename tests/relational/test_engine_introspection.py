"""Engine introspection: counters, changelog, table clearing."""

import pytest

from repro.relational.ddl import relation
from repro.relational.memory_engine import MemoryEngine


@pytest.fixture
def engine():
    engine = MemoryEngine()
    engine.create_relation(
        relation("T").text("k").integer("n", nullable=True).key("k").build()
    )
    return engine


def test_operation_counters(engine):
    engine.insert("T", ("a", 1))
    engine.insert("T", ("b", 2))
    engine.replace("T", ("a",), ("a", 9))
    engine.delete("T", ("b",))
    counters = engine.operation_counters()
    assert counters == {"insert": 2, "delete": 1, "replace": 1}


def test_counters_shrink_on_rollback(engine):
    engine.insert("T", ("a", 1))
    engine.begin()
    engine.insert("T", ("b", 2))
    engine.rollback()
    assert engine.operation_counters()["insert"] == 1


def test_changelog_records_old_values(engine):
    engine.insert("T", ("a", 1))
    engine.replace("T", ("a",), ("a", 9))
    record = engine.changelog.records[-1]
    assert record.kind == "replace"
    assert record.old_values == ("a", 1)
    assert record.new_values == ("a", 9)


def test_clear_resets_indexes(engine):
    engine.create_index("T", ("n",))
    engine.insert("T", ("a", 1))
    table = engine._table("T")
    table.clear()
    assert len(table) == 0
    assert table.find_by(("n",), (1,)) == []
    table.insert(("z", 1))
    assert len(table.find_by(("n",), (1,))) == 1


def test_index_ablation_switch():
    disabled = MemoryEngine(use_indexes=False)
    disabled.create_relation(
        relation("T").text("k").integer("n", nullable=True).key("k").build()
    )
    disabled.create_index("T", ("n",))  # silently skipped
    assert disabled._table("T").index_count == 0
    disabled.insert("T", ("a", 1))
    assert len(disabled.find_by("T", ("n",), (1,))) == 1  # scan fallback
