"""Engine contract: every engine implementation must behave identically.

Every test here runs against four engines — the in-memory engine, the
sqlite backend, the ``BufferedEngine`` overlay, and a no-fault
``FaultInjectingEngine`` wrapper — pinning down the behaviour the
upper layers rely on.  The overlay engine deliberately refuses DDL and
rollback (it defers both to its base); those tests skip it with the
reason stated.
"""

import datetime

import pytest

from repro.core.updates.bulk import BufferedEngine
from repro.errors import (
    DuplicateKeyError,
    NoSuchRowError,
    SchemaError,
    TransactionError,
    UnknownRelationError,
)
from repro.relational.ddl import relation
from repro.relational.expressions import attr
from repro.relational.faults import FaultInjectingEngine, FaultPlan
from repro.relational.memory_engine import MemoryEngine
from tests.conftest import make_engine

CONTRACT_SCHEMA = (
    relation("T")
    .text("k")
    .integer("n", nullable=True)
    .boolean("flag", nullable=True)
    .date("d", nullable=True)
    .key("k")
    .build()
)


@pytest.fixture(
    params=["memory", "sqlite", "sqlite-prepared", "buffered", "fault"]
)
def engine(request):
    kind = request.param
    if kind in ("memory", "sqlite", "sqlite-prepared"):
        engine = make_engine(kind.split("-")[0])
        engine.create_relation(CONTRACT_SCHEMA)
        if kind == "sqlite-prepared":
            # The compiled translator's prepare_engine path: statement
            # templates built eagerly, behaviour identical.
            engine.prepare_relation("T")
        return engine
    base = MemoryEngine()
    base.create_relation(CONTRACT_SCHEMA)
    if kind == "buffered":
        return BufferedEngine(base)
    return FaultInjectingEngine(base, FaultPlan())  # no rules: passthrough


def skip_if_overlay(engine, capability):
    if isinstance(engine, BufferedEngine):
        pytest.skip(
            f"BufferedEngine defers {capability} to its base by design"
        )


class TestCatalog:
    def test_relation_names(self, engine):
        assert engine.relation_names() == ("T",)

    def test_has_relation(self, engine):
        assert engine.has_relation("T")
        assert not engine.has_relation("U")

    def test_duplicate_create_rejected(self, engine):
        skip_if_overlay(engine, "DDL")
        with pytest.raises(SchemaError):
            engine.create_relation(relation("T").text("k").key("k").build())

    def test_unknown_relation(self, engine):
        with pytest.raises(UnknownRelationError):
            list(engine.scan("U"))

    def test_drop_relation(self, engine):
        skip_if_overlay(engine, "DDL")
        engine.drop_relation("T")
        assert not engine.has_relation("T")


class TestMutation:
    def test_insert_tuple_and_mapping(self, engine):
        key = engine.insert("T", ("a", 1, True, None))
        assert key == ("a",)
        engine.insert("T", {"k": "b", "n": 2})
        assert engine.count("T") == 2

    def test_duplicate_key(self, engine):
        engine.insert("T", ("a", 1, None, None))
        with pytest.raises(DuplicateKeyError):
            engine.insert("T", ("a", 2, None, None))

    def test_delete(self, engine):
        engine.insert("T", ("a", 1, None, None))
        engine.delete("T", ("a",))
        assert engine.get("T", ("a",)) is None

    def test_delete_missing(self, engine):
        with pytest.raises(NoSuchRowError):
            engine.delete("T", ("zzz",))

    def test_replace_nonkey(self, engine):
        engine.insert("T", ("a", 1, None, None))
        engine.replace("T", ("a",), ("a", 99, None, None))
        assert engine.get("T", ("a",)) == ("a", 99, None, None)

    def test_replace_key_change(self, engine):
        engine.insert("T", ("a", 1, None, None))
        engine.replace("T", ("a",), ("b", 1, None, None))
        assert engine.get("T", ("a",)) is None
        assert engine.get("T", ("b",)) == ("b", 1, None, None)

    def test_replace_key_collision(self, engine):
        engine.insert("T", ("a", 1, None, None))
        engine.insert("T", ("b", 2, None, None))
        with pytest.raises(DuplicateKeyError):
            engine.replace("T", ("a",), ("b", 1, None, None))

    def test_replace_missing(self, engine):
        with pytest.raises(NoSuchRowError):
            engine.replace("T", ("zzz",), ("zzz", 1, None, None))

    def test_clear(self, engine):
        engine.insert("T", ("a", 1, None, None))
        engine.insert("T", ("b", 2, None, None))
        engine.clear("T")
        assert engine.count("T") == 0


class TestValueRoundTrip:
    def test_boolean_round_trip(self, engine):
        engine.insert("T", ("a", None, True, None))
        value = engine.get("T", ("a",))[2]
        assert value is True and isinstance(value, bool)

    def test_date_round_trip(self, engine):
        day = datetime.date(1991, 5, 29)
        engine.insert("T", ("a", None, None, day))
        assert engine.get("T", ("a",))[3] == day

    def test_null_round_trip(self, engine):
        engine.insert("T", ("a", None, None, None))
        assert engine.get("T", ("a",)) == ("a", None, None, None)


class TestReads:
    def test_scan(self, engine):
        engine.insert("T", ("a", 1, None, None))
        engine.insert("T", ("b", 2, None, None))
        assert sorted(v[0] for v in engine.scan("T")) == ["a", "b"]

    def test_find_by(self, engine):
        engine.insert("T", ("a", 1, None, None))
        engine.insert("T", ("b", 1, None, None))
        engine.insert("T", ("c", 2, None, None))
        assert len(engine.find_by("T", ("n",), (1,))) == 2

    def test_find_by_null(self, engine):
        engine.insert("T", ("a", None, None, None))
        engine.insert("T", ("b", 1, None, None))
        assert len(engine.find_by("T", ("n",), (None,))) == 1

    def test_select(self, engine):
        engine.insert("T", ("a", 1, None, None))
        engine.insert("T", ("b", 5, None, None))
        matched = engine.select("T", attr("n") > 2)
        assert [v[0] for v in matched] == ["b"]

    def test_select_date_parameter(self, engine):
        day = datetime.date(1991, 5, 29)
        engine.insert("T", ("a", None, None, day))
        matched = engine.select("T", attr("d") == day)
        assert len(matched) == 1

    def test_rows_and_get_row(self, engine):
        engine.insert("T", ("a", 7, None, None))
        assert next(engine.rows("T"))["n"] == 7
        assert engine.get_row("T", ("a",))["k"] == "a"
        assert engine.get_row("T", ("x",)) is None

    def test_contains(self, engine):
        engine.insert("T", ("a", 1, None, None))
        assert engine.contains("T", ("a",))
        assert not engine.contains("T", ("b",))


class TestTransactions:
    def test_commit_keeps_changes(self, engine):
        engine.begin()
        engine.insert("T", ("a", 1, None, None))
        engine.commit()
        assert engine.count("T") == 1

    def test_rollback_discards_changes(self, engine):
        skip_if_overlay(engine, "rollback")
        engine.insert("T", ("keep", 0, None, None))
        engine.begin()
        engine.insert("T", ("a", 1, None, None))
        engine.delete("T", ("keep",))
        engine.rollback()
        assert engine.get("T", ("keep",)) == ("keep", 0, None, None)
        assert engine.get("T", ("a",)) is None

    def test_rollback_restores_replace(self, engine):
        skip_if_overlay(engine, "rollback")
        engine.insert("T", ("a", 1, None, None))
        engine.begin()
        engine.replace("T", ("a",), ("b", 9, None, None))
        engine.rollback()
        assert engine.get("T", ("a",)) == ("a", 1, None, None)
        assert engine.get("T", ("b",)) is None

    def test_nested_inner_rollback(self, engine):
        skip_if_overlay(engine, "rollback")
        engine.begin()
        engine.insert("T", ("outer", 1, None, None))
        engine.begin()
        engine.insert("T", ("inner", 2, None, None))
        engine.rollback()
        engine.commit()
        assert engine.contains("T", ("outer",))
        assert not engine.contains("T", ("inner",))

    def test_nested_outer_rollback_discards_inner_commit(self, engine):
        skip_if_overlay(engine, "rollback")
        engine.begin()
        engine.begin()
        engine.insert("T", ("inner", 2, None, None))
        engine.commit()
        engine.rollback()
        assert engine.count("T") == 0

    def test_unbalanced_commit(self, engine):
        with pytest.raises(TransactionError):
            engine.commit()

    def test_unbalanced_rollback(self, engine):
        with pytest.raises(TransactionError):
            engine.rollback()

    def test_transaction_context_manager(self, engine):
        skip_if_overlay(engine, "rollback")
        with engine.transaction():
            engine.insert("T", ("a", 1, None, None))
        assert engine.count("T") == 1
        with pytest.raises(DuplicateKeyError):
            with engine.transaction():
                engine.insert("T", ("b", 1, None, None))
                engine.insert("T", ("b", 1, None, None))
        assert not engine.contains("T", ("b",))

    def test_in_transaction_flag(self, engine):
        assert not engine.in_transaction
        engine.begin()
        assert engine.in_transaction
        engine.commit()
        assert not engine.in_transaction


class TestIndexes:
    def test_create_index_and_find(self, engine):
        engine.insert("T", ("a", 1, None, None))
        engine.create_index("T", ("n",))
        engine.insert("T", ("b", 1, None, None))
        assert len(engine.find_by("T", ("n",), (1,))) == 2
