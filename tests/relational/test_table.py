"""In-memory table: mutation vocabulary, key discipline, lookups."""

import pytest

from repro.errors import DuplicateKeyError, NoSuchRowError
from repro.relational.domains import INTEGER, TEXT
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.table import Table


@pytest.fixture
def table():
    schema = RelationSchema(
        "GRADES",
        [
            Attribute("course_id", TEXT),
            Attribute("student_id", INTEGER),
            Attribute("grade", TEXT, nullable=True),
        ],
        key=("course_id", "student_id"),
    )
    return Table(schema)


class TestInsert:
    def test_insert_returns_key(self, table):
        assert table.insert(("CS1", 1, "A")) == ("CS1", 1)

    def test_duplicate_key_rejected(self, table):
        table.insert(("CS1", 1, "A"))
        with pytest.raises(DuplicateKeyError):
            table.insert(("CS1", 1, "B"))

    def test_len(self, table):
        table.insert(("CS1", 1, "A"))
        table.insert(("CS1", 2, "B"))
        assert len(table) == 2


class TestDelete:
    def test_delete_returns_old(self, table):
        table.insert(("CS1", 1, "A"))
        assert table.delete(("CS1", 1)) == ("CS1", 1, "A")
        assert len(table) == 0

    def test_delete_missing(self, table):
        with pytest.raises(NoSuchRowError):
            table.delete(("CS1", 9))


class TestReplace:
    def test_nonkey_replace(self, table):
        table.insert(("CS1", 1, "A"))
        old = table.replace(("CS1", 1), ("CS1", 1, "B"))
        assert old == ("CS1", 1, "A")
        assert table.get(("CS1", 1)) == ("CS1", 1, "B")

    def test_key_changing_replace(self, table):
        table.insert(("CS1", 1, "A"))
        table.replace(("CS1", 1), ("CS2", 1, "A"))
        assert table.get(("CS1", 1)) is None
        assert table.get(("CS2", 1)) == ("CS2", 1, "A")

    def test_key_changing_replace_collision(self, table):
        table.insert(("CS1", 1, "A"))
        table.insert(("CS2", 1, "B"))
        with pytest.raises(DuplicateKeyError):
            table.replace(("CS1", 1), ("CS2", 1, "A"))

    def test_replace_missing(self, table):
        with pytest.raises(NoSuchRowError):
            table.replace(("CS1", 1), ("CS1", 1, "A"))


class TestReads:
    def test_contains(self, table):
        table.insert(("CS1", 1, "A"))
        assert table.contains_key(("CS1", 1))
        assert ("CS1", 1) in table
        assert not table.contains_key(("CS1", 2))

    def test_scan_is_snapshot(self, table):
        table.insert(("CS1", 1, "A"))
        table.insert(("CS1", 2, "B"))
        scan = table.scan()
        table.delete(("CS1", 1))  # mutation during iteration is safe
        assert len(list(scan)) == 2

    def test_rows_wrapper(self, table):
        table.insert(("CS1", 1, "A"))
        rows = list(table.rows())
        assert rows[0]["grade"] == "A"

    def test_find_by_scan(self, table):
        table.insert(("CS1", 1, "A"))
        table.insert(("CS1", 2, "B"))
        table.insert(("CS2", 1, "A"))
        assert len(table.find_by(("course_id",), ("CS1",))) == 2


class TestIndexes:
    def test_indexed_find(self, table):
        table.insert(("CS1", 1, "A"))
        table.create_index(("course_id",))
        table.insert(("CS1", 2, "B"))
        assert len(table.find_by(("course_id",), ("CS1",))) == 2

    def test_index_updated_on_delete(self, table):
        table.create_index(("course_id",))
        table.insert(("CS1", 1, "A"))
        table.delete(("CS1", 1))
        assert table.find_by(("course_id",), ("CS1",)) == []

    def test_index_updated_on_replace(self, table):
        table.create_index(("course_id",))
        table.insert(("CS1", 1, "A"))
        table.replace(("CS1", 1), ("CS9", 1, "A"))
        assert table.find_by(("course_id",), ("CS1",)) == []
        assert len(table.find_by(("course_id",), ("CS9",))) == 1

    def test_create_index_idempotent(self, table):
        first = table.create_index(("course_id",))
        second = table.create_index(("course_id",))
        assert first is second
        assert table.index_count == 1

    def test_drop_index(self, table):
        table.create_index(("course_id",))
        table.drop_index(("course_id",))
        assert not table.has_index(("course_id",))

    def test_index_and_scan_agree(self, table):
        for sid in range(20):
            table.insert(("CS1" if sid % 2 else "CS2", sid, "A"))
        expected = sorted(table.find_by(("course_id",), ("CS1",)))
        table.create_index(("course_id",))
        assert sorted(table.find_by(("course_id",), ("CS1",))) == expected
