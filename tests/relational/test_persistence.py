"""Database dump/load round-trips on both backends."""

import datetime
import json

import pytest

from repro.errors import SchemaError
from repro.relational.ddl import relation
from repro.relational.persistence import (
    dump_database,
    dumps_database,
    load_database,
    loads_database,
    schema_from_dict,
    schema_to_dict,
)
from tests.conftest import make_engine


@pytest.fixture
def engine(backend):
    engine = make_engine(backend)
    engine.create_relation(
        relation("T")
        .text("k")
        .integer("n", nullable=True)
        .boolean("flag", nullable=True)
        .date("d", nullable=True)
        .key("k")
        .build()
    )
    engine.insert("T", ("a", 1, True, datetime.date(1991, 5, 29)))
    engine.insert("T", ("b", None, None, None))
    return engine


def test_schema_round_trip(engine):
    schema = engine.schema("T")
    assert schema_from_dict(schema_to_dict(schema)) == schema


def test_dump_is_json_safe(engine):
    json.dumps(dump_database(engine))


def test_round_trip_same_backend(engine, backend):
    dumped = dumps_database(engine)
    fresh = make_engine(backend)
    counts = loads_database(fresh, dumped)
    assert counts == {"T": 2}
    assert sorted(fresh.scan("T")) == sorted(engine.scan("T"))


def test_cross_backend_round_trip(engine, backend):
    other = "sqlite" if backend == "memory" else "memory"
    dumped = dump_database(engine)
    fresh = make_engine(other)
    load_database(fresh, dumped)
    assert sorted(fresh.scan("T")) == sorted(engine.scan("T"))


def test_date_survives(engine, backend):
    fresh = make_engine(backend)
    load_database(fresh, dump_database(engine))
    assert fresh.get("T", ("a",))[3] == datetime.date(1991, 5, 29)


def test_bad_format(backend):
    fresh = make_engine(backend)
    with pytest.raises(SchemaError):
        load_database(fresh, {"format": 99})


def test_university_round_trip():
    from repro.structural.integrity import IntegrityChecker
    from repro.workloads.university import (
        populate_university,
        university_schema,
    )

    graph = university_schema()
    engine = make_engine("memory")
    graph.install(engine)
    populate_university(engine)
    fresh = make_engine("memory")
    counts = load_database(fresh, dump_database(engine))
    assert counts["GRADES"] == engine.count("GRADES")
    assert IntegrityChecker(graph).is_consistent(fresh)
