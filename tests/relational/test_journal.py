"""The write-ahead plan journal: serialization, backends, recovery."""

import datetime
import json

import pytest

from repro.errors import JournalError
from repro.relational.ddl import relation
from repro.relational.journal import (
    ABORTED,
    COMMITTED,
    PENDING,
    FileJournal,
    MemoryJournal,
    RecoveryReport,
    apply_journaled,
    images_from_records,
    plan_images,
    recover,
)
from repro.relational.memory_engine import MemoryEngine
from repro.relational.operations import Delete, Insert, Replace, UpdatePlan

ITEMS = (
    relation("ITEMS")
    .integer("item_id")
    .text("label")
    .date("added", nullable=True)
    .key("item_id")
    .build()
)
TAGS = relation("TAGS").integer("tag_id").text("name").key("tag_id").build()


def make_engine():
    engine = MemoryEngine()
    engine.create_relation(ITEMS)
    engine.create_relation(TAGS)
    engine.insert("ITEMS", (1, "one", datetime.date(2020, 1, 2)))
    engine.insert("ITEMS", (2, "two", None))
    engine.insert("TAGS", (10, "old"))
    return engine


def sample_plan():
    plan = UpdatePlan()
    plan.add(Insert("ITEMS", (3, "three", datetime.date(2021, 3, 4))), "grow")
    plan.add(Replace("TAGS", (10,), (10, "new")), "rename")
    plan.add(Delete("ITEMS", (2,)), "shrink")
    return plan


class TestRoundTrip:
    def test_plan_survives_encode_decode(self):
        journal = MemoryJournal()
        engine = make_engine()
        plan = sample_plan()
        entry_id = journal.begin(plan, plan_images(engine, plan), label="t")
        decoded = journal.entry(entry_id).plan()
        assert decoded.operations == plan.operations
        assert decoded.reasons == plan.reasons

    def test_dates_round_trip_through_json(self):
        journal = MemoryJournal()
        engine = make_engine()
        plan = sample_plan()
        entry_id = journal.begin(plan, plan_images(engine, plan))
        entry = journal.entry(entry_id)
        # The stored records must themselves be JSON-safe.
        json.dumps(entry.plan_records)
        json.dumps(entry.image_records)
        op = entry.plan().operations[0]
        assert op.values[2] == datetime.date(2021, 3, 4)
        _before, after = entry.images()[("ITEMS", (3,))]
        assert after == (3, "three", datetime.date(2021, 3, 4))


class TestImages:
    def test_plan_images_cover_every_cell(self):
        engine = make_engine()
        images = plan_images(engine, sample_plan())
        assert images[("ITEMS", (3,))] == (
            None,
            (3, "three", datetime.date(2021, 3, 4)),
        )
        assert images[("TAGS", (10,))] == ((10, "old"), (10, "new"))
        assert images[("ITEMS", (2,))] == ((2, "two", None), None)

    def test_key_changing_replace_makes_two_cells(self):
        engine = make_engine()
        plan = UpdatePlan()
        plan.add(Replace("TAGS", (10,), (11, "moved")))
        images = plan_images(engine, plan)
        assert images[("TAGS", (10,))] == ((10, "old"), None)
        assert images[("TAGS", (11,))] == (None, (11, "moved"))

    def test_images_from_records_nets_a_transaction(self):
        engine = make_engine()
        mark = engine.changelog.mark()
        engine.begin()
        engine.insert("TAGS", (20, "temp"))
        engine.replace("TAGS", (20,), (20, "final"))
        engine.delete("ITEMS", (1,))
        images = images_from_records(engine, engine.changelog.since(mark))
        # insert+replace net to one cell: None -> final values.
        assert images[("TAGS", (20,))] == (None, (20, "final"))
        assert images[("ITEMS", (1,))] == (
            (1, "one", datetime.date(2020, 1, 2)),
            None,
        )
        engine.rollback()


class TestBackends:
    def test_status_lifecycle(self):
        journal = MemoryJournal()
        engine = make_engine()
        plan = sample_plan()
        entry_id = journal.begin(plan, plan_images(engine, plan))
        assert journal.entry(entry_id).status == PENDING
        assert [e.entry_id for e in journal.pending()] == [entry_id]
        journal.mark_committed(entry_id)
        assert journal.entry(entry_id).status == COMMITTED
        assert journal.pending() == []
        with pytest.raises(JournalError):
            journal.mark_committed(999)

    def test_file_journal_reload_folds_markers(self, tmp_path):
        path = tmp_path / "plans.journal"
        engine = make_engine()
        journal = FileJournal(path)
        first = journal.begin(sample_plan(), plan_images(engine, sample_plan()))
        journal.mark_committed(first)
        second = journal.begin(sample_plan(), plan_images(engine, sample_plan()))
        journal.close()  # `second` left PENDING, like a crash

        reopened = FileJournal(path)
        assert len(reopened) == 2
        assert reopened.entry(first).status == COMMITTED
        assert reopened.entry(second).status == PENDING
        # Ids keep increasing after reload.
        third = reopened.begin(sample_plan(), {})
        assert third > second
        reopened.close()

    def test_file_journal_rejects_corruption(self, tmp_path):
        path = tmp_path / "bad.journal"
        path.write_text("not json\n")
        with pytest.raises(JournalError):
            FileJournal(path)
        path.write_text('{"event":"committed","id":7}\n')
        with pytest.raises(JournalError):
            FileJournal(path)


class TestRecovery:
    def test_committed_entries_are_ignored(self):
        engine = make_engine()
        journal = MemoryJournal()
        apply_journaled(engine, journal, sample_plan())
        report = recover(engine, journal)
        assert report.pending_resolved == 0
        assert report.clean

    def test_completed_pending_entry_is_marked_committed(self):
        engine = make_engine()
        journal = MemoryJournal()
        plan = sample_plan()
        entry_id = journal.begin(plan, plan_images(engine, plan))
        engine.apply_batch(plan.operations)  # applied, but marker lost
        report = recover(engine, journal)
        assert report.replayed == [entry_id]
        assert journal.entry(entry_id).status == COMMITTED
        assert engine.get("TAGS", (10,)) == (10, "new")

    def test_torn_plan_is_reverted(self):
        engine = make_engine()
        journal = MemoryJournal()
        plan = sample_plan()
        entry_id = journal.begin(plan, plan_images(engine, plan))
        # Apply only a prefix: the classic torn state.
        plan.operations[0].apply(engine)
        plan.operations[1].apply(engine)
        report = recover(engine, journal)
        assert report.reverted == [entry_id]
        assert journal.entry(entry_id).status == ABORTED
        assert engine.get("ITEMS", (3,)) is None
        assert engine.get("TAGS", (10,)) == (10, "old")
        assert engine.get("ITEMS", (2,)) == (2, "two", None)

    def test_recover_is_idempotent(self):
        engine = make_engine()
        journal = MemoryJournal()
        plan = sample_plan()
        journal.begin(plan, plan_images(engine, plan))
        plan.operations[0].apply(engine)
        assert recover(engine, journal).pending_resolved == 1
        again = recover(engine, journal)
        assert again.pending_resolved == 0
        assert again.clean

    def test_intermediate_value_of_multi_touch_plan_is_reverted(self):
        """Crash between two ops on the same cell: the live value
        matches neither net image, but it IS on the plan's simulated
        value chain — recovery must revert it, not call it a conflict."""
        engine = make_engine()
        journal = MemoryJournal()
        plan = UpdatePlan()
        plan.add(Insert("TAGS", (30, "first")))
        plan.add(Replace("TAGS", (30,), (30, "second")))
        entry_id = journal.begin(plan, plan_images(engine, plan))
        plan.operations[0].apply(engine)  # crash before the replace
        report = recover(engine, journal)
        assert report.clean
        assert report.reverted == [entry_id]
        assert engine.get("TAGS", (30,)) is None

    def test_foreign_write_is_a_conflict_not_clobbered(self):
        engine = make_engine()
        journal = MemoryJournal()
        plan = UpdatePlan()
        plan.add(Replace("TAGS", (10,), (10, "new")))
        entry_id = journal.begin(plan, plan_images(engine, plan))
        # Someone else wrote a third value after the crash.
        engine.replace("TAGS", (10,), (10, "foreign"))
        report = recover(engine, journal)
        assert report.conflicts == [(entry_id, "TAGS", (10,))]
        assert not report.clean
        assert engine.get("TAGS", (10,)) == (10, "foreign")

    def test_open_transaction_is_discarded_first(self):
        engine = make_engine()
        journal = MemoryJournal()
        engine.begin()
        engine.insert("TAGS", (99, "uncommitted"))
        report = recover(engine, journal)
        assert report.transactions_discarded == 1
        assert not engine.in_transaction
        assert engine.get("TAGS", (99,)) is None

    def test_report_as_dict(self):
        report = RecoveryReport()
        report.replayed.append(1)
        assert report.as_dict()["replayed"] == [1]
        assert report.clean
