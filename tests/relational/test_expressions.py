"""Predicate expressions: evaluation, null semantics, SQL compilation."""

import pytest

from repro.errors import QueryError
from repro.relational.expressions import Attr, Comparison, Const, IsNull, Not, Or, TRUE, attr, const

ROW = {"units": 4, "level": "graduate", "instructor": None}


class TestEvaluation:
    def test_equality(self):
        assert (attr("level") == "graduate").evaluate(ROW)
        assert not (attr("level") == "undergraduate").evaluate(ROW)

    def test_ordering_operators(self):
        assert (attr("units") > 3).evaluate(ROW)
        assert (attr("units") >= 4).evaluate(ROW)
        assert (attr("units") < 5).evaluate(ROW)
        assert (attr("units") <= 4).evaluate(ROW)
        assert (attr("units") != 3).evaluate(ROW)

    def test_and_or_not(self):
        p = (attr("units") > 3) & (attr("level") == "graduate")
        assert p.evaluate(ROW)
        q = (attr("units") > 9) | (attr("level") == "graduate")
        assert q.evaluate(ROW)
        assert not (~q).evaluate(ROW)

    def test_true_constant(self):
        assert TRUE.evaluate(ROW)

    def test_empty_or_is_false(self):
        assert not Or().evaluate(ROW)

    def test_unknown_attribute_raises(self):
        with pytest.raises(QueryError):
            (attr("missing") == 1).evaluate(ROW)

    def test_attr_to_attr_comparison(self):
        assert Comparison("=", Attr("units"), Attr("units")).evaluate(ROW)


class TestNullSemantics:
    def test_null_comparison_false(self):
        assert not (attr("instructor") == "Keller").evaluate(ROW)
        assert not (attr("instructor") != "Keller").evaluate(ROW)

    def test_is_null(self):
        assert attr("instructor").is_null().evaluate(ROW)
        assert not attr("units").is_null().evaluate(ROW)

    def test_not_is_null(self):
        assert Not(attr("instructor").is_null()).evaluate(ROW) is False


class TestSqlCompilation:
    def test_comparison_sql(self):
        sql, params = (attr("units") >= 3).to_sql()
        # COALESCE pins SQL's three-valued logic to our two-valued
        # semantics (null comparisons are definite false).
        assert sql == '(COALESCE(("units" >= ?), 0))'
        assert params == [3]

    def test_not_equal_sql(self):
        sql, __ = (attr("units") != 3).to_sql()
        assert "<>" in sql

    def test_and_sql(self):
        sql, params = ((attr("a") == 1) & (attr("b") == 2)).to_sql()
        assert sql.count("AND") == 1
        assert params == [1, 2]

    def test_or_not_sql(self):
        sql, __ = (~((attr("a") == 1) | (attr("b") == 2))).to_sql()
        assert "NOT" in sql and "OR" in sql

    def test_empty_and_sql(self):
        sql, params = TRUE.to_sql()
        assert sql == "(1 = 1)"
        assert params == []

    def test_is_null_sql(self):
        sql, __ = IsNull(Attr("x")).to_sql()
        assert "IS NULL" in sql


class TestIntrospection:
    def test_attributes(self):
        p = ((attr("a") == 1) & (attr("b") == Attr("c"))) | IsNull(attr("d"))
        assert p.attributes() == frozenset({"a", "b", "c", "d"})

    def test_const_has_no_attributes(self):
        assert const(5).attributes() == frozenset()

    def test_bad_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison("~", Attr("a"), Const(1))
