"""Relational algebra over derived relations."""

import pytest

from repro.errors import SchemaError
from repro.relational import algebra
from repro.relational.domains import INTEGER, TEXT
from repro.relational.expressions import attr
from repro.relational.memory_engine import MemoryEngine
from repro.relational.schema import Attribute, RelationSchema


@pytest.fixture
def engine():
    engine = MemoryEngine()
    engine.create_relation(
        RelationSchema(
            "COURSES",
            [
                Attribute("course_id", TEXT),
                Attribute("dept", TEXT),
                Attribute("units", INTEGER),
            ],
            key=("course_id",),
        )
    )
    engine.create_relation(
        RelationSchema(
            "DEPT",
            [Attribute("dept", TEXT), Attribute("building", TEXT)],
            key=("dept",),
        )
    )
    engine.insert("COURSES", ("CS1", "cs", 3))
    engine.insert("COURSES", ("CS2", "cs", 4))
    engine.insert("COURSES", ("M1", "math", 4))
    engine.insert("DEPT", ("cs", "Gates"))
    engine.insert("DEPT", ("math", "Sloan"))
    return engine


def test_from_engine(engine):
    rel = algebra.from_engine(engine, "COURSES")
    assert len(rel) == 3


def test_select(engine):
    rel = algebra.from_engine(engine, "COURSES")
    assert len(algebra.select(rel, attr("units") == 4)) == 2


def test_project_dedupes(engine):
    rel = algebra.from_engine(engine, "COURSES")
    projected = algebra.project(rel, ("dept",))
    assert sorted(projected.tuples) == [("cs",), ("math",)]


def test_project_no_dedupe(engine):
    rel = algebra.from_engine(engine, "COURSES")
    projected = algebra.project(rel, ("dept",), distinct=False)
    assert len(projected) == 3


def test_project_key_preserved(engine):
    rel = algebra.from_engine(engine, "COURSES")
    projected = algebra.project(rel, ("course_id", "units"))
    assert projected.schema.key == ("course_id",)


def test_rename(engine):
    rel = algebra.from_engine(engine, "COURSES")
    renamed = algebra.rename(rel, {"dept": "department"})
    assert "department" in renamed.schema.attribute_names
    assert "dept" not in renamed.schema.attribute_names


def test_join(engine):
    courses = algebra.from_engine(engine, "COURSES")
    depts = algebra.from_engine(engine, "DEPT")
    joined = algebra.join(courses, depts, on=[("dept", "dept")])
    assert len(joined) == 3
    mapping = joined.mappings()[0]
    assert "building" in mapping


def test_join_prefixes_clashing_names(engine):
    courses = algebra.from_engine(engine, "COURSES")
    depts = algebra.from_engine(engine, "DEPT")
    joined = algebra.join(courses, depts, on=[("dept", "dept")])
    assert "DEPT.dept" in joined.schema.attribute_names


def test_join_null_never_matches(engine):
    schema = RelationSchema(
        "X",
        [Attribute("k", TEXT), Attribute("dept", TEXT, nullable=True)],
        key=("k",),
    )
    left = algebra.DerivedRelation(schema, [("a", None)])
    depts = algebra.from_engine(engine, "DEPT")
    joined = algebra.join(left, depts, on=[("dept", "dept")])
    assert len(joined) == 0


def test_cross(engine):
    courses = algebra.from_engine(engine, "COURSES")
    depts = algebra.from_engine(engine, "DEPT")
    assert len(algebra.cross(courses, depts)) == 6


def test_union_and_difference(engine):
    rel = algebra.from_engine(engine, "COURSES")
    cs = algebra.select(rel, attr("dept") == "cs")
    math = algebra.select(rel, attr("dept") == "math")
    assert len(algebra.union(cs, math)) == 3
    assert len(algebra.union(cs, cs)) == 2  # dedupes
    assert len(algebra.difference(rel, cs)) == 1


def test_set_ops_arity_checked(engine):
    rel = algebra.from_engine(engine, "COURSES")
    dept = algebra.from_engine(engine, "DEPT")
    with pytest.raises(SchemaError):
        algebra.union(rel, dept)
