"""Update operations as values, plans, and plan application."""

import pytest

from repro.errors import DuplicateKeyError
from repro.relational.ddl import relation
from repro.relational.memory_engine import MemoryEngine
from repro.relational.operations import (
    Delete,
    Insert,
    Replace,
    UpdatePlan,
    apply_plan,
)


@pytest.fixture
def engine():
    engine = MemoryEngine()
    engine.create_relation(
        relation("T").text("k").integer("n", nullable=True).key("k").build()
    )
    engine.insert("T", ("seed", 0))
    return engine


class TestOperationValues:
    def test_equality(self):
        assert Insert("T", ("a", 1)) == Insert("T", ("a", 1))
        assert Delete("T", ("a",)) == Delete("T", ("a",))
        assert Replace("T", ("a",), ("a", 2)) == Replace("T", ("a",), ("a", 2))
        assert Insert("T", ("a", 1)) != Insert("T", ("a", 2))

    def test_hashable(self):
        ops = {Insert("T", ("a", 1)), Delete("T", ("a",)), Replace("T", ("a",), ("a", 2))}
        assert len(ops) == 3

    def test_kinds(self):
        assert Insert("T", ()).kind == "insert"
        assert Delete("T", ()).kind == "delete"
        assert Replace("T", (), ()).kind == "replace"

    def test_describe(self):
        assert "INSERT" in Insert("T", ("a", 1)).describe()
        assert "DELETE" in Delete("T", ("a",)).describe()
        assert "REPLACE" in Replace("T", ("a",), ("a", 2)).describe()


class TestUpdatePlan:
    def test_counts(self):
        plan = UpdatePlan()
        plan.add(Insert("T", ("a", 1)), "why")
        plan.add(Delete("T", ("a",)))
        plan.add(Replace("T", ("b",), ("b", 2)))
        assert plan.count() == 3
        assert plan.count("insert") == 1
        assert plan.count("delete") == 1
        assert plan.count("replace") == 1

    def test_relations_touched_ordered(self):
        plan = UpdatePlan()
        plan.add(Insert("B", ("x",)))
        plan.add(Insert("A", ("y",)))
        plan.add(Delete("B", ("x",)))
        assert plan.relations_touched() == ("B", "A")

    def test_describe_includes_reasons(self):
        plan = UpdatePlan()
        plan.add(Insert("T", ("a", 1)), "because of the island")
        assert "because of the island" in plan.describe()

    def test_extend(self):
        a, b = UpdatePlan(), UpdatePlan()
        a.add(Insert("T", ("a", 1)))
        b.add(Delete("T", ("a",)))
        a.extend(b)
        assert len(a) == 2


class TestApplyPlan:
    def test_apply_all(self, engine):
        plan = [
            Insert("T", ("a", 1)),
            Replace("T", ("a",), ("a", 2)),
            Delete("T", ("seed",)),
        ]
        assert apply_plan(engine, plan) == 3
        assert engine.get("T", ("a",)) == ("a", 2)
        assert engine.get("T", ("seed",)) is None

    def test_apply_rolls_back_on_error(self, engine):
        plan = [
            Insert("T", ("a", 1)),
            Insert("T", ("seed", 9)),  # duplicate key -> fails
        ]
        with pytest.raises(DuplicateKeyError):
            apply_plan(engine, plan)
        assert engine.get("T", ("a",)) is None
        assert engine.get("T", ("seed",)) == ("seed", 0)
