"""Domain typing, parsing, and membership checks."""

import datetime

import pytest

from repro.errors import DomainError
from repro.relational.domains import (
    BOOLEAN,
    BUILTIN_DOMAINS,
    DATE,
    INTEGER,
    REAL,
    TEXT,
    domain_by_name,
)


class TestMembership:
    def test_integer_accepts_int(self):
        assert INTEGER.contains(42)

    def test_integer_rejects_bool(self):
        # bool is a subclass of int; must not leak into INTEGER.
        assert not INTEGER.contains(True)

    def test_integer_rejects_float(self):
        assert not INTEGER.contains(1.5)

    def test_real_accepts_float_and_int(self):
        assert REAL.contains(1.5)
        assert REAL.contains(3)

    def test_real_rejects_bool(self):
        assert not REAL.contains(True)

    def test_text_accepts_str(self):
        assert TEXT.contains("hello")

    def test_text_rejects_bytes(self):
        assert not TEXT.contains(b"hello")

    def test_boolean_accepts_bool(self):
        assert BOOLEAN.contains(True)
        assert BOOLEAN.contains(False)

    def test_boolean_rejects_int(self):
        assert not BOOLEAN.contains(1)

    def test_date_accepts_date(self):
        assert DATE.contains(datetime.date(1991, 5, 29))

    def test_date_rejects_string(self):
        assert not DATE.contains("1991-05-29")

    def test_none_never_in_domain(self):
        for domain in BUILTIN_DOMAINS.values():
            assert not domain.contains(None)


class TestCheck:
    def test_check_returns_value(self):
        assert INTEGER.check(7) == 7

    def test_check_raises_with_context(self):
        with pytest.raises(DomainError, match="COURSES.units"):
            INTEGER.check("three", context="COURSES.units")


class TestParsing:
    def test_integer_parse(self):
        assert INTEGER.parse("42") == 42

    def test_real_parse(self):
        assert REAL.parse("2.5") == 2.5

    def test_boolean_parse_variants(self):
        for text in ("1", "true", "T", "yes", "Y"):
            assert BOOLEAN.parse(text) is True
        for text in ("0", "false", "F", "no", "N"):
            assert BOOLEAN.parse(text) is False

    def test_boolean_parse_rejects_garbage(self):
        with pytest.raises(DomainError):
            BOOLEAN.parse("maybe")

    def test_date_parse(self):
        assert DATE.parse("1991-05-29") == datetime.date(1991, 5, 29)


class TestLookup:
    def test_domain_by_name(self):
        assert domain_by_name("integer") is INTEGER
        assert domain_by_name("text") is TEXT

    def test_domain_by_name_unknown(self):
        with pytest.raises(DomainError):
            domain_by_name("decimal")

    def test_equality_by_name(self):
        assert INTEGER == domain_by_name("integer")
        assert INTEGER != TEXT

    def test_hashable(self):
        assert len({INTEGER, REAL, TEXT, BOOLEAN, DATE}) == 5
