"""Group-by aggregation over derived relations."""

import pytest

from repro.errors import SchemaError
from repro.relational.algebra import aggregate, from_engine
from repro.relational.ddl import relation
from repro.relational.memory_engine import MemoryEngine


@pytest.fixture
def engine():
    engine = MemoryEngine()
    engine.create_relation(
        relation("SALES")
        .integer("sale_id")
        .text("region")
        .integer("amount", nullable=True)
        .key("sale_id")
        .build()
    )
    rows = [
        (1, "west", 10),
        (2, "west", 30),
        (3, "east", 5),
        (4, "east", None),
        (5, "north", None),
    ]
    for row in rows:
        engine.insert("SALES", row)
    return engine


@pytest.fixture
def sales(engine):
    return from_engine(engine, "SALES")


def by_region(result):
    return {m["region"]: m for m in result.mappings()}


def test_count_rows(sales):
    result = by_region(aggregate(sales, ["region"], {"n": ("count", None)}))
    assert result["west"]["n"] == 2
    assert result["east"]["n"] == 2
    assert result["north"]["n"] == 1


def test_count_attribute_ignores_nulls(sales):
    result = by_region(
        aggregate(sales, ["region"], {"n": ("count", "amount")})
    )
    assert result["east"]["n"] == 1
    assert result["north"]["n"] == 0


def test_min_max_sum_avg(sales):
    result = by_region(
        aggregate(
            sales,
            ["region"],
            {
                "lo": ("min", "amount"),
                "hi": ("max", "amount"),
                "total": ("sum", "amount"),
                "mean": ("avg", "amount"),
            },
        )
    )
    west = result["west"]
    assert (west["lo"], west["hi"], west["total"], west["mean"]) == (
        10, 30, 40.0, 20.0,
    )


def test_all_null_group_yields_null(sales):
    result = by_region(aggregate(sales, ["region"], {"hi": ("max", "amount")}))
    assert result["north"]["hi"] is None


def test_global_aggregate_no_grouping(sales):
    result = aggregate(sales, [], {"n": ("count", None)})
    assert result.mappings() == [{"n": 5}]


def test_schema_of_result(sales):
    result = aggregate(
        sales, ["region"], {"n": ("count", None), "total": ("sum", "amount")}
    )
    assert result.schema.key == ("region",)
    assert result.schema.attribute("n").domain.name == "integer"
    assert result.schema.attribute("total").domain.name == "real"


def test_unknown_function_rejected(sales):
    with pytest.raises(SchemaError):
        aggregate(sales, ["region"], {"x": ("median", "amount")})


def test_min_requires_attribute(sales):
    with pytest.raises(SchemaError):
        aggregate(sales, ["region"], {"x": ("min", None)})


def test_unknown_group_attribute(sales):
    from repro.errors import UnknownAttributeError

    with pytest.raises(UnknownAttributeError):
        aggregate(sales, ["planet"], {"n": ("count", None)})
