"""CSV loading and dumping."""

import pytest

from repro.errors import SchemaError
from repro.relational.csv_io import dumps_csv, loads_csv
from repro.relational.ddl import relation
from repro.relational.memory_engine import MemoryEngine


@pytest.fixture
def engine():
    engine = MemoryEngine()
    engine.create_relation(
        relation("T")
        .text("k")
        .integer("n", nullable=True)
        .boolean("flag", nullable=True)
        .key("k")
        .build()
    )
    return engine


def test_load_basic(engine):
    count = loads_csv(engine, "T", "k,n,flag\na,1,true\nb,2,false\n")
    assert count == 2
    assert engine.get("T", ("a",)) == ("a", 1, True)


def test_load_reordered_header(engine):
    loads_csv(engine, "T", "n,k,flag\n5,z,1\n")
    assert engine.get("T", ("z",)) == ("z", 5, True)


def test_load_empty_cell_is_null(engine):
    loads_csv(engine, "T", "k,n,flag\na,,\n")
    assert engine.get("T", ("a",)) == ("a", None, None)


def test_load_unknown_header(engine):
    with pytest.raises(SchemaError):
        loads_csv(engine, "T", "k,bogus\na,1\n")


def test_load_ragged_row(engine):
    with pytest.raises(SchemaError):
        loads_csv(engine, "T", "k,n\na\n")


def test_load_empty_stream(engine):
    assert loads_csv(engine, "T", "") == 0


def test_round_trip(engine):
    loads_csv(engine, "T", "k,n,flag\na,1,true\nb,,\n")
    dumped = dumps_csv(engine, "T")
    fresh = MemoryEngine()
    fresh.create_relation(engine.schema("T"))
    # booleans dump as True/False strings; normalize via parse
    loaded = loads_csv(fresh, "T", dumped)
    assert loaded == 2
    assert fresh.get("T", ("b",)) == ("b", None, None)


def test_dump_header(engine):
    engine.insert("T", ("a", 1, None))
    assert dumps_csv(engine, "T").splitlines()[0] == "k,n,flag"
