"""Relation schemas: keys, positions, row validation, derived schemas."""

import pytest

from repro.errors import SchemaError, UnknownAttributeError
from repro.relational.domains import INTEGER, TEXT
from repro.relational.schema import Attribute, RelationSchema


@pytest.fixture
def grades():
    return RelationSchema(
        "GRADES",
        [
            Attribute("course_id", TEXT),
            Attribute("student_id", INTEGER),
            Attribute("grade", TEXT, nullable=True),
        ],
        key=("course_id", "student_id"),
    )


class TestConstruction:
    def test_attribute_names_in_order(self, grades):
        assert grades.attribute_names == ("course_id", "student_id", "grade")

    def test_key_and_nonkey(self, grades):
        assert grades.key == ("course_id", "student_id")
        assert grades.nonkey_names == ("grade",)

    def test_arity(self, grades):
        assert grades.arity == 3

    def test_key_attributes_forced_non_nullable(self):
        schema = RelationSchema(
            "R",
            [Attribute("k", TEXT, nullable=True), Attribute("v", TEXT)],
            key=("k",),
        )
        assert not schema.attribute("k").nullable

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", [Attribute("a", TEXT)], key=("a",))

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [], key=("a",))

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(
                "R",
                [Attribute("a", TEXT), Attribute("a", TEXT)],
                key=("a",),
            )

    def test_missing_key_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [Attribute("a", TEXT)], key=("b",))

    def test_empty_key_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [Attribute("a", TEXT)], key=())

    def test_duplicate_key_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [Attribute("a", TEXT)], key=("a", "a"))


class TestLookups:
    def test_position(self, grades):
        assert grades.position("student_id") == 1

    def test_positions(self, grades):
        assert grades.positions(("grade", "course_id")) == (2, 0)

    def test_unknown_attribute(self, grades):
        with pytest.raises(UnknownAttributeError):
            grades.position("professor")

    def test_is_key_attribute(self, grades):
        assert grades.is_key_attribute("course_id")
        assert not grades.is_key_attribute("grade")

    def test_domains_of(self, grades):
        assert grades.domains_of(("student_id",)) == (INTEGER,)


class TestRows:
    def test_row_from_mapping(self, grades):
        row = grades.row_from_mapping(
            {"course_id": "CS145", "student_id": 7, "grade": "A"}
        )
        assert row == ("CS145", 7, "A")

    def test_row_from_mapping_defaults_nullable(self, grades):
        row = grades.row_from_mapping({"course_id": "CS145", "student_id": 7})
        assert row == ("CS145", 7, None)

    def test_row_from_mapping_missing_required(self, grades):
        with pytest.raises(SchemaError):
            grades.row_from_mapping({"course_id": "CS145"})

    def test_row_from_mapping_unknown_attribute(self, grades):
        with pytest.raises(UnknownAttributeError):
            grades.row_from_mapping(
                {"course_id": "CS145", "student_id": 7, "gpa": 4.0}
            )

    def test_validate_row_wrong_arity(self, grades):
        with pytest.raises(SchemaError):
            grades.validate_row(("CS145", 7))

    def test_validate_row_null_in_non_nullable(self, grades):
        with pytest.raises(SchemaError):
            grades.validate_row((None, 7, "A"))

    def test_validate_row_wrong_domain(self, grades):
        from repro.errors import DomainError

        with pytest.raises(DomainError):
            grades.validate_row(("CS145", "seven", "A"))

    def test_key_of(self, grades):
        assert grades.key_of(("CS145", 7, "A")) == ("CS145", 7)

    def test_project(self, grades):
        assert grades.project(("CS145", 7, "A"), ("grade", "course_id")) == (
            "A",
            "CS145",
        )

    def test_as_mapping(self, grades):
        assert grades.as_mapping(("CS145", 7, "A")) == {
            "course_id": "CS145",
            "student_id": 7,
            "grade": "A",
        }


class TestDerived:
    def test_restricted_keeps_key_when_covered(self, grades):
        restricted = grades.restricted_to(("course_id", "student_id"))
        assert restricted.key == ("course_id", "student_id")

    def test_restricted_all_key_when_not_covered(self, grades):
        restricted = grades.restricted_to(("grade",))
        assert restricted.key == ("grade",)

    def test_restricted_rename(self, grades):
        restricted = grades.restricted_to(("grade",), new_name="G")
        assert restricted.name == "G"

    def test_equality_and_hash(self, grades):
        clone = RelationSchema(
            "GRADES",
            [
                Attribute("course_id", TEXT),
                Attribute("student_id", INTEGER),
                Attribute("grade", TEXT, nullable=True),
            ],
            key=("course_id", "student_id"),
        )
        assert clone == grades
        assert hash(clone) == hash(grades)
