"""Row wrapper behaviour."""

import pytest

from repro.errors import SchemaError
from repro.relational.domains import INTEGER, TEXT
from repro.relational.row import Row
from repro.relational.schema import Attribute, RelationSchema


@pytest.fixture
def schema():
    return RelationSchema(
        "COURSES",
        [
            Attribute("course_id", TEXT),
            Attribute("title", TEXT),
            Attribute("units", INTEGER, nullable=True),
        ],
        key=("course_id",),
    )


def test_by_name_access(schema):
    row = Row(schema, ("CS145", "Databases", 4))
    assert row["title"] == "Databases"


def test_key(schema):
    row = Row(schema, ("CS145", "Databases", 4))
    assert row.key == ("CS145",)


def test_from_mapping(schema):
    row = Row.from_mapping(schema, {"course_id": "CS145", "title": "DB"})
    assert row.values == ("CS145", "DB", None)


def test_validation_applies(schema):
    with pytest.raises(SchemaError):
        Row(schema, ("CS145", None, 4))


def test_get_with_default(schema):
    row = Row(schema, ("CS145", "Databases", None))
    assert row.get("units") is None
    assert row.get("nonexistent", "fallback") == "fallback"


def test_project(schema):
    row = Row(schema, ("CS145", "Databases", 4))
    assert row.project(("units", "course_id")) == (4, "CS145")


def test_as_dict(schema):
    row = Row(schema, ("CS145", "Databases", 4))
    assert row.as_dict() == {"course_id": "CS145", "title": "Databases", "units": 4}


def test_replacing(schema):
    row = Row(schema, ("CS145", "Databases", 4))
    changed = row.replacing(title="Advanced Databases")
    assert changed["title"] == "Advanced Databases"
    assert row["title"] == "Databases"  # original untouched


def test_equality_and_hash(schema):
    a = Row(schema, ("CS145", "Databases", 4))
    b = Row(schema, ("CS145", "Databases", 4))
    c = Row(schema, ("CS145", "Databases", 3))
    assert a == b
    assert hash(a) == hash(b)
    assert a != c


def test_iteration_and_len(schema):
    row = Row(schema, ("CS145", "Databases", 4))
    assert list(row) == ["CS145", "Databases", 4]
    assert len(row) == 3


def test_relation_name(schema):
    assert Row(schema, ("CS145", "DB", None)).relation_name == "COURSES"
