"""Schema builder."""

import pytest

from repro.errors import SchemaError
from repro.relational.ddl import relation
from repro.relational.domains import BOOLEAN, DATE, INTEGER, REAL, TEXT


def test_builder_all_types():
    schema = (
        relation("R")
        .text("a")
        .integer("b")
        .real("c", nullable=True)
        .boolean("d", nullable=True)
        .date("e", nullable=True)
        .key("a", "b")
        .build()
    )
    assert schema.key == ("a", "b")
    assert schema.attribute("a").domain == TEXT
    assert schema.attribute("b").domain == INTEGER
    assert schema.attribute("c").domain == REAL
    assert schema.attribute("d").domain == BOOLEAN
    assert schema.attribute("e").domain == DATE
    assert schema.attribute("c").nullable


def test_builder_requires_key():
    with pytest.raises(SchemaError):
        relation("R").text("a").build()


def test_builder_rejects_double_key():
    with pytest.raises(SchemaError):
        relation("R").text("a").key("a").key("a")
