"""Retry policy: classification, backoff, and engine integration."""

import sqlite3

import pytest

from repro.errors import TransientEngineError, UpdateError
from repro.relational.ddl import relation
from repro.relational.faults import FaultInjectingEngine, FaultPlan, SimulatedCrash
from repro.relational.memory_engine import MemoryEngine
from repro.relational.retry import RetryPolicy, is_transient_error

ITEMS = relation("ITEMS").integer("item_id").text("label").key("item_id").build()

no_sleep = lambda _: None  # noqa: E731


class TestClassification:
    def test_transient_engine_error(self):
        assert is_transient_error(TransientEngineError("locked"))

    def test_sqlite_busy_and_locked(self):
        assert is_transient_error(sqlite3.OperationalError("database is locked"))
        assert is_transient_error(sqlite3.OperationalError("database is busy"))
        assert not is_transient_error(sqlite3.OperationalError("no such table: X"))

    def test_everything_else_is_permanent(self):
        assert not is_transient_error(ValueError("nope"))
        assert not is_transient_error(UpdateError("rejected"))


class TestRunLoop:
    def test_absorbs_transients_within_budget(self):
        policy = RetryPolicy(max_attempts=4, sleep=no_sleep)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientEngineError("locked")
            return "ok"

        assert policy.run(flaky) == "ok"
        assert policy.stats() == {"retries": 2, "absorbed": 2, "gave_up": 0}

    def test_gives_up_after_budget(self):
        policy = RetryPolicy(max_attempts=3, sleep=no_sleep)

        def always():
            raise TransientEngineError("locked")

        with pytest.raises(TransientEngineError):
            policy.run(always)
        assert policy.gave_up == 1
        assert policy.retries == 2  # two sleeps for three attempts

    def test_permanent_errors_not_retried(self):
        policy = RetryPolicy(max_attempts=5, sleep=no_sleep)
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            policy.run(broken)
        assert len(calls) == 1
        assert policy.retries == 0

    def test_crash_is_never_caught(self):
        policy = RetryPolicy(max_attempts=5, sleep=no_sleep)
        calls = []

        def dying():
            calls.append(1)
            raise SimulatedCrash("insert", 1)

        with pytest.raises(SimulatedCrash):
            policy.run(dying)
        assert len(calls) == 1

    def test_max_attempts_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestBackoff:
    def test_delay_doubles_and_caps(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.04, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.01)
        assert policy.delay(1) == pytest.approx(0.02)
        assert policy.delay(2) == pytest.approx(0.04)
        assert policy.delay(5) == pytest.approx(0.04)  # capped

    def test_jitter_is_seeded(self):
        a = RetryPolicy(seed=11)
        b = RetryPolicy(seed=11)
        assert [a.delay(i) for i in range(4)] == [b.delay(i) for i in range(4)]

    def test_sleeps_follow_schedule(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.01, jitter=0.0, sleep=slept.append
        )
        attempts = [0]

        def flaky():
            attempts[0] += 1
            if attempts[0] < 4:
                raise TransientEngineError("locked")

        policy.run(flaky)
        assert slept == pytest.approx([0.01, 0.02, 0.04])


class TestEngineIntegration:
    def make_faulty(self, plan):
        base = MemoryEngine()
        base.create_relation(ITEMS)
        engine = FaultInjectingEngine(base, plan)
        engine.retry_policy = RetryPolicy(max_attempts=6, sleep=no_sleep)
        return base, engine

    def test_insert_many_survives_transients(self):
        base, engine = self.make_faulty(
            FaultPlan(seed=2).transient_rate(0.3, ("insert",), times=5)
        )
        rows = [(i, f"r{i}") for i in range(20)]
        keys = engine.insert_many("ITEMS", rows)
        assert len(keys) == 20
        assert base.count("ITEMS") == 20
        assert engine.retry_policy.gave_up == 0
        assert engine.retry_policy.absorbed == engine.injected["transient"] > 0

    def test_insert_many_gives_up_on_persistent_fault(self):
        base, engine = self.make_faulty(
            FaultPlan().transient_burst(100, ("insert",))
        )
        with pytest.raises(TransientEngineError):
            engine.insert_many("ITEMS", [(1, "a")])
        assert engine.retry_policy.gave_up == 1
        assert not engine.in_transaction  # batch loop rolled back
        assert base.count("ITEMS") == 0
