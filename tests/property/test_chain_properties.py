"""Property tests on the synthetic chain: operation-count laws.

For the ownership chain R0 --* R1 --* ... the translation algorithms
have exact combinatorial behaviour that must hold for every (depth,
fanout) configuration:

* VO-CD on one root emits one delete per island tuple (Σ fanoutⁱ) plus
  one repair per peninsula reference;
* a key-change VO-R emits one replacement per island tuple;
* after a VO-CD, no tuple anywhere carries the deleted root's key.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.updates.translator import Translator
from repro.relational.memory_engine import MemoryEngine
from repro.structural.integrity import IntegrityChecker
from repro.workloads.synthetic import chain_object, chain_schema, populate_chain

configurations = st.tuples(
    st.integers(min_value=1, max_value=3),  # depth
    st.integers(min_value=1, max_value=3),  # fanout
    st.integers(min_value=0, max_value=3),  # peninsula refs per root
)


def build(depth, fanout, peninsula_refs):
    graph = chain_schema(depth=depth)
    engine = MemoryEngine()
    graph.install(engine)
    populate_chain(
        engine,
        depth=depth,
        roots=2,
        fanout=fanout,
        peninsula_refs=peninsula_refs,
    )
    return graph, engine, chain_object(graph, depth)


@given(config=configurations)
@settings(max_examples=25, deadline=None)
def test_deletion_operation_count(config):
    depth, fanout, peninsula_refs = config
    graph, engine, view_object = build(depth, fanout, peninsula_refs)
    translator = Translator(view_object)
    plan = translator.delete(engine, key=(0,))
    island_tuples = sum(fanout ** level for level in range(depth + 1))
    assert plan.count("delete") == island_tuples + peninsula_refs
    assert plan.count("insert") == 0
    assert plan.count("replace") == 0


@given(config=configurations)
@settings(max_examples=25, deadline=None)
def test_deletion_leaves_no_orphans(config):
    depth, fanout, peninsula_refs = config
    graph, engine, view_object = build(depth, fanout, peninsula_refs)
    Translator(view_object).delete(engine, key=(0,))
    for name in graph.relation_names:
        if name == "LOOKUP":
            continue
        schema = graph.relation(name)
        if not schema.has_attribute("k0"):
            continue
        assert engine.find_by(name, ("k0",), (0,)) == []
    assert IntegrityChecker(graph).is_consistent(engine)


@given(config=configurations)
@settings(max_examples=20, deadline=None)
def test_rekey_operation_count(config):
    depth, fanout, peninsula_refs = config
    graph, engine, view_object = build(depth, fanout, peninsula_refs)
    translator = Translator(view_object)
    old = translator.instantiate(engine, (0,))

    def rekey(node):
        if "k0" in node:
            node["k0"] = 77
        for value in node.values():
            if isinstance(value, list):
                for child in value:
                    if isinstance(child, dict):
                        rekey(child)
        return node

    plan = translator.replace(engine, old, rekey(old.to_dict()))
    island_tuples = sum(fanout ** level for level in range(depth + 1))
    # One replacement per island tuple; the in-object peninsula tuples
    # are re-pointed by step 4 (replace or insert+drop, depending on
    # whether state I pre-created them).
    assert plan.count("replace") >= island_tuples
    assert engine.find_by("R0", ("k0",), (77,))
    assert IntegrityChecker(graph).is_consistent(engine)


@given(config=configurations)
@settings(max_examples=15, deadline=None)
def test_instance_covers_whole_island(config):
    depth, fanout, peninsula_refs = config
    graph, engine, view_object = build(depth, fanout, peninsula_refs)
    translator = Translator(view_object)
    instance = translator.instantiate(engine, (1,))
    deepest = f"R{depth}"
    assert instance.count_at(deepest) == fanout ** depth
    assert instance.count_at("PENINSULA") == peninsula_refs
