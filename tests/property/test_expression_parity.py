"""Cross-backend parity of predicate evaluation.

Whatever predicate the query planner pushes down, the in-memory
engine's Python evaluation and sqlite's SQL evaluation must select the
same rows — including LIKE case sensitivity and null semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.ddl import relation
from repro.relational.expressions import And, Attr, In, IsNull, Like, Not, Or
from repro.relational.memory_engine import MemoryEngine
from repro.relational.sqlite_engine import SqliteEngine

ROWS = [
    ("r1", "Databases", 4),
    ("r2", "databases", 3),
    ("r3", "Data Mining", None),
    ("r4", "Operating Systems", 2),
    ("r5", "data", 5),
    ("r6", "D_TA", 1),
]


def build(engine):
    engine.create_relation(
        relation("T")
        .text("k")
        .text("title")
        .integer("units", nullable=True)
        .key("k")
        .build()
    )
    for row in ROWS:
        engine.insert("T", row)
    return engine


@pytest.fixture(scope="module")
def engines():
    return build(MemoryEngine()), build(SqliteEngine())


simple_predicates = st.one_of(
    st.sampled_from(["Data%", "%data%", "data", "D_ta%", "%s", "_ata%", "%"]).map(
        lambda pattern: Like(Attr("title"), pattern)
    ),
    st.lists(
        st.integers(min_value=0, max_value=6), min_size=0, max_size=4
    ).map(lambda values: In(Attr("units"), values)),
    st.sampled_from(
        [
            Attr("units") > 2,
            Attr("units") <= 3,
            Attr("units") != 4,
            IsNull(Attr("units")),
            Attr("title") == "data",
        ]
    ),
)


@st.composite
def predicates(draw, depth=2):
    if depth == 0:
        return draw(simple_predicates)
    kind = draw(st.sampled_from(["leaf", "and", "or", "not"]))
    if kind == "leaf":
        return draw(simple_predicates)
    if kind == "not":
        return Not(draw(predicates(depth=depth - 1)))
    left = draw(predicates(depth=depth - 1))
    right = draw(predicates(depth=depth - 1))
    return And(left, right) if kind == "and" else Or(left, right)


@given(predicate=predicates())
@settings(max_examples=200, deadline=None)
def test_select_parity(engines, predicate):
    memory, sqlite = engines
    via_memory = sorted(memory.select("T", predicate))
    via_sqlite = sorted(sqlite.select("T", predicate))
    assert via_memory == via_sqlite


def test_like_is_case_sensitive_on_both(engines):
    memory, sqlite = engines
    predicate = Like(Attr("title"), "Data%")
    for engine in engines:
        keys = {row[0] for row in engine.select("T", predicate)}
        assert keys == {"r1", "r3"}  # not the lowercase ones


def test_underscore_wildcard_parity(engines):
    predicate = Like(Attr("title"), "D_TA")
    for engine in engines:
        keys = {row[0] for row in engine.select("T", predicate)}
        assert keys == {"r6"}
