"""Property tests on the information metric and tree builder."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.information_metric import InformationMetric, MetricWeights
from repro.core.tree_builder import build_maximal_tree
from repro.workloads.cad import cad_schema
from repro.workloads.hospital import hospital_schema
from repro.workloads.university import university_schema

GRAPHS = {
    "university": university_schema(),
    "hospital": hospital_schema(),
    "cad": cad_schema(),
}


graph_names = st.sampled_from(sorted(GRAPHS))
thresholds = st.floats(min_value=0.05, max_value=0.95)


@given(name=graph_names, threshold=thresholds)
@settings(max_examples=60, deadline=None)
def test_relevance_bounded_and_pivot_maximal(name, threshold):
    graph = GRAPHS[name]
    metric = InformationMetric(threshold=threshold)
    for pivot in graph.relation_names:
        relevance = metric.relevance_map(graph, pivot)
        assert relevance[pivot] == 1.0
        assert all(0.0 < value <= 1.0 for value in relevance.values())


@given(name=graph_names, threshold=thresholds)
@settings(max_examples=60, deadline=None)
def test_subgraph_connected_and_thresholded(name, threshold):
    graph = GRAPHS[name]
    metric = InformationMetric(threshold=threshold)
    for pivot in graph.relation_names:
        subgraph = metric.extract_subgraph(graph, pivot)
        assert pivot in subgraph.relations
        # Every edge endpoint is in the relation set.
        for connection in subgraph.connections:
            assert connection.source in subgraph.relations
            assert connection.target in subgraph.relations
        # Every non-pivot relation is reached by some included edge.
        reachable = {pivot}
        frontier = [pivot]
        while frontier:
            node = frontier.pop()
            for connection in subgraph.incident(node):
                other = connection.other_endpoint(node)
                if other not in reachable:
                    reachable.add(other)
                    frontier.append(other)
        assert reachable == subgraph.relations


@given(name=graph_names, threshold=st.floats(min_value=0.1, max_value=0.6))
@settings(max_examples=40, deadline=None)
def test_tree_node_count_equals_edges_plus_one(name, threshold):
    """Edge-once unfolding: |T| = |edges of G| + 1, always."""
    graph = GRAPHS[name]
    metric = InformationMetric(threshold=threshold)
    for pivot in graph.relation_names:
        subgraph = metric.extract_subgraph(graph, pivot)
        tree = build_maximal_tree(graph, subgraph, metric.weights)
        assert len(tree) == len(subgraph.connections) + 1
        # Duplicate count equals the circuit rank of G.
        circuit_rank = len(subgraph.connections) - (
            len(subgraph.relations) - 1
        )
        assert len(tree) - len(subgraph.relations) == circuit_rank


@given(
    hop_decay=st.floats(min_value=0.5, max_value=1.0),
    inverse_reference=st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_monotone_in_threshold(hop_decay, inverse_reference):
    graph = GRAPHS["university"]
    weights = MetricWeights(
        hop_decay=hop_decay, inverse_reference=inverse_reference
    )
    loose = InformationMetric(weights=weights, threshold=0.2)
    tight = InformationMetric(weights=weights, threshold=0.6)
    for pivot in graph.relation_names:
        loose_set = loose.extract_subgraph(graph, pivot).relations
        tight_set = tight.extract_subgraph(graph, pivot).relations
        assert tight_set <= loose_set
