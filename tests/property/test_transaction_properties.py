"""Property tests: rollback is a perfect inverse on both engines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateKeyError, NoSuchRowError
from repro.relational.ddl import relation
from repro.relational.memory_engine import MemoryEngine
from repro.relational.sqlite_engine import SqliteEngine


def build_engine(backend):
    engine = MemoryEngine() if backend == "memory" else SqliteEngine()
    engine.create_relation(
        relation("T").integer("k").text("v", nullable=True).key("k").build()
    )
    for key in range(5):
        engine.insert("T", (key, f"seed{key}"))
    return engine


operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "replace"]),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
        st.text(alphabet="xyz", max_size=3),
    ),
    max_size=30,
)


def apply_ops(engine, ops):
    for kind, key, key2, text in ops:
        try:
            if kind == "insert":
                engine.insert("T", (key, text))
            elif kind == "delete":
                engine.delete("T", (key,))
            else:
                engine.replace("T", (key,), (key2, text))
        except (DuplicateKeyError, NoSuchRowError):
            continue


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
@given(ops=operations)
@settings(max_examples=100, deadline=None)
def test_rollback_restores_exact_state(backend, ops):
    engine = build_engine(backend)
    before = sorted(engine.scan("T"))
    engine.begin()
    apply_ops(engine, ops)
    engine.rollback()
    assert sorted(engine.scan("T")) == before


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
@given(ops=operations, inner=operations)
@settings(max_examples=60, deadline=None)
def test_nested_rollback_keeps_outer_changes(backend, ops, inner):
    engine = build_engine(backend)
    engine.begin()
    apply_ops(engine, ops)
    outer_state = sorted(engine.scan("T"))
    engine.begin()
    apply_ops(engine, inner)
    engine.rollback()
    assert sorted(engine.scan("T")) == outer_state
    engine.commit()
    assert sorted(engine.scan("T")) == outer_state


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_commit_then_rollback_outer(ops):
    """Inner commit is still undone by an outer rollback (memory)."""
    engine = build_engine("memory")
    before = sorted(engine.scan("T"))
    engine.begin()
    engine.begin()
    apply_ops(engine, ops)
    engine.commit()
    engine.rollback()
    assert sorted(engine.scan("T")) == before
