"""Property tests: structural round-trips across the whole stack."""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import build_instance
from repro.core.instantiation import Instantiator
from repro.core.serialization import (
    view_object_from_dict,
    view_object_to_dict,
)
from repro.core.updates.translator import Translator
from repro.relational.memory_engine import MemoryEngine
from repro.workloads.figures import course_info_object
from repro.workloads.university import (
    UniversityConfig,
    populate_university,
    university_schema,
)

GRAPH = university_schema()
OMEGA = course_info_object(GRAPH)


def fresh_engine(seed=1991):
    engine = MemoryEngine()
    GRAPH.install(engine)
    populate_university(
        engine,
        UniversityConfig(students=8, faculty=3, staff=1, courses=6, seed=seed),
    )
    return engine


@given(seed=st.integers(min_value=1, max_value=50))
@settings(max_examples=20, deadline=None)
def test_instantiate_to_dict_build_round_trip(seed):
    """instantiate -> to_dict -> build_instance reproduces the instance
    for every course of every generated database."""
    engine = fresh_engine(seed)
    instantiator = Instantiator(OMEGA)
    for instance in instantiator.all(engine):
        rebuilt = build_instance(OMEGA, instance.to_dict())
        assert rebuilt == instance


@given(seed=st.integers(min_value=1, max_value=50))
@settings(max_examples=15, deadline=None)
def test_replacement_is_invertible(seed):
    """replace(old→new) then replace(new→old) restores the database."""
    engine = fresh_engine(seed)
    translator = Translator(OMEGA)
    before = {
        name: sorted(engine.scan(name)) for name in GRAPH.relation_names
    }
    cid = next(iter(engine.scan("COURSES")))[0]
    old = translator.instantiate(engine, (cid,))
    new = copy.deepcopy(old.to_dict())
    new["title"] = "Temporarily Different"
    new["units"] = (new["units"] % 5) + 1
    translator.replace(engine, old, new)
    current = translator.instantiate(engine, (cid,))
    translator.replace(engine, current, old.to_dict())
    after = {
        name: sorted(engine.scan(name)) for name in GRAPH.relation_names
    }
    assert after == before


@given(seed=st.integers(min_value=1, max_value=50))
@settings(max_examples=15, deadline=None)
def test_key_change_round_trip(seed):
    """Rekeying a course and rekeying it back restores the island and
    peninsula relations exactly."""
    engine = fresh_engine(seed)
    translator = Translator(OMEGA)
    watched = ("COURSES", "GRADES", "CURRICULUM")
    before = {name: sorted(engine.scan(name)) for name in watched}
    cid = next(iter(engine.scan("COURSES")))[0]

    def rekey(data, new_id):
        data = copy.deepcopy(data)
        data["course_id"] = new_id
        for grade in data.get("GRADES", []):
            grade["course_id"] = new_id
        for entry in data.get("CURRICULUM", []):
            entry["course_id"] = new_id
        return data

    old = translator.instantiate(engine, (cid,))
    translator.replace(engine, old, rekey(old.to_dict(), "TMPKEY"))
    temp = translator.instantiate(engine, ("TMPKEY",))
    translator.replace(engine, temp, rekey(temp.to_dict(), cid))
    after = {name: sorted(engine.scan(name)) for name in watched}
    assert after == before


@given(seed=st.integers(min_value=1, max_value=30))
@settings(max_examples=10, deadline=None)
def test_serialized_object_behaves_identically(seed):
    """A deserialized definition produces byte-identical instances."""
    engine = fresh_engine(seed)
    rebuilt = view_object_from_dict(GRAPH, view_object_to_dict(OMEGA))
    original_instances = Instantiator(OMEGA).all(engine)
    rebuilt_instances = Instantiator(rebuilt).all(engine)
    assert [i.to_dict() for i in original_instances] == [
        i.to_dict() for i in rebuilt_instances
    ]
