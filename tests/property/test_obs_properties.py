"""Properties of the observability layer.

Two families of law:

* metric invariants — for any workload, cache hits + misses equal
  lookups, translations counted equal plans executed, and a
  histogram's count equals the number of observations;
* transparency — a traced run and an untraced run of the same workload
  end in the identical database state.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

import repro.obs as obs
from repro.penguin import Penguin
from repro.workloads.figures import course_info_object
from repro.workloads.university import populate_university, university_schema

DEPARTMENTS = ("Computer Science", "Music", "Mathematics")
LEVELS = ("undergraduate", "graduate")


def course(index, level="graduate"):
    return {
        "course_id": f"GEN{index:04d}",
        "title": f"Generated {index}",
        "units": 3,
        "level": level,
        "dept_name": DEPARTMENTS[index % len(DEPARTMENTS)],
        "DEPARTMENT": [],
        "CURRICULUM": [],
        "GRADES": [],
    }


def fresh_session():
    graph = university_schema()
    session = Penguin(graph)
    populate_university(session.engine)
    session.register_object(course_info_object(graph))
    return session


def fresh_view(session):
    return session.materialize("course_info")


def state_of(session):
    return {
        relation: sorted(session.engine.scan(relation))
        for relation in session.engine.relation_names()
    }


# An action script: each entry drives one session call.  ``insert``
# and ``delete`` exercise the translator; ``get``/``miss`` exercise
# the materialized cache.
actions = st.lists(
    st.sampled_from(["insert", "delete", "get", "miss", "query"]),
    min_size=1,
    max_size=12,
)


def run_script(session, script, view=None):
    def read(key):
        if view is not None:
            view.get(key)
        else:
            session.get("course_info", key)

    alive = []
    serial = 0
    writes = 0
    for action in script:
        if action == "insert":
            session.insert("course_info", course(serial))
            alive.append(f"GEN{serial:04d}")
            serial += 1
            writes += 1
        elif action == "delete":
            if alive:
                session.delete("course_info", (alive.pop(),))
                writes += 1
        elif action == "get":
            read((alive[-1],) if alive else ("M100",))
        elif action == "miss":
            read(("NOPE",))
        elif action == "query":
            session.query("course_info")
    return writes


class TestMetricInvariants:
    @settings(max_examples=20, deadline=None)
    @given(script=actions)
    def test_cache_hits_plus_misses_equal_lookups(self, script):
        session = fresh_session()
        view = fresh_view(session)
        with obs.use() as hub:
            run_script(session, script, view=view)
            metrics = hub.metrics
            lookups = metrics.counter_total("cache_lookups_total")
            hits = metrics.counter_total("cache_hits_total")
            misses = metrics.counter_total("cache_misses_total")
        assert hits + misses == lookups

    @settings(max_examples=20, deadline=None)
    @given(script=actions)
    def test_translations_counted_equal_plans_executed(self, script):
        session = fresh_session()
        with obs.use() as hub:
            writes = run_script(session, script)
            translations = hub.metrics.counter_total("translations_total")
            observed_plans = hub.metrics.histogram_total_count("plan_ops")
        # Every successful write ran exactly one translation, and every
        # counted translation recorded exactly one plan-size observation.
        assert translations == writes
        assert observed_plans == writes

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.floats(0, 1e6), min_size=0, max_size=50))
    def test_histogram_count_equals_observations(self, values):
        registry = obs.Observability.enabled().metrics
        histogram = registry.histogram("sizes")
        for value in values:
            histogram.observe(value)
        assert histogram.count == len(values)
        assert sum(histogram.bucket_counts().values()) == len(values)

    @settings(max_examples=20, deadline=None)
    @given(script=actions)
    def test_preview_never_counts_as_translation(self, script):
        session = fresh_session()
        with obs.use() as hub:
            for index, action in enumerate(script):
                if action == "insert":
                    session.translator("course_info").preview_insert(
                        session.engine, course(index)
                    )
            previews = hub.metrics.counter_total(
                "translation_previews_total"
            )
            translations = hub.metrics.counter_total("translations_total")
        assert translations == 0
        assert previews == sum(1 for a in script if a == "insert")


class TestTracingTransparency:
    @settings(max_examples=15, deadline=None)
    @given(script=actions)
    def test_traced_run_equals_untraced_run(self, script):
        untraced = fresh_session()
        obs.disable()
        run_script(untraced, script)

        traced = fresh_session()
        with obs.use() as hub:
            writes = run_script(traced, script)
            spans = len(hub.tracer.roots()) + hub.tracer.dropped

        assert state_of(traced) == state_of(untraced)
        assert spans >= writes  # every write produced a root span
