"""Property: batched translation is equivalent to the sequential
per-instance loop, and failed batches leave the engine untouched."""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.errors import UpdateError
from repro.penguin import Penguin
from repro.workloads.figures import course_info_object
from repro.workloads.university import populate_university, university_schema

DEPARTMENTS = ("Computer Science", "Music", "Mathematics")
LEVELS = ("undergraduate", "graduate")


def course_strategy(index):
    return st.fixed_dictionaries(
        {
            "course_id": st.just(f"GEN{index:04d}"),
            "title": st.text(
                alphabet=st.characters(
                    whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F
                ),
                min_size=1,
                max_size=12,
            ),
            "units": st.integers(min_value=1, max_value=9),
            "level": st.sampled_from(LEVELS),
            "dept_name": st.sampled_from(DEPARTMENTS),
            "DEPARTMENT": st.just([]),
            "CURRICULUM": st.just([]),
            "GRADES": st.just([]),
        }
    )


def batches(max_size=8):
    return st.integers(min_value=1, max_value=max_size).flatmap(
        lambda n: st.tuples(*[course_strategy(i) for i in range(n)])
    )


def fresh_session():
    graph = university_schema()
    session = Penguin(graph)
    populate_university(session.engine)
    session.register_object(course_info_object(graph))
    return session


def state_of(session):
    return {
        relation: sorted(session.engine.scan(relation))
        for relation in session.engine.relation_names()
    }


@settings(max_examples=25, deadline=None)
@given(batch=batches())
def test_batched_equals_sequential(batch):
    sequential = fresh_session()
    for data in batch:
        sequential.insert("course_info", data)

    bulk = fresh_session()
    plan = bulk.insert_many("course_info", list(batch))

    assert state_of(sequential) == state_of(bulk)
    assert len(plan) >= len(batch)
    assert bulk.is_consistent()


@settings(max_examples=25, deadline=None)
@given(batch=batches(), doomed=st.integers(min_value=0, max_value=7))
def test_failed_batch_leaves_engine_untouched(batch, doomed):
    session = fresh_session()
    before = state_of(session)

    poisoned = [dict(d) for d in batch]
    poisoned[doomed % len(poisoned)]["course_id"] = "M100"  # duplicates seed data

    with pytest.raises(UpdateError):
        session.insert_many("course_info", poisoned)

    assert state_of(session) == before


@settings(max_examples=15, deadline=None)
@given(batch=batches(max_size=6))
def test_insert_many_then_delete_many_matches_sequential(batch):
    """The roundtrip is not the identity (inserting a course under a
    department missing from the seed creates a placeholder DEPARTMENT
    row that complete deletion leaves behind), but bulk and sequential
    roundtrips must land on exactly the same state."""
    keys = [(d["course_id"],) for d in batch]

    sequential = fresh_session()
    for data in batch:
        sequential.insert("course_info", data)
    for key in keys:
        sequential.delete("course_info", key)

    bulk = fresh_session()
    bulk.insert_many("course_info", list(batch))
    bulk.delete_many("course_info", keys)

    assert state_of(bulk) == state_of(sequential)
    assert bulk.get("course_info", keys[0]) is None
    assert bulk.is_consistent()
