"""Property: crash anywhere in any plan, recovery leaves no torn state."""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.relational.ddl import relation  # noqa: E402
from repro.relational.faults import (  # noqa: E402
    FaultInjectingEngine,
    FaultPlan,
    SimulatedCrash,
)
from repro.relational.journal import (  # noqa: E402
    ABORTED,
    MemoryJournal,
    apply_journaled,
    recover,
)
from repro.relational.memory_engine import MemoryEngine  # noqa: E402
from repro.relational.operations import (  # noqa: E402
    Delete,
    Insert,
    Replace,
    UpdatePlan,
)

pytestmark = pytest.mark.chaos

LEFT = relation("LEFT").integer("id").text("val").key("id").build()
RIGHT = relation("RIGHT").integer("id").text("val").key("id").build()

SEED_KEYS = range(5)


def make_engine():
    engine = MemoryEngine()
    for schema in (LEFT, RIGHT):
        engine.create_relation(schema)
        for i in SEED_KEYS:
            engine.insert(schema.name, (i, f"seed-{i}"))
    return engine


@st.composite
def valid_plans(draw):
    """Plans that are valid to apply against the seeded two-relation DB.

    Keys are tracked per relation while drawing, so deletes and
    replaces always target live rows and inserts always use fresh keys
    — including key-changing replaces, which exercise the two-cell
    image path.
    """
    keys = {"LEFT": set(SEED_KEYS), "RIGHT": set(SEED_KEYS)}
    next_id = [100]
    plan = UpdatePlan()
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        name = draw(st.sampled_from(["LEFT", "RIGHT"]))
        kinds = ["insert"] + (["delete", "replace"] if keys[name] else [])
        kind = draw(st.sampled_from(kinds))
        if kind == "insert":
            new = next_id[0]
            next_id[0] += 1
            keys[name].add(new)
            plan.add(Insert(name, (new, f"new-{new}")))
        elif kind == "delete":
            victim = draw(st.sampled_from(sorted(keys[name])))
            keys[name].discard(victim)
            plan.add(Delete(name, (victim,)))
        else:
            old = draw(st.sampled_from(sorted(keys[name])))
            if draw(st.booleans()):  # key-changing replace
                new = next_id[0]
                next_id[0] += 1
                keys[name].discard(old)
                keys[name].add(new)
                plan.add(Replace(name, (old,), (new, f"moved-{new}")))
            else:
                plan.add(Replace(name, (old,), (old, f"upd-{old}")))
    return plan


def snapshot(engine):
    return {name: set(engine.scan(name)) for name in engine.relation_names()}


@settings(max_examples=60, deadline=None)
@given(plan_and_k=valid_plans().flatmap(
    lambda plan: st.tuples(
        st.just(plan), st.integers(min_value=1, max_value=len(plan))
    )
))
def test_crash_anywhere_recovers_to_all_reverted(plan_and_k):
    plan, k = plan_and_k
    engine = make_engine()
    before = snapshot(engine)
    journal = MemoryJournal()
    faulty = FaultInjectingEngine(engine, FaultPlan().crash_at("mutation", at=k))

    with pytest.raises(SimulatedCrash):
        apply_journaled(faulty, journal, plan, atomic=False)

    report = recover(engine, journal)
    assert report.clean
    statuses = {e.status for e in journal.entries()}
    assert len(statuses) == 1
    if statuses == {ABORTED}:
        assert snapshot(engine) == before
    else:
        # A plan whose net effect is a no-op on every journaled cell
        # (insert X then delete X) legitimately resolves as COMMITTED:
        # every cell already shows its after-image.
        entry = journal.entries()[0]
        for (name, key), (_, after) in entry.images().items():
            assert engine.get(name, key) == after
    # Idempotent: a second recovery finds nothing to do.
    assert recover(engine, journal).pending_resolved == 0


@settings(max_examples=30, deadline=None)
@given(plan=valid_plans())
def test_uninterrupted_plan_reaches_after_images(plan):
    engine = make_engine()
    journal = MemoryJournal()
    entry_id = apply_journaled(engine, journal, plan, atomic=False)
    entry = journal.entry(entry_id)
    for (name, key), (_, after) in entry.images().items():
        assert engine.get(name, key) == after
    assert recover(engine, journal).pending_resolved == 0
