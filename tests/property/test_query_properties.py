"""Property tests on the query language: generated ASTs behave sanely."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query.ast import QNot
from repro.core.query.evaluator import evaluate
from repro.core.query.parser import parse_query
from repro.core.query.planner import plan_query
from repro.core.instance import build_instance
from repro.workloads.figures import course_info_object
from repro.workloads.university import university_schema

GRAPH = university_schema()
OMEGA = course_info_object(GRAPH)


def make_instance(units, level, n_grades):
    return build_instance(
        OMEGA,
        {
            "course_id": "P1",
            "title": "t",
            "units": units,
            "level": level,
            "dept_name": "Physics",
            "GRADES": [
                {
                    "course_id": "P1",
                    "student_id": index,
                    "grade": "A",
                    "STUDENT": [
                        {
                            "person_id": index,
                            "degree_program": "X",
                            "year": index % 6 + 1,
                        }
                    ],
                }
                for index in range(n_grades)
            ],
        },
    )


comparisons = st.sampled_from(
    [
        "units = {n}",
        "units < {n}",
        "units >= {n}",
        "level = 'graduate'",
        "count(GRADES) = {n}",
        "count(STUDENT) < {n}",
        "STUDENT.year > {n}",
        "GRADES.grade = 'A'",
    ]
).flatmap(
    lambda template: st.integers(min_value=0, max_value=6).map(
        lambda n: template.format(n=n)
    )
)


@st.composite
def query_texts(draw, depth=2):
    if depth == 0:
        return draw(comparisons)
    kind = draw(st.sampled_from(["leaf", "and", "or", "not", "paren"]))
    if kind == "leaf":
        return draw(comparisons)
    if kind == "not":
        return "not " + draw(query_texts(depth=depth - 1))
    if kind == "paren":
        return "(" + draw(query_texts(depth=depth - 1)) + ")"
    connective = " and " if kind == "and" else " or "
    left = draw(query_texts(depth=depth - 1))
    right = draw(query_texts(depth=depth - 1))
    return left + connective + right


@given(
    text=query_texts(),
    units=st.integers(min_value=0, max_value=6),
    level=st.sampled_from(["graduate", "undergraduate"]),
    n_grades=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=150, deadline=None)
def test_evaluation_total_and_boolean(text, units, level, n_grades):
    """Every generated query parses and evaluates to a bool."""
    instance = make_instance(units, level, n_grades)
    ast = parse_query(text)
    result = evaluate(ast, instance)
    assert isinstance(result, bool)


@given(
    text=query_texts(),
    units=st.integers(min_value=0, max_value=6),
    level=st.sampled_from(["graduate", "undergraduate"]),
    n_grades=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=150, deadline=None)
def test_negation_flips(text, units, level, n_grades):
    instance = make_instance(units, level, n_grades)
    ast = parse_query(text)
    assert evaluate(QNot(ast), instance) == (not evaluate(ast, instance))


@given(
    text=query_texts(),
    units=st.integers(min_value=0, max_value=6),
    n_grades=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=100, deadline=None)
def test_planner_split_preserves_semantics(text, units, n_grades):
    """pushed(pivot_row) AND residual(instance) == full(instance)."""
    instance = make_instance(units, "graduate", n_grades)
    ast = parse_query(text)
    plan = plan_query(ast)
    pushed_holds = plan.pushed.evaluate(instance.root.values)
    residual_holds = (
        True if plan.residual is None else evaluate(plan.residual, instance)
    )
    assert (pushed_holds and residual_holds) == evaluate(ast, instance)


@given(text=query_texts())
@settings(max_examples=150, deadline=None)
def test_parse_is_deterministic(text):
    assert repr(parse_query(text)) == repr(parse_query(text))
