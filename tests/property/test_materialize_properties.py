"""Cache/recompute equivalence under random update interleavings.

For any sequence of base-table inserts, deletes, and replaces — with
cache reads interleaved so incremental maintenance actually runs
mid-stream — a materialized view object must remain *extensionally
equal* to a fresh re-instantiation, under every maintenance policy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instantiation import Instantiator
from repro.materialize import POLICIES
from repro.penguin import Penguin
from repro.workloads.figures import course_info_object
from repro.workloads.university import (
    UniversityConfig,
    populate_university,
    university_schema,
)

CONFIG = UniversityConfig(students=6, faculty=3, staff=1, courses=4)

OP_NAMES = (
    "insert_grade",
    "delete_grade",
    "replace_grade",
    "move_grade",
    "retitle_course",
    "move_course_dept",
    "insert_course",
    "delete_course",
    "change_instructor",
)

operations = st.lists(
    st.tuples(
        st.sampled_from(OP_NAMES),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=40),
    ),
    min_size=1,
    max_size=7,
)


def make_penguin():
    penguin = Penguin(university_schema())
    populate_university(penguin.engine, CONFIG)
    penguin.register_object(course_info_object(penguin.graph))
    return penguin


def row_map(engine, relation, values):
    return dict(zip((a.name for a in engine.schema(relation).attributes), values))


def apply_op(engine, op, a, b, counter):
    """Interpret one abstract op against current state; no-op when the
    state offers no suitable target (e.g. deleting from an empty table)."""
    courses = sorted(engine.scan("COURSES"))
    grades = sorted(engine.scan("GRADES"))
    students = sorted(engine.scan("STUDENT"))
    departments = sorted(engine.scan("DEPARTMENT"))
    faculty = sorted(engine.scan("FACULTY"))
    if op == "insert_grade":
        if not courses or not students:
            return
        course_id = courses[a % len(courses)][0]
        student_id = students[b % len(students)][0]
        if engine.get("GRADES", (course_id, student_id)) is not None:
            return
        engine.insert(
            "GRADES",
            {"course_id": course_id, "student_id": student_id, "grade": "B"},
        )
    elif op == "delete_grade":
        if not grades:
            return
        grade = grades[a % len(grades)]
        engine.delete("GRADES", (grade[0], grade[1]))
    elif op == "replace_grade":
        if not grades:
            return
        grade = grades[a % len(grades)]
        row = row_map(engine, "GRADES", grade)
        row["grade"] = "ACF"[b % 3]
        engine.replace("GRADES", (grade[0], grade[1]), row)
    elif op == "move_grade":
        if not grades or not courses:
            return
        grade = grades[a % len(grades)]
        target = courses[b % len(courses)][0]
        if engine.get("GRADES", (target, grade[1])) is not None:
            return
        row = row_map(engine, "GRADES", grade)
        row["course_id"] = target
        engine.replace("GRADES", (grade[0], grade[1]), row)
    elif op == "retitle_course":
        if not courses:
            return
        course = courses[a % len(courses)]
        row = row_map(engine, "COURSES", course)
        row["title"] = f"Title {b}"
        engine.replace("COURSES", (course[0],), row)
    elif op == "move_course_dept":
        if not courses or not departments:
            return
        course = courses[a % len(courses)]
        row = row_map(engine, "COURSES", course)
        row["dept_name"] = departments[b % len(departments)][0]
        engine.replace("COURSES", (course[0],), row)
    elif op == "insert_course":
        if not departments:
            return
        course_id = f"NEW{counter}"
        engine.insert(
            "COURSES",
            {
                "course_id": course_id,
                "title": "Synthetic",
                "units": 1 + b % 5,
                "level": ("undergraduate", "graduate")[b % 2],
                "dept_name": departments[a % len(departments)][0],
                "instructor_id": None,
            },
        )
    elif op == "delete_course":
        if not courses:
            return
        course = courses[a % len(courses)]
        # Engine-level delete: owned grades become orphans, which simply
        # drop out of every instance — instantiation must agree.
        engine.delete("COURSES", (course[0],))
    elif op == "change_instructor":
        if not courses or not faculty:
            return
        course = courses[a % len(courses)]
        row = row_map(engine, "COURSES", course)
        row["instructor_id"] = faculty[b % len(faculty)][0]
        engine.replace("COURSES", (course[0],), row)


def canonical(instances):
    """Order-insensitive (extensional) form of an instance set."""

    def freeze(value):
        if isinstance(value, dict):
            return tuple(sorted((k, freeze(v)) for k, v in value.items()))
        if isinstance(value, list):
            return tuple(sorted(freeze(v) for v in value))
        return value

    return {instance.key: freeze(instance.to_dict()) for instance in instances}


@pytest.mark.parametrize("policy", POLICIES)
@settings(max_examples=30, deadline=None)
@given(ops=operations)
def test_cache_extensionally_equal_to_recompute(policy, ops):
    penguin = make_penguin()
    view = penguin.materialize("course_info", policy=policy)
    penguin.query("course_info")  # warm the cache before the stream
    instantiator = Instantiator(penguin.object("course_info"))
    for counter, (op, a, b) in enumerate(ops):
        apply_op(penguin.engine, op, a, b, counter)
        # Interleaved read: maintenance must run mid-stream, not only at
        # the end, so stale entries get every chance to leak.
        if counter % 2 == 0:
            courses = sorted(penguin.engine.scan("COURSES"))
            if courses:
                penguin.get("course_info", (courses[a % len(courses)][0],))
    assert canonical(penguin.query("course_info")) == canonical(
        instantiator.all(penguin.engine)
    )
    assert view.staleness() == 0
