"""Property tests: the in-memory table against a model dictionary.

A :class:`Table` must behave exactly like ``dict[key, row]`` under any
interleaving of inserts, deletes, and replaces, and its secondary
indexes must always agree with a full scan.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateKeyError, NoSuchRowError
from repro.relational.domains import INTEGER, TEXT
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.table import Table


def make_table(indexed=True):
    schema = RelationSchema(
        "T",
        [
            Attribute("k", INTEGER),
            Attribute("group", TEXT),
            Attribute("n", INTEGER, nullable=True),
        ],
        key=("k",),
    )
    table = Table(schema)
    if indexed:
        table.create_index(("group",))
    return table


operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "replace"]),
        st.integers(min_value=0, max_value=9),       # key
        st.sampled_from(["a", "b", "c"]),            # group
        st.one_of(st.none(), st.integers(-5, 5)),    # n
    ),
    max_size=60,
)


@given(operations)
@settings(max_examples=200, deadline=None)
def test_table_matches_model_dict(ops):
    table = make_table()
    model = {}
    for kind, key, group, n in ops:
        row = (key, group, n)
        if kind == "insert":
            if key in model:
                with pytest.raises(DuplicateKeyError):
                    table.insert(row)
            else:
                table.insert(row)
                model[key] = row
        elif kind == "delete":
            if key in model:
                table.delete((key,))
                del model[key]
            else:
                with pytest.raises(NoSuchRowError):
                    table.delete((key,))
        else:  # replace (nonkey here: same key)
            if key in model:
                table.replace((key,), row)
                model[key] = row
            else:
                with pytest.raises(NoSuchRowError):
                    table.replace((key,), row)
    assert sorted(table.scan()) == sorted(model.values())
    assert len(table) == len(model)


@given(operations)
@settings(max_examples=100, deadline=None)
def test_index_agrees_with_scan(ops):
    table = make_table()
    for kind, key, group, n in ops:
        row = (key, group, n)
        try:
            if kind == "insert":
                table.insert(row)
            elif kind == "delete":
                table.delete((key,))
            else:
                table.replace((key,), row)
        except (DuplicateKeyError, NoSuchRowError):
            continue
    for group in ("a", "b", "c"):
        via_index = sorted(table.find_by(("group",), (group,)))
        via_scan = sorted(v for v in table.scan() if v[1] == group)
        assert via_index == via_scan


@given(
    st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)),
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_key_changing_replace_preserves_cardinality(moves):
    """A successful key-changing replace never changes the row count."""
    table = make_table(indexed=False)
    for key in range(10):
        table.insert((key, "a", None))
    for old_key, new_key in moves:
        before = len(table)
        try:
            table.replace((old_key,), (new_key, "b", None))
        except (DuplicateKeyError, NoSuchRowError):
            pass
        assert len(table) == before
