"""Property tests on the update-translation invariants.

Whatever instance is inserted: (a) structural integrity holds after
every successful translation, (b) insert followed by delete restores
the exact database state, and (c) a rejected update leaves no trace.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.updates.translator import Translator
from repro.errors import ReproError
from repro.relational.memory_engine import MemoryEngine
from repro.structural.integrity import IntegrityChecker
from repro.workloads.figures import course_info_object
from repro.workloads.university import (
    UniversityConfig,
    populate_university,
    university_schema,
)

GRAPH = university_schema()
OMEGA = course_info_object(GRAPH)
CHECKER = IntegrityChecker(GRAPH)


def fresh_engine():
    engine = MemoryEngine()
    GRAPH.install(engine)
    populate_university(
        engine, UniversityConfig(students=8, faculty=3, staff=1, courses=5)
    )
    return engine


course_ids = st.text(
    alphabet="ABCXYZ", min_size=2, max_size=5
).map(lambda s: "Q" + s)

grades_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=20),
        st.sampled_from(["A", "B", "C", "F"]),
    ),
    max_size=4,
    unique_by=lambda t: t[0],
)


def instance_for(course_id, units, level, grades):
    return {
        "course_id": course_id,
        "title": f"Generated {course_id}",
        "units": units,
        "level": level,
        "dept_name": "Physics",
        "DEPARTMENT": [],
        "CURRICULUM": [],
        "GRADES": [
            {
                "course_id": course_id,
                "student_id": 1000 + sid,
                "grade": grade,
                "STUDENT": [
                    {
                        "person_id": 1000 + sid,
                        "degree_program": "GEN",
                        "year": 1,
                    }
                ],
            }
            for sid, grade in grades
        ],
    }


@given(
    course_id=course_ids,
    units=st.integers(min_value=1, max_value=6),
    level=st.sampled_from(["graduate", "undergraduate"]),
    grades=grades_lists,
)
@settings(max_examples=25, deadline=None)
def test_insert_keeps_integrity(course_id, units, level, grades):
    engine = fresh_engine()
    translator = Translator(OMEGA)
    try:
        translator.insert(
            engine, instance_for(course_id, units, level, grades)
        )
    except ReproError:
        return  # rejected updates are covered by the rollback property
    assert CHECKER.is_consistent(engine)


@given(
    course_id=course_ids,
    units=st.integers(min_value=1, max_value=6),
    grades=grades_lists,
)
@settings(max_examples=25, deadline=None)
def test_insert_then_delete_roundtrip(course_id, units, grades):
    engine = fresh_engine()
    before = {
        name: sorted(engine.scan(name)) for name in GRAPH.relation_names
    }
    translator = Translator(OMEGA)
    try:
        translator.insert(
            engine, instance_for(course_id, units, "graduate", grades)
        )
    except ReproError:
        return
    translator.delete(engine, key=(course_id,))
    # Inserted STUDENT/PEOPLE skeletons survive deletion of the course
    # (they are outside the island), so compare island relations plus
    # the peninsulas only.
    for name in ("COURSES", "GRADES", "CURRICULUM", "DEPARTMENT"):
        assert sorted(engine.scan(name)) == before[name], name
    assert CHECKER.is_consistent(engine)


@given(
    course_id=course_ids,
    grades=grades_lists,
)
@settings(max_examples=25, deadline=None)
def test_rejected_update_leaves_no_trace(course_id, grades):
    from repro.core.updates.policy import RelationPolicy, TranslatorPolicy

    engine = fresh_engine()
    policy = TranslatorPolicy()
    policy.set_relation("STUDENT", RelationPolicy(can_modify=False))
    policy.set_relation("PEOPLE", RelationPolicy(can_modify=False))
    translator = Translator(OMEGA, policy=policy)
    before = {
        name: sorted(engine.scan(name)) for name in GRAPH.relation_names
    }
    try:
        translator.insert(
            engine, instance_for(course_id, 3, "graduate", grades)
        )
    except ReproError:
        after = {
            name: sorted(engine.scan(name))
            for name in GRAPH.relation_names
        }
        assert after == before
