"""Stateful model-based testing of the storage engines.

A hypothesis rule machine drives both engines and a reference model
(a dict plus a stack of snapshots for open transactions) through random
interleavings of inserts, deletes, replaces, begins, commits, and
rollbacks, checking full-state equality after every step.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.errors import DuplicateKeyError, NoSuchRowError
from repro.relational.ddl import relation
from repro.relational.memory_engine import MemoryEngine
from repro.relational.sqlite_engine import SqliteEngine

KEYS = st.integers(min_value=0, max_value=7)
VALUES = st.text(alphabet="abc", max_size=2)


class EngineMachine(RuleBasedStateMachine):
    """Drives one engine against a dict-of-rows model."""

    engine_factory = staticmethod(MemoryEngine)

    def __init__(self):
        super().__init__()
        self.engine = self.engine_factory()
        self.engine.create_relation(
            relation("T").integer("k").text("v", nullable=True).key("k").build()
        )
        self.model = {}
        self.snapshots = []

    # -- mutations --------------------------------------------------------

    @rule(key=KEYS, value=VALUES)
    def insert(self, key, value):
        if key in self.model:
            with pytest.raises(DuplicateKeyError):
                self.engine.insert("T", (key, value))
        else:
            self.engine.insert("T", (key, value))
            self.model[key] = (key, value)

    @rule(key=KEYS)
    def delete(self, key):
        if key in self.model:
            self.engine.delete("T", (key,))
            del self.model[key]
        else:
            with pytest.raises(NoSuchRowError):
                self.engine.delete("T", (key,))

    @rule(old=KEYS, new=KEYS, value=VALUES)
    def replace(self, old, new, value):
        if old not in self.model:
            with pytest.raises(NoSuchRowError):
                self.engine.replace("T", (old,), (new, value))
        elif new != old and new in self.model:
            with pytest.raises(DuplicateKeyError):
                self.engine.replace("T", (old,), (new, value))
        else:
            self.engine.replace("T", (old,), (new, value))
            del self.model[old]
            self.model[new] = (new, value)

    # -- transactions -------------------------------------------------------

    @rule()
    def begin(self):
        if len(self.snapshots) < 4:  # bound nesting depth
            self.engine.begin()
            self.snapshots.append(dict(self.model))

    @precondition(lambda self: self.snapshots)
    @rule()
    def commit(self):
        self.engine.commit()
        self.snapshots.pop()

    @precondition(lambda self: self.snapshots)
    @rule()
    def rollback(self):
        self.engine.rollback()
        self.model = self.snapshots.pop()

    # -- invariants -----------------------------------------------------------

    @invariant()
    def engine_matches_model(self):
        assert sorted(self.engine.scan("T")) == sorted(self.model.values())

    @invariant()
    def lookups_match_model(self):
        for key in range(8):
            expected = self.model.get(key)
            assert self.engine.get("T", (key,)) == expected


class MemoryEngineMachine(EngineMachine):
    engine_factory = staticmethod(MemoryEngine)


class SqliteEngineMachine(EngineMachine):
    engine_factory = staticmethod(SqliteEngine)


TestMemoryEngineStateful = MemoryEngineMachine.TestCase
TestMemoryEngineStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)

TestSqliteEngineStateful = SqliteEngineMachine.TestCase
TestSqliteEngineStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
