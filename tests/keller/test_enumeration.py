"""Candidate enumeration and criteria filtering."""

import pytest

from repro.errors import UpdateError
from repro.keller.enumeration import (
    contributing_rows,
    enumerate_deletions,
    enumerate_insertions,
    enumerate_replacements,
    valid_translations,
)
from repro.keller.views import JoinEdge, RelationalView


@pytest.fixture
def view():
    return RelationalView(
        "cd",
        ["COURSES", "DEPARTMENT"],
        [JoinEdge("COURSES", "DEPARTMENT", [("dept_name", "dept_name")])],
        projection=[
            "COURSES.course_id",
            "COURSES.title",
            "DEPARTMENT.dept_name",
        ],
    )


def first_view_tuple(view, engine):
    row = view.tuples(engine)[0]
    return dict(zip(view.projection, row))


class TestContributingRows:
    def test_found(self, view, university_engine):
        vt = first_view_tuple(view, university_engine)
        rows = contributing_rows(view, university_engine, vt)
        assert len(rows) == 1
        assert rows[0]["COURSES.course_id"] == vt["COURSES.course_id"]

    def test_carries_unprojected_attributes(self, view, university_engine):
        vt = first_view_tuple(view, university_engine)
        rows = contributing_rows(view, university_engine, vt)
        assert "DEPARTMENT.building" in rows[0]


class TestDeletions:
    def test_one_candidate_per_relation(self, view, university_engine):
        vt = first_view_tuple(view, university_engine)
        candidates = enumerate_deletions(view, university_engine, vt)
        assert len(candidates) == 2
        relations = {plan[0].relation for plan in candidates}
        assert relations == {"COURSES", "DEPARTMENT"}

    def test_missing_tuple(self, view, university_engine):
        with pytest.raises(UpdateError):
            enumerate_deletions(
                view, university_engine, {"COURSES.course_id": "GHOST"}
            )

    def test_criteria_pick_course_deletion(self, view, university_engine):
        """Deleting the shared department has side effects on other view
        tuples; only the COURSES deletion survives the criteria."""
        rows = view.tuples(university_engine)
        # Choose a tuple whose department serves several courses.
        by_dept = {}
        for row in rows:
            by_dept.setdefault(row[2], []).append(row)
        dept, members = next(
            (d, m) for d, m in by_dept.items() if len(m) > 1
        )
        victim = members[0]
        vt = dict(zip(view.projection, victim))
        expected = [t for t in rows if t != victim]
        candidates = enumerate_deletions(view, university_engine, vt)
        valid = valid_translations(
            view, university_engine, candidates, expected
        )
        assert len(valid) == 1
        assert valid[0][0].relation == "COURSES"


class TestInsertions:
    def test_inserts_only_missing(self, view, university_engine):
        candidate = enumerate_insertions(
            view,
            university_engine,
            {
                "COURSES": ("NEW1", "t", 1, "graduate", "Physics", None),
                "DEPARTMENT": university_engine.get(
                    "DEPARTMENT", ("Physics",)
                ),
            },
        )[0]
        assert [op.relation for op in candidate] == ["COURSES"]

    def test_inserts_both_when_new(self, view, university_engine):
        candidate = enumerate_insertions(
            view,
            university_engine,
            {
                "COURSES": ("NEW1", "t", 1, "graduate", "NewDept", None),
                "DEPARTMENT": ("NewDept", None, None),
            },
        )[0]
        assert {op.relation for op in candidate} == {"COURSES", "DEPARTMENT"}

    def test_requires_all_relations(self, view, university_engine):
        with pytest.raises(UpdateError):
            enumerate_insertions(
                view,
                university_engine,
                {"COURSES": ("NEW1", "t", 1, "graduate", "Physics", None)},
            )


class TestReplacements:
    def test_nonjoin_attribute_single_candidate(self, view, university_engine):
        vt = first_view_tuple(view, university_engine)
        candidates = enumerate_replacements(
            view, university_engine, vt, {"COURSES.title": "Retitled"}
        )
        assert len(candidates) == 1
        assert candidates[0][0].relation == "COURSES"

    def test_join_attribute_ambiguity(self, view, university_engine):
        """Changing a join attribute can land on either side or both —
        the classic enumeration of alternatives."""
        vt = first_view_tuple(view, university_engine)
        candidates = enumerate_replacements(
            view,
            university_engine,
            vt,
            {"COURSES.dept_name": "Renamed Dept"},
        )
        assert len(candidates) == 3
        touched = [
            tuple(sorted({op.relation for op in plan}))
            for plan in candidates
        ]
        assert ("COURSES",) in touched
        assert ("DEPARTMENT",) in touched
        assert ("COURSES", "DEPARTMENT") in touched
