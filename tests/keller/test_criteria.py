"""The five validity criteria."""

import pytest

from repro.keller import criteria
from repro.keller.views import JoinEdge, RelationalView
from repro.relational.operations import Delete, Insert, Replace


@pytest.fixture
def view():
    return RelationalView(
        "cd",
        ["COURSES", "DEPARTMENT"],
        [JoinEdge("COURSES", "DEPARTMENT", [("dept_name", "dept_name")])],
        projection=["COURSES.course_id", "DEPARTMENT.dept_name"],
    )


class TestSyntacticCriteria:
    def test_one_step_changes_ok(self, university_engine):
        plan = [Delete("COURSES", ("a",)), Delete("COURSES", ("b",))]
        assert criteria.one_step_changes(plan)

    def test_one_step_changes_violated(self, university_engine):
        plan = [
            Replace("COURSES", ("a",), ("a", "t", 1, "g", "d", None)),
            Delete("COURSES", ("a",)),
        ]
        assert not criteria.one_step_changes(plan)

    def test_no_delete_insert_pairs_ok(self, university_engine):
        plan = [
            Delete("COURSES", ("a",)),
            Insert("DEPARTMENT", ("x", None, None)),
        ]
        assert criteria.no_delete_insert_pairs(plan, university_engine)

    def test_delete_insert_pair_detected(self, university_engine):
        plan = [
            Delete("COURSES", ("a",)),
            Insert("COURSES", ("a", "t", 1, "g", "Physics", None)),
        ]
        assert not criteria.no_delete_insert_pairs(plan, university_engine)


class TestSemanticCriteria:
    def test_no_side_effects_valid_plan(self, view, university_engine):
        rows = view.tuples(university_engine)
        victim = rows[0]
        expected = [t for t in rows if t != victim]
        plan = [Delete("COURSES", (victim[0],))]
        assert criteria.no_side_effects(view, university_engine, plan, expected)

    def test_side_effects_detected(self, view, university_engine):
        rows = view.tuples(university_engine)
        victim = rows[0]
        expected = [t for t in rows if t != victim]
        # Deleting the department kills every course in it: side effect.
        plan = [Delete("DEPARTMENT", (victim[1],))]
        n_in_dept = sum(1 for t in rows if t[1] == victim[1])
        if n_in_dept > 1:
            assert not criteria.no_side_effects(
                view, university_engine, plan, expected
            )

    def test_no_side_effects_restores_database(self, view, university_engine):
        """The check must leave the database untouched."""
        rows = view.tuples(university_engine)
        before = sorted(university_engine.scan("COURSES"))
        criteria.no_side_effects(
            view,
            university_engine,
            [Delete("COURSES", (rows[0][0],))],
            [t for t in rows if t != rows[0]],
        )
        assert sorted(university_engine.scan("COURSES")) == before

    def test_unnecessary_changes_detected(self, view, university_engine):
        rows = view.tuples(university_engine)
        victim = rows[0]
        expected = [t for t in rows if t != victim]
        # A plan with a redundant extra operation is not minimal, as long
        # as the extra operation does not affect the view.
        extra = Insert("STUDENT", (31337, "MSCS", 1))
        plan = [Delete("COURSES", (victim[0],)), extra]
        assert not criteria.no_unnecessary_changes(
            view, university_engine, plan, expected
        )

    def test_minimal_plan_accepted(self, view, university_engine):
        rows = view.tuples(university_engine)
        victim = rows[0]
        expected = [t for t in rows if t != victim]
        plan = [Delete("COURSES", (victim[0],))]
        assert criteria.no_unnecessary_changes(
            view, university_engine, plan, expected
        )

    def test_satisfies_all(self, view, university_engine):
        rows = view.tuples(university_engine)
        victim = rows[0]
        expected = [t for t in rows if t != victim]
        good = [Delete("COURSES", (victim[0],))]
        assert criteria.satisfies_all(
            view, university_engine, good, expected
        )
