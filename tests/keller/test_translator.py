"""The flat-view translator and its dialog."""

import pytest

from repro.errors import DialogError, UpdateError, UpdateRejectedError
from repro.dialog.answers import ConstantAnswers, ScriptedAnswers
from repro.keller.dialog import choose_flat_translator
from repro.keller.translator import KellerTranslator
from repro.keller.views import JoinEdge, RelationalView


@pytest.fixture
def view():
    return RelationalView(
        "cd",
        ["COURSES", "DEPARTMENT"],
        [JoinEdge("COURSES", "DEPARTMENT", [("dept_name", "dept_name")])],
        projection=[
            "COURSES.course_id",
            "COURSES.title",
            "DEPARTMENT.dept_name",
        ],
    )


def first_view_tuple(view, engine):
    row = view.tuples(engine)[0]
    return dict(zip(view.projection, row))


class TestDeletion:
    def test_deletes_via_chosen_relation(self, view, university_engine):
        translator = KellerTranslator(view, delete_target="COURSES")
        vt = first_view_tuple(view, university_engine)
        translator.delete(university_engine, vt)
        assert (
            university_engine.get("COURSES", (vt["COURSES.course_id"],))
            is None
        )
        assert (
            university_engine.get(
                "DEPARTMENT", (vt["DEPARTMENT.dept_name"],)
            )
            is not None
        )

    def test_default_target_is_anchor(self, view):
        assert KellerTranslator(view).delete_target == "COURSES"

    def test_bad_target_rejected(self, view):
        with pytest.raises(UpdateError):
            KellerTranslator(view, delete_target="GRADES")

    def test_missing_tuple(self, view, university_engine):
        translator = KellerTranslator(view)
        with pytest.raises(UpdateError):
            translator.delete(
                university_engine, {"COURSES.course_id": "GHOST"}
            )


class TestInsertion:
    def test_inserts_missing(self, view, university_engine):
        translator = KellerTranslator(view)
        translator.insert(
            university_engine,
            {
                "COURSES": ("NEWK1", "t", 1, "graduate", "Physics", None),
                "DEPARTMENT": university_engine.get("DEPARTMENT", ("Physics",)),
            },
        )
        assert university_engine.get("COURSES", ("NEWK1",)) is not None

    def test_insert_blocked_by_choice(self, view, university_engine):
        translator = KellerTranslator(view, insertable=["COURSES"])
        with pytest.raises(UpdateRejectedError):
            translator.insert(
                university_engine,
                {
                    "COURSES": ("NEWK2", "t", 1, "graduate", "NewDept", None),
                    "DEPARTMENT": ("NewDept", None, None),
                },
            )
        assert university_engine.get("COURSES", ("NEWK2",)) is None  # rollback

    def test_conflicting_existing_rejected(self, view, university_engine):
        translator = KellerTranslator(view)
        existing = university_engine.get("DEPARTMENT", ("Physics",))
        with pytest.raises(UpdateRejectedError):
            translator.insert(
                university_engine,
                {
                    "COURSES": ("NEWK3", "t", 1, "graduate", "Physics", None),
                    "DEPARTMENT": ("Physics", "Different Building", 1),
                },
            )


class TestReplacement:
    def test_nonjoin_change(self, view, university_engine):
        translator = KellerTranslator(view)
        vt = first_view_tuple(view, university_engine)
        translator.replace(
            university_engine, vt, {"COURSES.title": "Retitled"}
        )
        assert (
            university_engine.get("COURSES", (vt["COURSES.course_id"],))[1]
            == "Retitled"
        )

    def test_join_change_left_side(self, view, university_engine):
        translator = KellerTranslator(view, join_change_side="left")
        vt = first_view_tuple(view, university_engine)
        old_dept = vt["DEPARTMENT.dept_name"]
        translator.replace(
            university_engine, vt, {"COURSES.dept_name": "Philosophy"}
        )
        course = university_engine.get(
            "COURSES", (vt["COURSES.course_id"],)
        )
        assert course[4] == "Philosophy"
        assert university_engine.get("DEPARTMENT", (old_dept,)) is not None

    def test_join_change_both_sides(self, view, university_engine):
        translator = KellerTranslator(view, join_change_side="both")
        vt = first_view_tuple(view, university_engine)
        old_dept = vt["DEPARTMENT.dept_name"]
        translator.replace(
            university_engine, vt, {"COURSES.dept_name": "Fresh Dept"}
        )
        assert university_engine.get("DEPARTMENT", (old_dept,)) is None
        assert university_engine.get("DEPARTMENT", ("Fresh Dept",)) is not None

    def test_bad_side_rejected(self, view):
        with pytest.raises(UpdateError):
            KellerTranslator(view, join_change_side="middle")


class TestFlatDialog:
    def test_choices_applied(self, view, university_engine):
        translator, transcript = choose_flat_translator(
            view,
            ScriptedAnswers([False, True, True, False, True]),
        )
        # First deletion-target question answered NO -> DEPARTMENT chosen.
        assert translator.delete_target == "DEPARTMENT"
        assert translator.insertable == {"COURSES"}
        assert translator.join_change_side == "left"
        assert len(transcript) == 5

    def test_all_targets_rejected(self, view):
        with pytest.raises(DialogError):
            choose_flat_translator(view, ConstantAnswers(False))
