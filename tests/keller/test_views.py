"""Flat relational views: definition and materialization."""

import pytest

from repro.errors import SchemaError
from repro.keller.views import JoinEdge, RelationalView
from repro.relational.expressions import attr


@pytest.fixture
def view():
    return RelationalView(
        "course_dept",
        ["COURSES", "DEPARTMENT"],
        [JoinEdge("COURSES", "DEPARTMENT", [("dept_name", "dept_name")])],
        selection=attr("COURSES.level") == "graduate",
        projection=[
            "COURSES.course_id",
            "COURSES.title",
            "DEPARTMENT.dept_name",
            "DEPARTMENT.building",
        ],
    )


def test_anchor(view):
    assert view.anchor == "COURSES"


def test_materialize_joins_correctly(view, university_engine):
    rows = view.materialize(university_engine).mappings()
    assert rows
    for row in rows:
        course = university_engine.get(
            "COURSES", (row["COURSES.course_id"],)
        )
        assert course[4] == row["DEPARTMENT.dept_name"]


def test_selection_applied(view, university_engine):
    for row in view.materialize(university_engine).mappings():
        course = university_engine.get(
            "COURSES", (row["COURSES.course_id"],)
        )
        assert course[3] == "graduate"


def test_projection_applied(view, university_engine):
    result = view.materialize(university_engine)
    assert result.schema.attribute_names == (
        "COURSES.course_id",
        "COURSES.title",
        "DEPARTMENT.dept_name",
        "DEPARTMENT.building",
    )


def test_unprojected_view(university_engine):
    view = RelationalView(
        "all_courses",
        ["COURSES"],
        selection=attr("COURSES.units") >= 3,
    )
    rows = view.tuples(university_engine)
    expected = [
        v for v in university_engine.scan("COURSES") if v[2] >= 3
    ]
    assert len(rows) == len(expected)


def test_three_way_join(university_engine):
    view = RelationalView(
        "grades_full",
        ["GRADES", "COURSES", "STUDENT"],
        [
            JoinEdge("GRADES", "COURSES", [("course_id", "course_id")]),
            JoinEdge("GRADES", "STUDENT", [("student_id", "person_id")]),
        ],
        projection=[
            "GRADES.course_id",
            "GRADES.student_id",
            "COURSES.title",
            "STUDENT.degree_program",
        ],
    )
    rows = view.tuples(university_engine)
    assert len(rows) == university_engine.count("GRADES")


def test_disconnected_join_rejected():
    with pytest.raises(SchemaError, match="not\\s+connected"):
        RelationalView("bad", ["COURSES", "DEPARTMENT"], [])


def test_empty_view_rejected():
    with pytest.raises(SchemaError):
        RelationalView("bad", [])
