"""Circuit breaker and degraded-mode serving through ConcurrentPenguin."""

import pytest

from repro.errors import DegradedServiceError, TransientEngineError
from repro.materialize.maintainer import LAZY
from repro.penguin import Penguin
from repro.relational.faults import FaultInjectingEngine, FaultPlan
from repro.relational.memory_engine import MemoryEngine
from repro.serve import CircuitBreaker, ConcurrentPenguin, DEGRADED, HEALTHY
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)

pytestmark = pytest.mark.chaos

OBJECT = "patient_chart"


class TestCircuitBreaker:
    def test_starts_healthy_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == HEALTHY
        assert breaker.healthy
        assert all(breaker.allow() for _ in range(10))

    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.healthy  # below threshold
        breaker.record_failure()
        assert breaker.degraded
        assert breaker.state == DEGRADED
        assert breaker.opened == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.healthy  # streak was broken

    def test_degraded_probes_every_nth_call(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=3)
        breaker.record_failure()
        assert breaker.degraded
        decisions = [breaker.allow() for _ in range(6)]
        assert decisions == [False, False, True, False, False, True]
        assert breaker.probes == 2
        assert breaker.refusals == 4

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=1)
        breaker.record_failure()
        assert breaker.allow()  # probe
        breaker.record_success()
        assert breaker.healthy
        assert breaker.closed == 1

    def test_probe_failure_keeps_degraded(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=1)
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.degraded

    def test_reset_forces_healthy(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        breaker.reset()
        assert breaker.healthy

    def test_as_dict_and_validation(self):
        breaker = CircuitBreaker()
        state = breaker.as_dict()
        assert state["state"] == HEALTHY
        assert state["opened"] == 0
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_interval=0)


def degraded_serving(burst, failure_threshold=3, probe_interval=3):
    """A serving facade over a fault-injecting hospital engine."""
    graph = hospital_schema()
    base = MemoryEngine()
    graph.install(base)
    populate_hospital(base, HospitalConfig(patients=3))
    faulty = FaultInjectingEngine(
        base, FaultPlan().transient_burst(burst, ("mutation",))
    )
    session = Penguin(graph, engine=faulty, install=False)
    session.register_object(patient_chart_object(graph))
    breaker = CircuitBreaker(
        failure_threshold=failure_threshold, probe_interval=probe_interval
    )
    serving = ConcurrentPenguin(session, breaker=breaker)
    serving.materialize(OBJECT, LAZY)
    return base, serving


def trip(base, serving):
    """Burn the fault burst on writes until the breaker opens."""
    pids = sorted(row[0] for row in base.scan("PATIENT"))
    for pid in pids:
        if serving.breaker.degraded:
            break
        with pytest.raises(TransientEngineError):
            serving.delete(OBJECT, (pid,))
    assert serving.breaker.degraded
    return pids


@pytest.mark.timeout(30)
class TestDegradedServing:
    def test_fault_burst_opens_the_breaker(self):
        base, serving = degraded_serving(burst=3)
        trip(base, serving)
        assert serving.breaker.opened == 1

    def test_writes_fail_fast_while_degraded(self):
        base, serving = degraded_serving(burst=3, probe_interval=100)
        pids = trip(base, serving)
        mutations_before = serving.engine.operation_count("delete")
        with pytest.raises(DegradedServiceError):
            serving.delete(OBJECT, (pids[-1],))
        # Fail-fast means the engine was never contacted.
        assert serving.engine.operation_count("delete") == mutations_before

    def test_reads_served_stale_and_flagged(self):
        base, serving = degraded_serving(burst=3, probe_interval=100)
        healthy_extent = len(serving.query(OBJECT))  # warm the cache
        trip(base, serving)
        view = serving.materialized(OBJECT)
        assert view.stats.stale_reads == 0
        instances = serving.query(OBJECT)
        assert len(instances) == healthy_extent
        assert view.stats.stale_reads == 1
        assert serving.health()["stale_reads"] == 1

    def test_stale_get_refuses_uncached_key(self):
        base, serving = degraded_serving(burst=3, probe_interval=100)
        pids = trip(base, serving)
        with pytest.raises(DegradedServiceError):
            serving.get(OBJECT, (pids[0],))  # never cached

    def test_filtered_query_refuses_while_degraded(self):
        base, serving = degraded_serving(burst=3, probe_interval=100)
        serving.query(OBJECT)
        trip(base, serving)
        with pytest.raises(DegradedServiceError):
            serving.query(OBJECT, "name = 'nobody'")

    def test_degraded_without_cache_refuses_reads(self):
        base, serving = degraded_serving(burst=3, probe_interval=100)
        serving.dematerialize(OBJECT)
        trip(base, serving)
        with pytest.raises(DegradedServiceError):
            serving.query(OBJECT)

    def test_breaker_closes_after_plan_exhausted(self):
        """Once the fault plan is spent, a probe read succeeds, the
        breaker closes, and writes flow again."""
        base, serving = degraded_serving(burst=3, probe_interval=3)
        healthy_extent = len(serving.query(OBJECT))
        pids = trip(base, serving)
        assert serving.engine.plan.exhausted

        reads = 0
        while serving.breaker.degraded:
            assert len(serving.query(OBJECT)) == healthy_extent
            reads += 1
            assert reads <= 10 * serving.breaker.probe_interval
        assert serving.breaker.closed == 1
        assert serving.materialized(OBJECT).stats.stale_reads > 0

        plan = serving.delete(OBJECT, (pids[0],))
        assert len(plan) > 0
        assert base.get("PATIENT", (pids[0],)) is None

    def test_validation_errors_do_not_trip_the_breaker(self):
        base, serving = degraded_serving(burst=0)
        for _ in range(5):
            with pytest.raises(Exception) as excinfo:
                serving.delete(OBJECT, (999_999,))  # no such patient
            assert not isinstance(excinfo.value, TransientEngineError)
        assert serving.breaker.healthy
        assert serving.breaker.failures == 0
