"""Overload protection: deadlines, admission gate, graceful drain."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro.obs as obs
from repro.serve.http import PenguinServer, ServerHandle
from repro.shard import ShardedPenguin, sharded_loader
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)

OBJECT = "patient_chart"


def fresh_chart(pid):
    return {
        "patient_id": pid,
        "name": f"Overload Patient {pid}",
        "birth_year": 1970,
        "ward_name": None,
        "VISIT": [
            {
                "patient_id": pid,
                "visit_no": 1,
                "visit_date": "1991-05-29",
                "physician_id": 9000,
                "reason": "overload",
                "DIAGNOSIS": [],
                "PRESCRIPTION": [],
                "LAB_RESULT": [],
                "PHYSICIAN": [],
            }
        ],
    }


def request(url, method="GET", payload=None, headers=None):
    """(status, parsed JSON, headers) via urllib; never raises on 4xx/5xx."""
    body = None
    send = dict(headers or {})
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
        send["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=body, method=method, headers=send)
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            raw = response.read()
            status = response.status
            got = dict(response.headers)
    except urllib.error.HTTPError as error:
        raw = error.read()
        status = error.code
        got = dict(error.headers)
    return status, json.loads(raw.decode("utf-8")), got


def build_sharded(patients=6, shards=2):
    graph = hospital_schema()
    sharded = ShardedPenguin(graph, "PATIENT", num_shards=shards)
    populate_hospital(sharded_loader(sharded), HospitalConfig(patients=patients))
    sharded.register_object(patient_chart_object(graph))
    return sharded


@pytest.fixture()
def deployment():
    with obs.use():
        sharded = build_sharded()
        yield sharded


class TestDeadlines:
    def test_malformed_deadline_header_is_400(self, deployment):
        server = PenguinServer(deployment, port=0)
        handle = server.in_background()
        try:
            status, body, _ = request(
                f"{handle.url}/objects/{OBJECT}/100",
                headers={"X-Deadline-Ms": "soon"},
            )
            assert status == 400
            assert "X-Deadline-Ms" in body["error"]
            status, body, _ = request(
                f"{handle.url}/objects/{OBJECT}/100",
                headers={"X-Deadline-Ms": "-5"},
            )
            assert status == 400
            assert "positive" in body["error"]
        finally:
            handle.stop()

    def test_generous_deadline_serves_normally(self, deployment):
        server = PenguinServer(deployment, port=0)
        handle = server.in_background()
        try:
            status, body, _ = request(
                f"{handle.url}/objects/{OBJECT}/100",
                headers={"X-Deadline-Ms": "5000"},
            )
            assert status == 200
            assert body["instance"]["patient_id"] == 100
        finally:
            handle.stop()

    def test_tiny_deadline_is_504(self, deployment):
        server = PenguinServer(deployment, port=0)
        handle = server.in_background()
        try:
            status, body, _ = request(
                f"{handle.url}/objects/{OBJECT}/100",
                headers={"X-Deadline-Ms": "0.001"},
            )
            assert status == 504
            assert "deadline" in body["error"]
            assert server.deadlines_exceeded >= 1
        finally:
            handle.stop()

    def test_server_default_deadline_applies_without_header(self, deployment):
        server = PenguinServer(deployment, port=0, default_deadline_ms=0.001)
        handle = server.in_background()
        try:
            status, body, _ = request(f"{handle.url}/objects/{OBJECT}/100")
            assert status == 504
            # A client header overrides the tight server default.
            status, _, _ = request(
                f"{handle.url}/objects/{OBJECT}/100",
                headers={"X-Deadline-Ms": "5000"},
            )
            assert status == 200
        finally:
            handle.stop()

    def test_expired_write_is_rejected_before_translation(self, deployment):
        server = PenguinServer(deployment, port=0)
        handle = server.in_background()
        try:
            status, body, _ = request(
                f"{handle.url}/objects/{OBJECT}",
                method="POST",
                payload={"instance": fresh_chart(77_001)},
                headers={"X-Deadline-Ms": "0.001"},
            )
            assert status == 504
            assert deployment.get(OBJECT, (77_001,)) is None
        finally:
            handle.stop()

    def test_committing_write_is_never_cancelled(self, deployment):
        """A 504 that fires while the batch window is open reports the
        truth — "may still apply" — and the write indeed lands."""
        server = PenguinServer(deployment, port=0, batch_window=0.4)
        handle = server.in_background()
        try:
            status, body, _ = request(
                f"{handle.url}/objects/{OBJECT}",
                method="POST",
                payload={"instance": fresh_chart(77_002)},
                headers={"X-Deadline-Ms": "60"},
            )
            assert status == 504
            assert "not cancelled" in body["error"]
            deadline = time.time() + 5
            while deployment.get(OBJECT, (77_002,)) is None:
                assert time.time() < deadline, "shielded write never landed"
                time.sleep(0.02)
        finally:
            handle.stop()


class TestAdmissionGate:
    def test_requests_past_the_high_water_mark_are_shed(self, deployment):
        server = PenguinServer(deployment, port=0, max_in_flight=0)
        handle = server.in_background()
        try:
            status, body, headers = request(f"{handle.url}/objects/{OBJECT}/100")
            assert status == 503
            assert "capacity" in body["error"]
            assert headers.get("Retry-After") == "1"
            assert server.requests_shed >= 1
            # Raising the gate immediately restores service: shedding is
            # a per-request admission decision, not a latched state.
            server.max_in_flight = 64
            status, _, _ = request(f"{handle.url}/objects/{OBJECT}/100")
            assert status == 200
        finally:
            handle.stop()

    def test_shed_metric_is_exported(self, deployment):
        server = PenguinServer(deployment, port=0, max_in_flight=0)
        handle = server.in_background()
        try:
            request(f"{handle.url}/objects/{OBJECT}/100")
            server.max_in_flight = 64
            status, text, _ = (None, None, None)
            req = urllib.request.Request(f"{handle.url}/metrics")
            with urllib.request.urlopen(req, timeout=10) as response:
                text = response.read().decode("utf-8")
            assert "serve_shed_total" in text
        finally:
            handle.stop()


class TestGracefulDrain:
    def test_stop_waits_for_in_flight_writes(self, deployment):
        """A write sitting in an open batch window when stop() begins
        still gets its 201 — drain finishes in-flight work and flushes
        the batcher before closing connections."""
        server = PenguinServer(deployment, port=0, batch_window=0.3)
        handle = server.in_background()
        outcome = {}

        def client():
            outcome["result"] = request(
                f"{handle.url}/objects/{OBJECT}",
                method="POST",
                payload={"instance": fresh_chart(77_003)},
            )

        thread = threading.Thread(target=client)
        thread.start()
        time.sleep(0.1)  # let the write enter the batch window
        handle.stop()
        thread.join(timeout=10)
        assert not thread.is_alive()
        status, body, _ = outcome["result"]
        assert status == 201
        assert body["applied"] is True
        assert deployment.get(OBJECT, (77_003,)) is not None
        assert not server.running

    def test_stop_is_idempotent(self, deployment):
        server = PenguinServer(deployment, port=0)
        handle = server.in_background()
        handle.stop()
        handle.stop()  # second stop is a no-op
        assert not server.running


class TestServerHandleStartup:
    def test_wedged_startup_raises_after_timeout(self, deployment):
        server = PenguinServer(deployment, port=0)

        async def hang():
            import asyncio

            await asyncio.sleep(3600)

        server.start = hang  # type: ignore[method-assign]
        with pytest.raises(RuntimeError, match="failed to start within"):
            ServerHandle(server).start(timeout=0.2)

    def test_startup_error_is_reported(self, deployment):
        first = PenguinServer(deployment, port=0)
        handle = first.in_background()
        try:
            # Binding a second server to the same port fails inside the
            # loop thread; start() surfaces the underlying error.
            second = PenguinServer(deployment, port=first.port)
            with pytest.raises(RuntimeError, match="failed to start"):
                ServerHandle(second).start(timeout=5)
        finally:
            handle.stop()
