"""The asyncio HTTP front end: routes, batching, degraded metadata."""

import asyncio
import json
import urllib.error
import urllib.request

import pytest

import repro.obs as obs
from repro.serve.http import MicroBatcher, PenguinServer, parse_key
from repro.shard import ShardedPenguin, sharded_loader
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)

OBJECT = "patient_chart"


def fresh_chart(pid):
    return {
        "patient_id": pid,
        "name": f"HTTP Patient {pid}",
        "birth_year": 1970,
        "ward_name": None,
        "VISIT": [
            {
                "patient_id": pid,
                "visit_no": 1,
                "visit_date": "1991-05-29",
                "physician_id": 9000,
                "reason": "http",
                "DIAGNOSIS": [],
                "PRESCRIPTION": [],
                "LAB_RESULT": [],
                "PHYSICIAN": [],
            }
        ],
    }


def request(url, method="GET", payload=None):
    """(status, parsed JSON body) via urllib; never raises on 4xx/5xx."""
    body = None
    headers = {}
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(
        url, data=body, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            raw = response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        raw = error.read()
        status = error.code
    content = raw.decode("utf-8")
    try:
        return status, json.loads(content)
    except ValueError:
        return status, content


@pytest.fixture(scope="module")
def served():
    """One 4-shard deployment served for the whole module, metrics live."""
    with obs.use():
        graph = hospital_schema()
        sharded = ShardedPenguin(graph, "PATIENT", num_shards=4)
        populate_hospital(
            sharded_loader(sharded), HospitalConfig(patients=10)
        )
        sharded.register_object(patient_chart_object(graph))
        sharded.materialize(OBJECT, "lazy")
        server = PenguinServer(sharded, port=0, batch_window=0.002)
        handle = server.in_background()
        yield sharded, handle.url
        handle.stop()


class TestKeyParsing:
    def test_ints_floats_strings(self):
        assert parse_key("4711") == (4711,)
        assert parse_key("4711,2") == (4711, 2)
        assert parse_key("CS345") == ("CS345",)
        assert parse_key("1.5") == (1.5,)


class TestRoutes:
    def test_health(self, served):
        _, url = served
        status, body = request(f"{url}/health")
        assert status == 200
        assert body["num_shards"] == 4
        assert body["degraded"] == []
        assert set(body["shards"]) == {"0", "1", "2", "3"}

    def test_metrics_exposition(self, served):
        _, url = served
        request(f"{url}/objects/{OBJECT}/100")  # generate a sample
        status, text = request(f"{url}/metrics")
        assert status == 200
        assert "serve_http_requests_total" in text

    def test_objects_index(self, served):
        _, url = served
        status, body = request(f"{url}/objects")
        assert status == 200
        assert body["objects"] == [OBJECT]
        assert "hash(4)" in body["topology"]

    def test_objects_index_surfaces_per_view_risk(self, served):
        _, url = served
        status, body = request(f"{url}/objects")
        assert status == 200
        assert set(body["risk"]) == {OBJECT}
        entry = body["risk"][OBJECT]
        assert entry["level"] in {"safe", "low", "medium", "high", "critical"}
        assert entry["findings"] >= 0

    def test_get_carries_serving_metadata(self, served):
        sharded, url = served
        status, body = request(f"{url}/objects/{OBJECT}/100")
        assert status == 200
        assert body["instance"]["patient_id"] == 100
        meta = body["meta"]
        assert meta["object"] == OBJECT
        assert meta["stale"] is False
        assert meta["shard"] == sharded.router.shard_of((100,))

    def test_get_missing_is_404(self, served):
        _, url = served
        status, body = request(f"{url}/objects/{OBJECT}/99999")
        assert status == 404
        assert "error" in body

    def test_unknown_object_is_404(self, served):
        _, url = served
        status, _ = request(f"{url}/objects/nonesuch/1")
        assert status == 404

    def test_query_merges_shards(self, served):
        sharded, url = served
        status, body = request(f"{url}/objects/{OBJECT}")
        assert status == 200
        assert body["count"] == len(sharded.query(OBJECT))
        keys = [inst["patient_id"] for inst in body["instances"]]
        assert keys == sorted(keys)
        assert body["meta"]["stale"] is False

    def test_filtered_query(self, served):
        _, url = served
        status, body = request(
            f"{url}/objects/{OBJECT}?q=birth_year+%3E+0"
        )
        assert status == 200
        assert body["count"] >= 1

    def test_insert_get_delete_round_trip(self, served):
        sharded, url = served
        status, body = request(
            f"{url}/objects/{OBJECT}",
            method="POST",
            payload={"instance": fresh_chart(71_001)},
        )
        assert status == 201
        assert body["applied"] is True
        assert body["operations"] >= 2  # PATIENT + VISIT

        status, body = request(f"{url}/objects/{OBJECT}/71001")
        assert status == 200
        assert body["instance"]["name"] == "HTTP Patient 71001"

        status, body = request(
            f"{url}/objects/{OBJECT}/71001", method="DELETE"
        )
        assert status == 200
        status, _ = request(f"{url}/objects/{OBJECT}/71001")
        assert status == 404
        assert sharded.get(OBJECT, (71_001,)) is None

    def test_replace_via_put(self, served):
        sharded, url = served
        _, body = request(f"{url}/objects/{OBJECT}/101")
        chart = body["instance"]
        chart["name"] = "Renamed Over HTTP"
        status, body = request(
            f"{url}/objects/{OBJECT}/101",
            method="PUT",
            payload={"instance": chart},
        )
        assert status == 200
        assert sharded.get(OBJECT, (101,)).to_dict()["name"] == (
            "Renamed Over HTTP"
        )

    def test_bad_json_is_400(self, served):
        _, url = served
        req = urllib.request.Request(
            f"{url}/objects/{OBJECT}",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400

    def test_duplicate_insert_is_400(self, served):
        _, url = served
        status, body = request(
            f"{url}/objects/{OBJECT}",
            method="POST",
            payload={"instance": fresh_chart(100)},  # resident pid
        )
        assert status == 400
        assert "error" in body

    def test_wrong_method_is_405(self, served):
        _, url = served
        status, _ = request(
            f"{url}/objects/{OBJECT}", method="DELETE"
        )
        assert status == 405

    def test_unknown_route_is_404(self, served):
        _, url = served
        status, _ = request(f"{url}/nonesuch")
        assert status == 404


class TestDegradedServing:
    def test_stale_reads_carry_shard_and_staleness(self):
        """A degraded shard serves cached instances marked stale; the
        HTTP surface exposes stale/staleness/shard uniformly."""
        graph = hospital_schema()
        sharded = ShardedPenguin(graph, "PATIENT", num_shards=2)
        populate_hospital(
            sharded_loader(sharded), HospitalConfig(patients=6)
        )
        sharded.register_object(patient_chart_object(graph))
        sharded.materialize(OBJECT, "lazy")
        sharded.query(OBJECT)  # warm every shard's cache

        pid = 100
        owner = sharded.router.shard_of((pid,))
        breaker = sharded.shard(owner).serving.breaker
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        assert breaker.degraded

        server = PenguinServer(sharded, port=0)
        handle = server.in_background()
        try:
            status, body = request(
                f"{handle.url}/objects/{OBJECT}/{pid}"
            )
            assert status == 200
            assert body["meta"]["stale"] is True
            assert body["meta"]["shard"] == owner
            assert body["meta"]["staleness"] is not None

            # Writes to the degraded shard are refused with 503.
            status, body = request(
                f"{handle.url}/objects/{OBJECT}/{pid}",
                method="DELETE",
            )
            assert status == 503

            # The health endpoint names the degraded shard.
            _, health = request(f"{handle.url}/health")
            assert health["degraded"] == [owner]
        finally:
            handle.stop()


class TestMicroBatcher:
    class FakeSession:
        def __init__(self, fail_on=None):
            self.calls = []
            self.fail_on = fail_on or set()

        def apply_plan_batch(self, name, requests):
            self.calls.append(list(requests))
            failing = [r for r in requests if r in self.fail_on]
            if failing:
                raise ValueError(f"bad request {failing[0]}")

            class Plan:
                operations = list(requests)

            return Plan()

    def run(self, coro):
        loop = asyncio.new_event_loop()
        try:
            return loop.run_until_complete(coro)
        finally:
            loop.close()

    def test_concurrent_submissions_fold_into_one_batch(self):
        session = self.FakeSession()

        async def scenario():
            loop = asyncio.get_event_loop()
            batcher = MicroBatcher(session, loop, window=0.01)
            futures = [
                batcher.submit(OBJECT, f"req{i}") for i in range(5)
            ]
            results = await asyncio.gather(*futures)
            return batcher, results

        batcher, results = self.run(scenario())
        assert len(session.calls) == 1  # one flush for the window
        assert len(session.calls[0]) == 5
        assert all(batched == 5 for _, batched in results)
        assert batcher.batches_flushed == 1
        assert batcher.requests_batched == 5

    def test_max_batch_flushes_early(self):
        session = self.FakeSession()

        async def scenario():
            loop = asyncio.get_event_loop()
            batcher = MicroBatcher(
                session, loop, window=5.0, max_batch=3
            )
            futures = [
                batcher.submit(OBJECT, f"req{i}") for i in range(3)
            ]
            await asyncio.gather(*futures)

        self.run(scenario())  # window never fires; max_batch does
        assert len(session.calls) == 1

    def test_objects_batch_independently(self):
        session = self.FakeSession()

        async def scenario():
            loop = asyncio.get_event_loop()
            batcher = MicroBatcher(session, loop, window=0.01)
            await asyncio.gather(
                batcher.submit("alpha", "a1"),
                batcher.submit("beta", "b1"),
            )

        self.run(scenario())
        assert sorted(map(len, session.calls)) == [1, 1]

    def test_one_bad_request_fails_alone(self):
        session = self.FakeSession(fail_on={"bad"})

        async def scenario():
            loop = asyncio.get_event_loop()
            batcher = MicroBatcher(session, loop, window=0.01)
            futures = [
                batcher.submit(OBJECT, req)
                for req in ("good1", "bad", "good2")
            ]
            return await asyncio.gather(*futures, return_exceptions=True)

        results = self.run(scenario())
        assert isinstance(results[1], ValueError)
        assert not isinstance(results[0], Exception)
        assert not isinstance(results[2], Exception)
        # One failed batch attempt + three individual retries.
        assert len(session.calls) == 4


class TestKeepAlive:
    def test_many_requests_on_one_connection(self, served):
        """The load generator's access pattern: sequential keep-alive
        requests on a single socket."""
        sharded, url = served
        host, port = url.rsplit("//", 1)[1].split(":")

        async def scenario():
            from repro.serve.load import http_request

            reader, writer = await asyncio.open_connection(
                host, int(port)
            )
            try:
                statuses = []
                for _ in range(5):
                    status, _ = await http_request(
                        reader, writer, "GET", f"/objects/{OBJECT}/100"
                    )
                    statuses.append(status)
                return statuses
            finally:
                writer.close()

        loop = asyncio.new_event_loop()
        try:
            statuses = loop.run_until_complete(scenario())
        finally:
            loop.close()
        assert statuses == [200] * 5


class TestUrlUnquote:
    """The strict percent decoder: RFC-conformant input round-trips,
    malformed escapes surface as 400, never 500."""

    @pytest.mark.parametrize(
        ("encoded", "decoded"),
        [
            ("plain", "plain"),
            ("a+b", "a b"),
            ("birth_year+%3E+0", "birth_year > 0"),
            ("%41%42c", "ABc"),
            ("100%25", "100%"),
            ("caf%C3%A9", "café"),          # two-byte UTF-8
            ("%E2%82%AC1", "€1"),           # three-byte UTF-8
            ("%F0%9F%90%A7", "\U0001f427"),      # four-byte (a penguin)
            ("", ""),
        ],
    )
    def test_valid_input_decodes(self, encoded, decoded):
        from repro.serve.http import _url_unquote

        assert _url_unquote(encoded) == decoded

    @pytest.mark.parametrize(
        "encoded",
        [
            "%",        # truncated: no digits
            "%4",       # truncated: one digit
            "abc%",     # truncated at end of string
            "%zz",      # not hex
            "%4g",      # second digit not hex
            "%+1",      # int(x, 16) would accept "+1"; we must not
            "% 1",      # likewise " 1"
            "%-1",
            "%E9",      # lone latin-1 byte: not valid UTF-8
            "%C3%28",   # malformed two-byte sequence
            "%F0%9F",   # truncated four-byte sequence
        ],
    )
    def test_malformed_input_raises_400(self, encoded):
        from repro.serve.http import _HttpError, _url_unquote

        with pytest.raises(_HttpError) as excinfo:
            _url_unquote(encoded)
        assert excinfo.value.status == 400

    def test_malformed_query_is_a_400_response(self, served):
        _, url = served
        status, body = request(f"{url}/objects/{OBJECT}?q=%4")
        assert status == 400
        assert "error" in body

    def test_invalid_utf8_query_is_a_400_response(self, served):
        _, url = served
        status, _ = request(f"{url}/objects/{OBJECT}?q=%E9")
        assert status == 400

    def test_plus_and_escapes_still_filter(self, served):
        _, url = served
        status, body = request(
            f"{url}/objects/{OBJECT}?q=birth_year+%3E+0"
        )
        assert status == 200
        assert len(body) > 0


class TestLoadGenerator:
    """`run_load` drives the served stack and reports honestly."""

    def test_zipfian_run_reports_clean(self, served):
        from repro.serve.load import LoadReport, run_load

        _, url = served
        host, port = url.rsplit("/", 1)[-1].split(":")
        report = asyncio.run(
            run_load(
                host,
                int(port),
                ops=80,
                workers=4,
                population=10,
                base_key=100,
                insert_base=80_000,
                seed=11,
            )
        )
        assert report.ops == 80
        assert report.errors == 0
        assert report.throughput > 0
        # The seeded mix contains every op kind at this size.
        kinds = report.kinds()
        assert kinds.get("read", 0) > 0
        summary = report.as_dict()
        assert summary["ops"] == 80
        assert summary["errors_5xx"] == 0
        assert summary["latency_ms"]["iterations"] == 80
        assert "p95" in summary["latency_ms_write"]
        assert "ops/s" in report.describe()
        # Aggregate edge cases priced in the same report object.
        assert LoadReport.percentile([], 0.95) == 0.0
        assert report.summary("no-such-kind") == {"iterations": 0}
