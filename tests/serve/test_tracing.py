"""Trace propagation through the HTTP front end and across the
cluster: X-Request-Id echo, traceparent join, metrics formats, SLO
surface, end-to-end trace assembly, and the failover flight bundle."""

import asyncio
import json
import urllib.error
import urllib.request

import pytest

import repro.obs as obs
from repro.obs.cluster import FlightRecorder, TraceAssembler
from repro.obs.context import TraceContext, activate, parse_traceparent
from repro.replicate import ReplicationConfig
from repro.serve.http import MicroBatcher, PenguinServer
from repro.shard import ShardedPenguin, sharded_loader
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)
from tests.conftest import wait_until

OBJECT = "patient_chart"


def fresh_chart(pid, name="Traced Patient"):
    return {
        "patient_id": pid,
        "name": name,
        "birth_year": 1970,
        "ward_name": None,
        "VISIT": [
            {
                "patient_id": pid,
                "visit_no": 1,
                "visit_date": "1991-05-29",
                "physician_id": 9000,
                "reason": "tracing",
                "DIAGNOSIS": [],
                "PRESCRIPTION": [],
                "LAB_RESULT": [],
                "PHYSICIAN": [],
            }
        ],
    }


def pid_on_shard(sharded, shard_id, start=90_000):
    pid = start
    while sharded.router.shard_of((pid,)) != shard_id:
        pid += 1
    return pid


def request(url, method="GET", payload=None, headers=None):
    """(status, parsed body, response headers); never raises on 4xx/5xx."""
    body = None
    send = dict(headers or {})
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
        send["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=body, method=method, headers=send)
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            raw = response.read()
            status = response.status
            got = dict(response.headers)
    except urllib.error.HTTPError as error:
        raw = error.read()
        status = error.code
        got = dict(error.headers)
    content = raw.decode("utf-8")
    try:
        parsed = json.loads(content)
    except ValueError:
        parsed = content
    return status, parsed, {k.lower(): v for k, v in got.items()}


@pytest.fixture(scope="module")
def cluster():
    """A replicated 2-shard deployment served for the whole module."""
    with obs.use() as hub:
        graph = hospital_schema()
        sharded = ShardedPenguin(
            graph,
            "PATIENT",
            num_shards=2,
            replication=ReplicationConfig(replicas=2, apply_inline=True),
        )
        populate_hospital(sharded_loader(sharded), HospitalConfig(patients=6))
        sharded.register_object(patient_chart_object(graph))
        sharded.materialize(OBJECT, "lazy")
        server = PenguinServer(sharded, port=0, batch_window=0.002)
        handle = server.in_background()
        yield hub, sharded, handle.url
        handle.stop()
        sharded.close()


class TestRequestIdEcho:
    def test_client_id_echoed_on_200(self, cluster):
        _, _, url = cluster
        status, _, headers = request(
            f"{url}/health", headers={"X-Request-Id": "req-mine"}
        )
        assert status == 200
        assert headers["x-request-id"] == "req-mine"

    def test_generated_when_absent(self, cluster):
        _, _, url = cluster
        _, _, headers = request(f"{url}/health")
        assert headers["x-request-id"].startswith("req-")

    def test_echoed_on_404(self, cluster):
        _, _, url = cluster
        status, _, headers = request(
            f"{url}/objects/no_such_object/1",
            headers={"X-Request-Id": "req-404"},
        )
        assert status == 404
        assert headers["x-request-id"] == "req-404"

    def test_echoed_on_400(self, cluster):
        _, _, url = cluster
        status, body, headers = request(
            f"{url}/health",
            headers={"X-Request-Id": "req-400", "X-Deadline-Ms": "abc"},
        )
        assert status == 400
        assert "must be a number" in body["error"]
        assert headers["x-request-id"] == "req-400"

    def test_echoed_on_504_deadline(self, cluster):
        _, sharded, url = cluster
        pid = pid_on_shard(sharded, 0, start=95_000)
        status, body, headers = request(
            f"{url}/objects/{OBJECT}",
            method="POST",
            payload={"instance": fresh_chart(pid)},
            headers={"X-Request-Id": "req-504", "X-Deadline-Ms": "0.001"},
        )
        assert status == 504
        assert headers["x-request-id"] == "req-504"
        assert "deadline exceeded" in body["error"]


class TestTraceparent:
    def test_response_joins_client_trace(self, cluster):
        _, _, url = cluster
        parent = TraceContext("ab" * 16, "cd" * 8)
        _, _, headers = request(
            f"{url}/health",
            headers={"traceparent": f"00-{parent.trace_id}-{parent.span_id}-01"},
        )
        emitted = parse_traceparent(headers["traceparent"])
        assert emitted.trace_id == parent.trace_id
        # the server's own root span, not the client's, is the new parent
        assert emitted.span_id != parent.span_id

    def test_fresh_trace_when_absent(self, cluster):
        _, _, url = cluster
        _, _, first = request(f"{url}/health")
        _, _, second = request(f"{url}/health")
        a = parse_traceparent(first["traceparent"])
        b = parse_traceparent(second["traceparent"])
        assert a.trace_id != b.trace_id


class TestMetricsFormats:
    def test_json_format_and_content_type(self, cluster):
        _, _, url = cluster
        status, body, headers = request(f"{url}/metrics?format=json")
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        assert isinstance(body, dict)
        assert "counters" in body

    def test_component_filter(self, cluster):
        _, sharded, url = cluster
        # touch a populated key on each shard so both components exist
        for shard_id in (0, 1):
            pid = next(
                p for p in range(100, 106)
                if sharded.router.shard_of((p,)) == shard_id
            )
            request(f"{url}/objects/{OBJECT}/{pid}")
        status, text, headers = request(f"{url}/metrics?component=shard0")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert 'component="shard0"' in text
        assert 'component="shard1"' not in text

    def test_cluster_render_includes_replicas(self, cluster):
        _, sharded, url = cluster
        # a write must reach shard 0 before its replicas have metrics
        pid = pid_on_shard(sharded, 0, start=94_000)
        status, _, _ = request(
            f"{url}/objects/{OBJECT}",
            method="POST",
            payload={"instance": fresh_chart(pid)},
        )
        assert status == 201
        _, text, _ = request(f"{url}/metrics")
        assert 'component="shard0/r1"' in text

    def test_health_carries_slo(self, cluster):
        _, _, url = cluster
        status, body, _ = request(f"{url}/health")
        assert status == 200
        assert set(body["slo"]) == {"write_latency", "availability"}
        assert body["slo"]["availability"]["objective"] == 0.999


class TestBatchFoldContinuity:
    def test_folded_writes_share_one_batch_span(self):
        """Two submits folded into one micro-batch: the serve.batch
        span carries the first caller's trace and names the folded
        ones, so neither write goes dark."""

        class FakeSession:
            def apply_plan_batch(self, name, requests):
                with obs.tracer().span("translate", object=name):
                    return {"applied": len(requests)}

        async def scenario(hub):
            batcher = MicroBatcher(
                FakeSession(), asyncio.get_running_loop(), window=0.01
            )
            contexts = [TraceContext.new("req-f1"), TraceContext.new("req-f2")]

            async def submit(ctx):
                from repro.obs.context import attach

                with attach(ctx):
                    return await batcher.submit(OBJECT, object())

            await asyncio.gather(*(submit(c) for c in contexts))
            return contexts

        with obs.use() as hub:
            contexts = asyncio.run(scenario(hub))
            roots = [r for r in hub.tracer.take() if r.name == "serve.batch"]
        (batch,) = roots  # one fold, not two batches
        assert batch.trace_id == contexts[0].trace_id
        assert batch.attributes["requests"] == 2
        assert sorted(c.trace_id for c in contexts) == batch.attributes[
            "folded_traces"
        ]
        # the translator span nested under the batch — same fragment,
        # same trace: fold -> translate continuity
        assert [c.name for c in batch.children] == ["translate"]

    def test_http_write_reaches_translator_in_one_trace(self, cluster):
        hub, sharded, url = cluster
        pid = pid_on_shard(sharded, 0, start=96_000)
        status, _, headers = request(
            f"{url}/objects/{OBJECT}",
            method="POST",
            payload={"instance": fresh_chart(pid)},
            headers={"X-Request-Id": "req-continuity"},
        )
        assert status == 201
        assembler = TraceAssembler(hub.tracer)
        assembled = assembler.assemble(request_id="req-continuity")
        assert assembled is not None
        names = set(assembled.span_names())
        assert "http.request" in names
        assert "serve.batch" in names
        # every fragment in the assembly shares the response trace id
        trace_id = parse_traceparent(headers["traceparent"]).trace_id
        assert assembled.trace_id == trace_id


REQUIRED_LEGS = (
    ("http.request",),
    ("serve.batch",),
    ("translate", "explain"),
    ("shard.two_phase",),
    ("2pc.prepare",),
    ("2pc.apply",),
    ("replicate.ship",),
    ("replica.apply",),
)


class TestEndToEndAssembly:
    def test_rehoming_write_yields_one_complete_trace(self, cluster):
        """The acceptance path: one HTTP write whose key re-homes the
        chart across shards produces ONE assembled trace covering the
        front end, the micro-batch, both 2PC legs, the log ship, and
        the replica appliers — all under a single trace id."""
        hub, sharded, url = cluster
        source = pid_on_shard(sharded, 0, start=97_000)
        target = pid_on_shard(sharded, 1, start=98_000)
        status, _, _ = request(
            f"{url}/objects/{OBJECT}",
            method="POST",
            payload={"instance": fresh_chart(source)},
        )
        assert status == 201
        status, _, _ = request(
            f"{url}/objects/{OBJECT}/{source}",
            method="PUT",
            payload={"instance": fresh_chart(target, "Re-homed Patient")},
            headers={"X-Request-Id": "req-rehome"},
        )
        assert status == 200

        assembler = TraceAssembler(hub.tracer)

        def assembled_with_replicas():
            assembled = assembler.assemble(request_id="req-rehome")
            if assembled is None:
                return None
            if len(assembled.find_all("replica.apply")) < 2:
                return None
            return assembled

        wait_until(lambda: assembled_with_replicas() is not None)
        assembled = assembled_with_replicas()
        names = set(assembled.span_names())
        for aliases in REQUIRED_LEGS:
            assert any(name in names for name in aliases), aliases
        # both shards took a 2PC apply leg
        shards = sorted(
            str(span.attributes.get("shard"))
            for span in assembled.find_all("2pc.apply")
        )
        assert shards == ["0", "1"]
        # one trace id across every fragment — this is the whole point
        assert len({f.trace_id for f in assembled.fragments}) == 1
        # the write's audit records are reachable from the trace
        assert assembled.audit_asns()


class TestFailoverFlightBundle:
    def test_injected_failover_dumps_bundle(self, tmp_path):
        with obs.use():
            graph = hospital_schema()
            sharded = ShardedPenguin(
                graph,
                "PATIENT",
                num_shards=2,
                replication=ReplicationConfig(
                    replicas=2, miss_threshold=2, apply_inline=True
                ),
            )
            populate_hospital(
                sharded_loader(sharded), HospitalConfig(patients=4)
            )
            sharded.register_object(patient_chart_object(graph))
            recorder = FlightRecorder(str(tmp_path))
            sharded.attach_flight_recorder(recorder)
            sharded.insert(OBJECT, fresh_chart(pid_on_shard(sharded, 0)))
            replica_set = sharded.shard(0).replica_set
            replica_set.primary.kill()
            for _ in range(replica_set.config.miss_threshold + 1):
                replica_set.probe()
            path = recorder.latest()
            assert path is not None
            assert "failover" in path
            text = FlightRecorder.inspect(path)
            assert "anomaly: failover" in text
            assert "promoted" in text
            sharded.close()
