"""ReadWriteLock semantics and the ConcurrentPenguin stress test."""

import threading
import time

import pytest

from repro.errors import UpdateError
from repro.penguin import Penguin
from repro.serve import ConcurrentPenguin, ReadWriteLock
from repro.workloads.figures import course_info_object
from repro.workloads.university import populate_university, university_schema
from tests.conftest import wait_until

COURSE_KEY = ("M100",)


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        # the barrier only releases if all three held the read lock at once
        assert all(not thread.is_alive() for thread in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        observed = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                observed.append("read")

        thread = threading.Thread(target=reader)
        thread.start()
        wait_until(lambda: lock.waiting_readers == 1)
        assert observed == []
        lock.release_write()
        thread.join(timeout=5)
        assert observed == ["read"]

    def test_writer_excludes_writer(self):
        lock = ReadWriteLock()
        order = []
        lock.acquire_write()

        def writer():
            with lock.write_locked():
                order.append("second")

        thread = threading.Thread(target=writer)
        thread.start()
        wait_until(lambda: lock.waiting_writers == 1)
        order.append("first")
        lock.release_write()
        thread.join(timeout=5)
        assert order == ["first", "second"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()

        def writer():
            with lock.write_locked():
                pass

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        wait_until(lambda: lock.waiting_writers == 1)
        late = []

        def reader():
            with lock.read_locked():
                late.append("read")

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        wait_until(lambda: lock.waiting_readers == 1)
        # writer preference: the late reader queues behind the writer
        assert late == []
        lock.release_read()
        writer_thread.join(timeout=5)
        reader_thread.join(timeout=5)
        assert late == ["read"]

    def test_write_reentrant(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.write_locked():
                assert lock.write_held
            assert lock.write_held
        assert not lock.write_held

    def test_writer_may_read(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.read_locked():
                pass
            assert lock.write_held

    def test_release_write_requires_owner(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        error = []

        def rogue():
            try:
                lock.release_write()
            except RuntimeError as exc:
                error.append(exc)

        thread = threading.Thread(target=rogue)
        thread.start()
        thread.join(timeout=5)
        assert error
        lock.release_write()


def build_server():
    graph = university_schema()
    session = Penguin(graph)
    populate_university(session.engine)
    session.register_object(course_info_object(graph))
    return ConcurrentPenguin(session)


class TestConcurrentPenguin:
    def test_wraps_session_or_schema(self):
        server = build_server()
        assert isinstance(server.penguin, Penguin)
        schema_server = ConcurrentPenguin(university_schema())
        assert isinstance(schema_server.penguin, Penguin)
        with pytest.raises(TypeError):
            ConcurrentPenguin(server.penguin, install=False)

    def test_reads_and_writes_work(self):
        server = build_server()
        assert server.get("course_info", COURSE_KEY) is not None
        instances = server.query("course_info")
        assert instances
        updated = server.get("course_info", COURSE_KEY).to_dict()
        updated["title"] = "Renamed"
        server.replace("course_info", COURSE_KEY, updated)
        assert server.get("course_info", COURSE_KEY).root.values["title"] == "Renamed"

    @pytest.mark.slow
    def test_stress_no_torn_instances(self):
        """ISSUE acceptance: >= 4 readers against one writer, and every
        read observes title/units moving in lockstep (never a torn mix
        of two versions)."""
        server = build_server()
        server.materialize("course_info")
        rounds = 60
        stop = threading.Event()
        torn = []
        seen = set()

        def reader():
            while not stop.is_set():
                instance = server.get("course_info", COURSE_KEY)
                if instance is None:
                    torn.append("missing")
                    continue
                title = instance.root.values["title"]
                units = instance.root.values["units"]
                if title.startswith("v"):
                    if int(title[1:]) != units:
                        torn.append((title, units))
                    seen.add(units)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        template = server.get("course_info", COURSE_KEY).to_dict()
        try:
            for n in range(rounds):
                data = dict(template)
                data["title"] = f"v{n}"
                data["units"] = n
                server.replace("course_info", COURSE_KEY, data)
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=10)

        assert not torn, f"torn reads observed: {torn[:5]}"
        assert all(not thread.is_alive() for thread in readers)
        final = server.get("course_info", COURSE_KEY)
        assert final.root.values["title"] == f"v{rounds - 1}"
        assert final.root.values["units"] == rounds - 1
        assert seen, "readers never overlapped the writer"
        assert server.is_consistent()

    def test_bulk_methods_exposed(self):
        server = build_server()
        batch = [
            {
                "course_id": f"SRV{i:03d}",
                "title": f"Served {i}",
                "units": 3,
                "level": "graduate",
                "dept_name": "Computer Science",
                "DEPARTMENT": [],
                "CURRICULUM": [],
                "GRADES": [],
            }
            for i in range(5)
        ]
        plan = server.insert_many("course_info", batch)
        assert plan.count("insert") == 5
        server.delete_many(
            "course_info", [(f"SRV{i:03d}",) for i in range(5)]
        )
        assert server.get("course_info", ("SRV000",)) is None
        assert server.is_consistent()

    def test_sync_and_cache_stats(self):
        server = build_server()
        server.materialize("course_info")
        server.get("course_info", COURSE_KEY)
        server.sync()
        stats = server.cache_stats()["course_info"]
        assert stats["hits"] + stats["misses"] >= 1

    def test_failed_write_releases_lock(self):
        server = build_server()
        with pytest.raises(UpdateError):
            server.delete("course_info", ("NOPE",))
        # the write lock must not leak: reads still proceed
        assert server.get("course_info", COURSE_KEY) is not None
