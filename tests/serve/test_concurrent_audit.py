"""Audit recording under concurrent serving and degraded mode."""

import threading

import pytest

from repro.errors import DegradedServiceError, TransientEngineError
from repro.obs.audit import COMMITTED, DEGRADED_REJECTED, MemoryAuditLog
from repro.penguin import Penguin
from repro.relational.faults import FaultInjectingEngine, FaultPlan
from repro.relational.memory_engine import MemoryEngine
from repro.serve import CircuitBreaker, ConcurrentPenguin
from repro.workloads.figures import course_info_object
from repro.workloads.university import populate_university, university_schema
from tests.conftest import wait_until

pytestmark = pytest.mark.audit


def new_course(course_id):
    return {
        "course_id": course_id,
        "title": f"Course {course_id}",
        "units": 3,
        "level": "graduate",
        "dept_name": "Computer Science",
        "DEPARTMENT": [],
        "CURRICULUM": [],
        "GRADES": [],
    }


def audited_serving(fault_plan=None, **breaker_kwargs):
    graph = university_schema()
    base = MemoryEngine()
    graph.install(base)
    populate_university(base)
    engine = base
    if fault_plan is not None:
        engine = FaultInjectingEngine(base, fault_plan)
    session = Penguin(
        graph, engine=engine, install=False, audit=MemoryAuditLog()
    )
    session.register_object(course_info_object(graph))
    breaker = CircuitBreaker(**breaker_kwargs) if breaker_kwargs else None
    return ConcurrentPenguin(session, breaker=breaker)


def test_degraded_refusals_are_audited():
    serving = audited_serving(
        fault_plan=FaultPlan().transient_burst(3, ("mutation",)),
        failure_threshold=3,
        probe_interval=100,
    )
    for i in range(3):
        with pytest.raises(TransientEngineError):
            serving.insert("course_info", new_course(f"AU{i:03d}"))
    assert serving.breaker.degraded
    log = serving.penguin.audit
    audited_before = len(log)
    with pytest.raises(DegradedServiceError):
        serving.delete("course_info", ("M100",))
    assert len(log) == audited_before + 1
    refusal = log.tail(1)[0]
    assert refusal.outcome == DEGRADED_REJECTED
    assert refusal.op == "delete"
    assert refusal.object_name == "course_info"
    assert "DegradedServiceError" in refusal.error
    # The refused update never ran, so replay must not include it.
    report = serving.penguin.replay_audit()
    assert report.ok, report.summary()
    assert (refusal.asn, DEGRADED_REJECTED) in report.skipped


def test_unaudited_session_refuses_without_recording():
    graph = university_schema()
    base = MemoryEngine()
    graph.install(base)
    populate_university(base)
    session = Penguin(graph, engine=base, install=False)
    session.register_object(course_info_object(graph))
    serving = ConcurrentPenguin(
        session, breaker=CircuitBreaker(failure_threshold=1, probe_interval=100)
    )
    serving.breaker.record_failure()
    with pytest.raises(DegradedServiceError):
        serving.insert("course_info", new_course("AU999"))  # must not blow up


def test_concurrent_writers_get_unique_contiguous_asns():
    serving = audited_serving()
    log = serving.penguin.audit
    writers = 8
    started = threading.Barrier(writers)
    errors = []

    def write(index):
        started.wait()
        try:
            serving.insert("course_info", new_course(f"AU{index:03d}"))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [
        threading.Thread(target=write, args=(i,)) for i in range(writers)
    ]
    for thread in threads:
        thread.start()
    # The write lock serializes the updates; the log fills to exactly
    # one record per writer with no duplicated or skipped ASN.
    wait_until(lambda: len(log) == writers)
    for thread in threads:
        thread.join()
    assert not errors
    assert [record.asn for record in log.records()] == list(
        range(1, writers + 1)
    )
    assert all(r.outcome == COMMITTED for r in log.records())
    report = serving.penguin.replay_audit()
    assert report.ok, report.summary()


def test_reads_never_append_to_the_log():
    serving = audited_serving()
    log = serving.penguin.audit
    serving.insert("course_info", new_course("AU001"))
    recorded = len(log)
    serving.query("course_info")
    serving.get("course_info", ("AU001",))
    serving.check_integrity()
    assert len(log) == recorded
