"""Per-shard replication: log shipping, quorum, failover, catch-up."""

import pytest

import repro.obs as obs
from repro.errors import (
    DegradedServiceError,
    FailoverInProgressError,
    FencedWriteError,
    PrimaryDownError,
    ReplicationError,
    ReplicationQuorumError,
)
from repro.obs.history import divergence
from repro.replicate import ReplicationConfig, ShippingLink
from repro.shard import ShardedPenguin, sharded_loader
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)

OBJECT = "patient_chart"


def fresh_chart(pid, name="Replicated Patient"):
    return {
        "patient_id": pid,
        "name": name,
        "birth_year": 1970,
        "ward_name": None,
        "VISIT": [
            {
                "patient_id": pid,
                "visit_no": 1,
                "visit_date": "1991-05-29",
                "physician_id": 9000,
                "reason": "replication",
                "DIAGNOSIS": [],
                "PRESCRIPTION": [],
                "LAB_RESULT": [],
                "PHYSICIAN": [],
            }
        ],
    }


def build(replicas=2, quorum=1, miss_threshold=3, apply_inline=True,
          shards=2, patients=6):
    graph = hospital_schema()
    sharded = ShardedPenguin(
        graph,
        "PATIENT",
        num_shards=shards,
        replication=ReplicationConfig(
            replicas=replicas,
            quorum=quorum,
            miss_threshold=miss_threshold,
            apply_inline=apply_inline,
        ),
    )
    populate_hospital(sharded_loader(sharded), HospitalConfig(patients=patients))
    sharded.register_object(patient_chart_object(graph))
    return sharded


def pid_on_shard(sharded, shard_id, start=90_000):
    pid = start
    while sharded.router.shard_of((pid,)) != shard_id:
        pid += 1
    return pid


def chart_on_shard(sharded, shard_id, name="Replicated Patient", start=90_000):
    return fresh_chart(pid_on_shard(sharded, shard_id, start), name)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicationConfig(replicas=0)
        with pytest.raises(ValueError):
            ReplicationConfig(replicas=1, quorum=2)
        with pytest.raises(ValueError):
            ReplicationConfig(replicas=1, quorum=-1)
        with pytest.raises(ValueError):
            ReplicationConfig(miss_threshold=0)

    def test_replication_off_by_default(self):
        graph = hospital_schema()
        sharded = ShardedPenguin(graph, "PATIENT", num_shards=2)
        assert sharded.replication is None
        assert all(shard.replica_set is None for shard in sharded.shards)


class TestShipping:
    def test_writes_replicate_byte_identically(self):
        sharded = build()
        for i in range(6):
            sharded.insert(OBJECT, fresh_chart(90_000 + i, f"chart {i}"))
        for shard in sharded.shards:
            replica_set = shard.replica_set
            for replica in replica_set.replicas:
                assert divergence(shard.engine, replica.engine) == []
                assert replica_set.lag(replica) == 0
        sharded.close()

    def test_seed_load_reaches_replicas(self):
        sharded = build()
        for shard in sharded.shards:
            for replica in shard.replica_set.replicas:
                assert divergence(shard.engine, replica.engine) == []
        sharded.close()

    def test_background_applier_converges(self):
        sharded = build(apply_inline=False)
        for i in range(4):
            sharded.insert(OBJECT, fresh_chart(90_100 + i))
        for shard in sharded.shards:
            shard.replica_set.catch_up()
            for replica in shard.replica_set.replicas:
                assert divergence(shard.engine, replica.engine) == []
        sharded.close()

    def test_primary_reads_have_no_source_marker(self):
        sharded = build()
        pid = pid_on_shard(sharded, 0, start=100)
        served = sharded.get_served(OBJECT, (pid,))
        assert served.source is None
        assert "source" not in served.meta()
        sharded.close()

    def test_duplicate_ship_is_idempotent_and_gap_rejected(self):
        sharded = build()
        sharded.insert(OBJECT, chart_on_shard(sharded, 0))
        replica_set = sharded.shard(0).replica_set
        replica = replica_set.replicas[0]
        record = replica_set._stream[-1]
        held = replica.received_count
        # Redelivery of an old position: accepted silently, nothing changes.
        replica.receive(replica_set.epoch, held, record)
        assert replica.received_count == held
        # A position past the next expected one is a stream gap.
        with pytest.raises(ReplicationError):
            replica.receive(replica_set.epoch, held + 2, record)
        sharded.close()


class TestQuorum:
    def test_unreachable_quorum_fails_fast(self):
        sharded = build()
        replica_set = sharded.shard(0).replica_set
        for replica in replica_set.replicas:
            replica_set.link(replica.name).wedge()
        audited = len(sharded.shard(0).penguin.audit.records())
        with pytest.raises(ReplicationQuorumError):
            sharded.insert(OBJECT, chart_on_shard(sharded, 0))
        # Fail-fast means the primary never even applied or audited it.
        assert len(sharded.shard(0).penguin.audit.records()) == audited
        sharded.close()

    def test_mid_write_quorum_loss_reverts_the_primary(self):
        sharded = build()
        replica_set = sharded.shard(0).replica_set

        def wedge(stage, shard_id):
            if stage == "post_apply":
                for replica in replica_set.replicas:
                    replica_set.link(replica.name).wedge()

        replica_set.failpoint = wedge
        chart = chart_on_shard(sharded, 0)
        key = (chart["patient_id"],)
        with pytest.raises(ReplicationQuorumError):
            sharded.insert(OBJECT, chart)
        replica_set.failpoint = None
        assert sharded.get(OBJECT, key) is None
        assert sharded.shard(0).penguin.audit.records()[-1].outcome == (
            "rolled_back"
        )
        # Healing the links restores the write path, replicas converge.
        for replica in replica_set.replicas:
            replica_set.link(replica.name).heal()
        sharded.insert(OBJECT, chart)
        assert sharded.get(OBJECT, key) is not None
        for replica in replica_set.replicas:
            assert divergence(sharded.shard(0).engine, replica.engine) == []
        sharded.close()

    def test_quorum_zero_ships_best_effort(self):
        sharded = build(replicas=1, quorum=0)
        replica_set = sharded.shard(0).replica_set
        replica_set.link(replica_set.replicas[0].name).wedge()
        chart = chart_on_shard(sharded, 0)
        sharded.insert(OBJECT, chart)  # acked without any replica
        assert sharded.get(OBJECT, (chart["patient_id"],)) is not None
        replica_set.link(replica_set.replicas[0].name).heal()
        replica_set.catch_up()
        assert divergence(
            sharded.shard(0).engine, replica_set.replicas[0].engine
        ) == []
        sharded.close()


class TestFailover:
    def test_promotion_preserves_acked_writes_and_repoints_routing(self):
        with obs.use():
            sharded = build()
            shard = sharded.shard(0)
            replica_set = shard.replica_set
            acked = []
            for i in range(4):
                chart = chart_on_shard(sharded, 0, f"pre-kill {i}", 91_000 + i * 10)
                sharded.insert(OBJECT, chart)
                acked.append((chart["patient_id"], f"pre-kill {i}"))
            old_serving = shard.serving
            replica_set.primary.kill()
            # Writes miss until the detector trips, then fail over inline.
            post = chart_on_shard(sharded, 0, "post-kill", 92_000)
            for _ in range(replica_set.config.miss_threshold):
                try:
                    sharded.insert(OBJECT, post)
                    break
                except PrimaryDownError:
                    continue
            assert replica_set.failovers == 1
            assert replica_set.epoch == 2
            assert shard.serving is not old_serving
            assert shard.serving is replica_set.primary.serving
            for pid, name in acked + [(post["patient_id"], "post-kill")]:
                assert sharded.get(OBJECT, (pid,)).to_dict()["name"] == name
            assert sharded.shard(0).penguin.replay_audit().ok
            assert sharded.check_integrity() == []
            health = sharded.health()
            assert health["replication"]["0"]["epoch"] == 2
            sharded.close()

    def test_promotion_drains_the_inbox_first(self):
        sharded = build(apply_inline=False)
        replica_set = sharded.shard(0).replica_set
        charts = [
            chart_on_shard(sharded, 0, f"inbox {i}", 93_000 + i * 10)
            for i in range(3)
        ]
        for chart in charts:
            sharded.insert(OBJECT, chart)
        replica_set.primary.kill()
        for _ in range(replica_set.config.miss_threshold):
            try:
                sharded.get(OBJECT, (charts[0]["patient_id"],))
            except DegradedServiceError:
                continue
        assert replica_set.failovers == 1
        # Everything acked pre-kill is applied on the promoted stack.
        for chart in charts:
            instance = sharded.get(OBJECT, (chart["patient_id"],))
            assert instance.to_dict()["name"] == chart["name"]
        sharded.close()

    def test_all_replicas_dead_means_shard_down(self):
        sharded = build(miss_threshold=1)
        replica_set = sharded.shard(0).replica_set
        replica_set.primary.kill()
        for replica in replica_set.replicas:
            replica.kill()
        with pytest.raises(DegradedServiceError):
            sharded.insert(OBJECT, chart_on_shard(sharded, 0))
        sharded.close()

    def test_reads_blocked_while_failing_over(self):
        sharded = build()
        replica_set = sharded.shard(0).replica_set
        pid = pid_on_shard(sharded, 0, start=100)
        seen = {}

        def hook(stage, shard_id):
            if stage == "post_drain":
                try:
                    replica_set.get_served(OBJECT, (pid,))
                except FailoverInProgressError:
                    seen["blocked"] = True

        replica_set.failpoint = hook
        replica_set.primary.kill()
        for _ in range(replica_set.config.miss_threshold):
            try:
                sharded.insert(OBJECT, chart_on_shard(sharded, 0, start=94_000))
                break
            except PrimaryDownError:
                continue
        assert seen.get("blocked") is True
        sharded.close()


class TestStaleReads:
    def test_replica_serves_marked_stale_when_primary_down(self):
        sharded = build(miss_threshold=50)
        shard = sharded.shard(0)
        chart = chart_on_shard(sharded, 0, "stale witness", 95_000)
        sharded.insert(OBJECT, chart)
        shard.replica_set.primary.kill()
        served = sharded.get_served(OBJECT, (chart["patient_id"],))
        assert served.stale is True
        assert str(served.source).startswith("replica:")
        assert served.meta()["source"] == served.source
        assert served.value.to_dict()["name"] == "stale witness"
        # Queries fall through to replicas the same way.
        served = sharded.shard(0).query_served(OBJECT, None)
        assert served.stale is True
        sharded.close()


class TestFencing:
    def test_zombie_ship_is_rejected(self):
        sharded = build()
        replica_set = sharded.shard(0).replica_set
        sharded.insert(OBJECT, chart_on_shard(sharded, 0, start=96_000))
        old_epoch = replica_set.epoch
        replica_set.primary.kill()
        for _ in range(replica_set.config.miss_threshold):
            try:
                sharded.insert(
                    OBJECT, chart_on_shard(sharded, 0, "fence", 96_500)
                )
                break
            except PrimaryDownError:
                continue
        survivor = replica_set.replicas[0]
        zombie = ShippingLink(survivor)
        zombie.cursor = survivor.received_count
        with pytest.raises(FencedWriteError):
            zombie.send(
                old_epoch,
                survivor.received_count + 1,
                replica_set._stream[-1],
            )
        assert survivor.fenced_ships == 1
        sharded.close()


class TestPartitionCatchUp:
    def test_replica_catches_up_after_a_partition(self):
        """Satellite: wedge, accumulate, heal — converge and lag -> 0."""
        with obs.use():
            sharded = build()
            shard = sharded.shard(0)
            replica_set = shard.replica_set
            lagging = replica_set.replicas[0]
            healthy = replica_set.replicas[1]
            replica_set.link(lagging.name).wedge()

            written = []
            for i in range(5):
                chart = chart_on_shard(sharded, 0, f"partition {i}", 97_000 + i * 7)
                sharded.insert(OBJECT, chart)  # quorum met by the healthy peer
                written.append(chart)
            assert replica_set.lag(lagging) >= len(written)
            assert replica_set.lag(healthy) == 0
            gauge = obs.metrics().gauge(
                "replication_lag", shard="0", replica=lagging.name
            )
            assert gauge.value >= len(written)
            assert divergence(shard.engine, lagging.engine) != []

            replica_set.link(lagging.name).heal()
            shipped = replica_set.catch_up()
            assert shipped >= len(written)
            assert divergence(shard.engine, lagging.engine) == []
            assert replica_set.lag(lagging) == 0
            assert gauge.value == 0
            sharded.close()

    def test_next_write_also_heals_the_backlog(self):
        sharded = build()
        replica_set = sharded.shard(0).replica_set
        lagging = replica_set.replicas[0]
        replica_set.link(lagging.name).wedge()
        sharded.insert(OBJECT, chart_on_shard(sharded, 0, "a", 98_000))
        replica_set.link(lagging.name).heal()
        # The next write re-ships the backlog through the same link.
        sharded.insert(OBJECT, chart_on_shard(sharded, 0, "b", 98_100))
        assert divergence(sharded.shard(0).engine, lagging.engine) == []
        sharded.close()


class TestCrossShard:
    @staticmethod
    def rehome(node, pid):
        out = {}
        for key, value in node.items():
            if key == "patient_id":
                out[key] = pid
            elif isinstance(value, list):
                out[key] = [TestCrossShard.rehome(child, pid) for child in value]
            else:
                out[key] = value
        return out

    def cross_pair(self, sharded):
        pids = sorted(row[0] for row in sharded.all_rows("PATIENT"))
        old = pids[0]
        new = next(
            c for c in range(99_000, 99_100)
            if sharded.router.shard_of((c,)) != sharded.router.shard_of((old,))
        )
        return old, new

    def test_cross_shard_commit_converges_all_replicas(self):
        sharded = build()
        old, new = self.cross_pair(sharded)
        moved = self.rehome(sharded.get(OBJECT, (old,)).to_dict(), new)
        sharded.replace(OBJECT, (old,), moved)
        assert sharded.get(OBJECT, (old,)) is None
        assert sharded.get(OBJECT, (new,)) is not None
        for shard in sharded.shards:
            shard.replica_set.catch_up()
            for replica in shard.replica_set.replicas:
                assert divergence(shard.engine, replica.engine) == []
        sharded.close()

    def test_cross_shard_aborts_when_a_participant_quorum_is_down(self):
        sharded = build()
        old, new = self.cross_pair(sharded)
        target = sharded.shard(sharded.router.shard_of((new,)))
        for replica in target.replica_set.replicas:
            target.replica_set.link(replica.name).wedge()
        moved = self.rehome(sharded.get(OBJECT, (old,)).to_dict(), new)
        with pytest.raises(ReplicationQuorumError):
            sharded.replace(OBJECT, (old,), moved)
        assert sharded.get(OBJECT, (old,)) is not None
        assert sharded.get(OBJECT, (new,)) is None
        for replica in target.replica_set.replicas:
            target.replica_set.link(replica.name).heal()
        for shard in sharded.shards:
            shard.replica_set.catch_up()
            for replica in shard.replica_set.replicas:
                assert divergence(shard.engine, replica.engine) == []
        sharded.close()
