"""Trace continuity across the replication hop: the ShippedRecord
carries the trace id, and the replica's async applier thread rejoins
it — one trace from the primary's write to every replica's audit row."""

import repro.obs as obs
from repro.obs.context import activate
from repro.replicate import ReplicationConfig, ShippedRecord
from repro.shard import ShardedPenguin, sharded_loader
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)
from tests.conftest import wait_until

OBJECT = "patient_chart"


def build():
    graph = hospital_schema()
    sharded = ShardedPenguin(
        graph,
        "PATIENT",
        num_shards=2,
        # async appliers: the record crosses a real thread boundary
        replication=ReplicationConfig(replicas=2, apply_inline=False),
    )
    populate_hospital(sharded_loader(sharded), HospitalConfig(patients=4))
    sharded.register_object(patient_chart_object(graph))
    return sharded


def fresh_chart(pid):
    return {
        "patient_id": pid,
        "name": "Shipped Patient",
        "birth_year": 1970,
        "ward_name": None,
        "VISIT": [
            {
                "patient_id": pid,
                "visit_no": 1,
                "visit_date": "1991-05-29",
                "physician_id": 9000,
                "reason": "shipping",
                "DIAGNOSIS": [],
                "PRESCRIPTION": [],
                "LAB_RESULT": [],
                "PHYSICIAN": [],
            }
        ],
    }


def pid_on_shard(sharded, shard_id, start=90_000):
    pid = start
    while sharded.router.shard_of((pid,)) != shard_id:
        pid += 1
    return pid


class TestShippedRecordTrace:
    def test_record_captures_ambient_trace(self):
        with obs.use():
            sharded = build()
            try:
                shard = sharded.shard(0)
                with activate(request_id="req-capture") as ctx:
                    sharded.insert(
                        OBJECT, fresh_chart(pid_on_shard(sharded, 0))
                    )
                replica_set = shard.replica_set
                assert replica_set.stream_length > 0
                record = replica_set._stream[-1]
                assert isinstance(record, ShippedRecord)
                assert record.trace_id == ctx.trace_id
            finally:
                sharded.close()

    def test_async_applier_rejoins_the_trace(self):
        with obs.use() as hub:
            sharded = build()
            try:
                replica_set = sharded.shard(0).replica_set
                with activate(request_id="req-hop") as ctx:
                    sharded.insert(
                        OBJECT, fresh_chart(pid_on_shard(sharded, 0))
                    )

                def replica_roots():
                    return [
                        root
                        for root in hub.tracer.roots()
                        if root.name == "replica.apply"
                        and root.trace_id == ctx.trace_id
                    ]

                # the applier threads drain their queues on their own
                # schedule; wait, never sleep
                wait_until(lambda: len(replica_roots()) >= 2)
                roots = replica_roots()
                # every replica's root span rejoined the ONE trace the
                # write started under — no new trace across the hop
                assert {root.trace_id for root in roots} == {ctx.trace_id}
                replicas = {root.attributes["replica"] for root in roots}
                assert replicas == {"r1", "r2"}
                # ...and the replica audit rows cross-link the same trace
                for replica in replica_set.replicas:
                    audit = replica.serving.penguin.audit
                    wait_until(lambda: len(audit.records()) > 0)
                    tail = audit.records()[-1]
                    assert tail.trace_id == ctx.trace_id
            finally:
                sharded.close()
