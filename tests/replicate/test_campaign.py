"""The chaos-failover campaign is part of the suite: it is fast (~0.5s)
and is the strongest end-to-end statement the replication layer makes —
zero committed-write loss across every kill point."""

from repro.replicate.campaign import run_failover_campaign


def test_failover_campaign_holds_every_invariant():
    report = run_failover_campaign(seed=0)
    assert report.ok, report.summary()
    assert report.failures == []
    assert report.kills_injected > 0
    assert report.failovers > 0
    assert report.lost_writes == 0
    assert report.torn_states == 0
    assert report.acked_writes > 0
    assert report.fenced_ships > 0
    assert report.stale_reads > 0
    assert report.reverted_writes > 0
    assert report.refused_writes > 0
    assert report.flaky_faults > 0
    assert report.oracle_replays > 0
    summary = report.summary()
    assert "0 LOST" in summary
    assert "all held" in summary
