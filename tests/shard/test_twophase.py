"""Cross-shard atomicity under crashes: the 2PC crash-point sweep.

The acceptance bar for the coordinator: a simulated crash at *every*
prepare/apply/commit checkpoint of a two-participant transaction,
followed by recovery, must leave the multi-shard update all-applied or
all-reverted — zero torn states — and recovery must be idempotent.
"""

import pytest

from repro.errors import ReproError
from repro.shard import ShardedPenguin, TwoPhaseRecoveryReport, sharded_loader
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)

pytestmark = pytest.mark.chaos

OBJECT = "patient_chart"


class SimulatedCrash(BaseException):
    """A process death: not an Exception, so no inline abort runs."""


def fresh_chart(pid):
    return {
        "patient_id": pid,
        "name": f"Chart {pid}",
        "birth_year": 1960,
        "ward_name": None,
        "VISIT": [
            {
                "patient_id": pid,
                "visit_no": 1,
                "visit_date": "1991-05-29",
                "physician_id": 9000,
                "reason": "test",
                "DIAGNOSIS": [],
                "PRESCRIPTION": [],
                "LAB_RESULT": [],
                "PHYSICIAN": [],
            }
        ],
    }


def rehome(chart, new_pid):
    def walk(node):
        out = {}
        for key, value in node.items():
            if key == "patient_id":
                out[key] = new_pid
            elif isinstance(value, list):
                out[key] = [walk(child) for child in value]
            else:
                out[key] = value
        return out

    return walk(chart)


def build_sharded(num_shards=4):
    graph = hospital_schema()
    sharded = ShardedPenguin(graph, "PATIENT", num_shards=num_shards)
    populate_hospital(sharded_loader(sharded), HospitalConfig(patients=8))
    sharded.register_object(patient_chart_object(graph))
    return sharded


def cross_shard_pair(router):
    for pid in range(100, 108):
        for candidate in range(60_000, 60_050):
            if router.shard_of((pid,)) != router.shard_of((candidate,)):
                return pid, candidate
    raise AssertionError("no cross-shard pair")  # pragma: no cover


def restart(sharded):
    """A new facade over the same engines/journals — a process restart.

    The constructor runs recovery, exactly like a real reboot; the old
    facade is abandoned mid-transaction.
    """
    graph = sharded.graph
    reborn = ShardedPenguin(
        graph,
        "PATIENT",
        router=sharded.router,
        engines=[shard.engine for shard in sharded.shards],
        journals=[shard.journal for shard in sharded.shards],
        audits=[shard.penguin.audit for shard in sharded.shards],
        install=False,
    )
    reborn.register_object(patient_chart_object(graph))
    return reborn


def patient_rows(sharded, pid):
    return [
        (shard.shard_id, row)
        for shard in sharded.shards
        for row in shard.engine.scan("PATIENT")
        if row[0] == pid
    ]


# Every checkpoint a 2-participant transaction passes through, in
# order: prepare on each shard, apply on each, commit markers on each.
CRASH_POINTS = [
    ("prepare", 0), ("prepare", 1),
    ("apply", 0), ("apply", 1),
    ("commit", 0), ("commit", 1),
]


@pytest.mark.parametrize("stage,ordinal", CRASH_POINTS)
def test_crash_sweep_never_tears(stage, ordinal):
    """Crash at each checkpoint; after restart-recovery the re-homing
    is all-applied or all-reverted — the patient exists under exactly
    one key, on exactly one shard."""
    sharded = build_sharded()
    old_pid, new_pid = cross_shard_pair(sharded.router)
    moved = rehome(sharded.get(OBJECT, (old_pid,)).to_dict(), new_pid)
    before = {
        name: sharded.all_rows(name)
        for name in sharded.graph.relation_names
    }

    hits = {"count": 0}

    def failpoint(fp_stage, shard_id):
        if fp_stage == stage:
            if hits["count"] == ordinal:
                raise SimulatedCrash(f"crash at {stage}#{ordinal}")
            hits["count"] += 1

    sharded.failpoint = failpoint
    with pytest.raises(SimulatedCrash):
        sharded.replace(OBJECT, (old_pid,), moved)

    reborn = restart(sharded)
    report = reborn.recovery.two_phase
    assert report.clean

    old_rows = patient_rows(reborn, old_pid)
    new_rows = patient_rows(reborn, new_pid)
    # All-or-nothing: exactly one of the two keys exists, on one shard.
    assert (len(old_rows), len(new_rows)) in ((1, 0), (0, 1)), (
        f"TORN after crash at {stage}#{ordinal}: "
        f"old={old_rows} new={new_rows}"
    )
    if new_rows:
        # Rolled forward: the whole after-state, not just the pivot row.
        assert report.rolled_forward
        assert reborn.get(OBJECT, (new_pid,)) is not None
        assert reborn.get(OBJECT, (old_pid,)) is None
    else:
        # Rolled back: every relation is byte-identical to before.
        assert report.rolled_back or not report.resolved
        after = {
            name: reborn.all_rows(name)
            for name in reborn.graph.relation_names
        }
        assert after == before

    # No pending journal work anywhere; integrity holds.
    for shard in reborn.shards:
        assert shard.journal.pending() == []
    assert reborn.check_integrity() == []

    # Idempotent: a second recovery pass resolves nothing.
    again = reborn.recover()
    assert again.two_phase.resolved == 0
    assert again.clean


def test_recovery_is_ordered_before_per_shard_recovery():
    """A crash between commit markers must roll FORWARD (one sibling is
    already COMMITTED), which only the global 2PC pass can decide —
    per-shard recovery alone would have torn it."""
    sharded = build_sharded()
    old_pid, new_pid = cross_shard_pair(sharded.router)
    moved = rehome(sharded.get(OBJECT, (old_pid,)).to_dict(), new_pid)

    def crash_between_commits(stage, shard_id):
        if stage == "commit":
            if crash_between_commits.armed:
                raise SimulatedCrash("second commit marker")
            crash_between_commits.armed = True

    crash_between_commits.armed = False
    sharded.failpoint = crash_between_commits
    with pytest.raises(SimulatedCrash):
        sharded.replace(OBJECT, (old_pid,), moved)

    reborn = restart(sharded)
    assert reborn.recovery.two_phase.rolled_forward
    assert reborn.get(OBJECT, (new_pid,)) is not None
    assert reborn.get(OBJECT, (old_pid,)) is None


def test_inline_abort_reverts_applied_participants():
    """An ordinary failure mid-apply (duplicate key on the target
    shard) aborts the transaction inline: already-applied work is
    reverted, every journal entry is marked aborted, and the update is
    audited rolled_back."""
    sharded = build_sharded()
    old_pid, new_pid = cross_shard_pair(sharded.router)
    # Sabotage the target shard: the new pivot key already exists there.
    target = sharded.shards[sharded.router.shard_of((new_pid,))]
    target.engine.insert(
        "PATIENT",
        {
            "patient_id": new_pid,
            "name": "Occupant",
            "birth_year": 1900,
            "ward_name": None,
        },
    )
    before = {
        name: sharded.all_rows(name)
        for name in sharded.graph.relation_names
    }
    moved = rehome(sharded.get(OBJECT, (old_pid,)).to_dict(), new_pid)
    with pytest.raises(ReproError):
        sharded.replace(OBJECT, (old_pid,), moved)

    after = {
        name: sharded.all_rows(name)
        for name in sharded.graph.relation_names
    }
    assert after == before
    for shard in sharded.shards:
        assert shard.journal.pending() == []
    assert ("replace", "rolled_back") in sharded.audit_outcomes()
    # Nothing left for recovery.
    assert sharded.recover().two_phase.resolved == 0


def test_restart_with_clean_journals_is_a_noop():
    sharded = build_sharded()
    sharded.insert(OBJECT, fresh_chart(50_010))
    reborn = restart(sharded)
    assert isinstance(reborn.recovery.two_phase, TwoPhaseRecoveryReport)
    assert reborn.recovery.two_phase.resolved == 0
    assert reborn.get(OBJECT, (50_010,)) is not None
