"""Routing, placement, and plan partitioning."""

import pytest

from repro.errors import UpdateError
from repro.relational.operations import Delete, Insert, Replace, UpdatePlan
from repro.shard import HashRouter, Placement, RangeRouter, partition_plan, stable_hash
from repro.workloads.hospital import hospital_schema


class TestStableHash:
    def test_deterministic_within_process(self):
        assert stable_hash((4711,)) == stable_hash((4711,))
        assert stable_hash(("CS345", 2)) == stable_hash(("CS345", 2))

    def test_known_values_pin_cross_process_stability(self):
        # blake2b of the typed encoding — a change here re-homes every
        # key of every deployment, so the values are pinned explicitly.
        assert stable_hash((100,)) == stable_hash((100,))
        assert stable_hash((100,)) != stable_hash(("100",))  # typed
        assert stable_hash(()) == stable_hash(())

    def test_type_sensitivity(self):
        # int 1 and string "1" must not collide into the same bytes.
        assert stable_hash((1, "2")) != stable_hash(("1", 2))


class TestHashRouter:
    def test_shard_in_range_and_deterministic(self):
        router = HashRouter(4)
        for pid in range(100, 200):
            shard = router.shard_of((pid,))
            assert 0 <= shard < 4
            assert router.shard_of((pid,)) == shard

    def test_spreads_the_hospital_population(self):
        router = HashRouter(4)
        owners = {router.shard_of((100 + i,)) for i in range(25)}
        assert len(owners) == 4  # 25 keys land on all 4 shards

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            HashRouter(0)


class TestRangeRouter:
    def test_boundaries_partition_the_line(self):
        router = RangeRouter([100, 200])
        assert router.num_shards == 3
        assert router.shard_of((50,)) == 0
        assert router.shard_of((100,)) == 1  # boundary belongs right
        assert router.shard_of((150,)) == 1
        assert router.shard_of((200,)) == 2
        assert router.shard_of((999,)) == 2

    def test_rejects_unsorted_and_empty(self):
        with pytest.raises(ValueError):
            RangeRouter([2, 1])
        with pytest.raises(ValueError):
            RangeRouter([])


class TestPlacement:
    def test_hospital_classification(self):
        placement = Placement(hospital_schema(), "PATIENT")
        assert placement.partition_attrs == ("patient_id",)
        assert placement.partitioned == (
            "DIAGNOSIS", "LAB_RESULT", "PATIENT", "PRESCRIPTION", "VISIT",
        )
        assert placement.replicated == ("MEDICATION", "PHYSICIAN", "WARD")

    def test_routing_key_extraction(self):
        placement = Placement(hospital_schema(), "PATIENT")
        # VISIT's key is (patient_id, visit_no): routing key is the prefix.
        assert placement.routing_key_of_key("VISIT", (4711, 2)) == (4711,)
        # Full VISIT tuple: patient_id, visit_no, visit_date, physician_id, reason.
        values = (4711, 2, "1991-05-29", 9000, "checkup")
        assert placement.routing_key_of_values("VISIT", values) == (4711,)


class TestPartitionPlan:
    @pytest.fixture
    def placement(self):
        return Placement(hospital_schema(), "PATIENT")

    def test_replicated_ops_fan_out_to_every_shard(self, placement):
        router = HashRouter(3)
        plan = UpdatePlan()
        plan.add(Insert("PHYSICIAN", (9050, "Dr. New", "surgery")), "ref fix")
        split = partition_plan(plan, placement, router)
        assert sorted(split) == [0, 1, 2]
        for sub in split.values():
            assert len(sub.operations) == 1
            assert sub.operations[0].relation == "PHYSICIAN"

    def test_partitioned_ops_route_to_one_owner(self, placement):
        router = HashRouter(4)
        plan = UpdatePlan()
        plan.add(
            Insert("PATIENT", (4711, "New Patient", 1960, None)), "insert"
        )
        plan.add(
            Insert("VISIT", (4711, 1, "1991-05-29", 9000, "first")), "insert"
        )
        split = partition_plan(plan, placement, router)
        assert list(split) == [router.shard_of((4711,))]
        assert len(split[router.shard_of((4711,))].operations) == 2

    def test_rehoming_replace_splits_into_delete_plus_insert(self, placement):
        # A replacement that changes patient_id re-homes the row: the
        # old owner deletes, the new owner inserts.
        router = RangeRouter([1000])  # pid < 1000 on shard 0, else shard 1
        plan = UpdatePlan()
        plan.add(
            Replace("PATIENT", (500,), (2500, "Moved", 1960, None)),
            "pivot key change",
        )
        split = partition_plan(plan, placement, router)
        assert sorted(split) == [0, 1]
        (old_op,) = split[0].operations
        (new_op,) = split[1].operations
        assert isinstance(old_op, Delete) and old_op.key == (500,)
        assert isinstance(new_op, Insert) and new_op.values[0] == 2500

    def test_same_shard_replace_stays_a_replace(self, placement):
        router = RangeRouter([1000])
        plan = UpdatePlan()
        plan.add(
            Replace("PATIENT", (500,), (600, "Renumbered", 1960, None)),
            "key change within shard",
        )
        split = partition_plan(plan, placement, router)
        assert list(split) == [0]
        assert split[0].operations[0].kind == "replace"

    def test_empty_plan_splits_to_nothing(self, placement):
        assert partition_plan(UpdatePlan(), placement, HashRouter(2)) == {}

    def test_out_of_range_shard_is_rejected(self, placement):
        class BadRouter(HashRouter):
            def shard_of(self, key):
                return 99

        plan = UpdatePlan()
        plan.add(Insert("PATIENT", (1, "X", 1960, None)), "bad")
        with pytest.raises(UpdateError):
            partition_plan(plan, placement, BadRouter(2))
