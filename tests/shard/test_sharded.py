"""ShardedPenguin equivalence: 4 shards must behave like 1 engine.

The acceptance oracle for the sharding layer: the same deterministic
hospital workload — loads, inserts, replaces (including one forced
cross-shard pivot re-homing), deletes, and one rejected update — runs
against a single-engine ``Penguin`` and a 4-shard ``ShardedPenguin``,
and the logical relation states, query results, and audited
(op, outcome) multisets must match exactly.
"""

import pytest

import repro.obs as obs
from repro.errors import ReproError
from repro.obs.cluster import ClusterMetrics
from repro.obs.audit import MemoryAuditLog
from repro.penguin import Penguin
from repro.relational.journal import MemoryJournal
from repro.relational.memory_engine import MemoryEngine
from repro.shard import ShardedPenguin, sharded_loader
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)

OBJECT = "patient_chart"
PATIENTS = 12


def fresh_chart(pid, visits=1):
    return {
        "patient_id": pid,
        "name": f"Chart {pid}",
        "birth_year": 1950 + (pid % 40),
        "ward_name": None,
        "VISIT": [
            {
                "patient_id": pid,
                "visit_no": v,
                "visit_date": "1991-05-29",
                "physician_id": 9000,
                "reason": "test",
                "DIAGNOSIS": [],
                "PRESCRIPTION": [],
                "LAB_RESULT": [],
                "PHYSICIAN": [],
            }
            for v in range(1, visits + 1)
        ],
    }


def rehome(chart, new_pid):
    """The chart with its pivot key changed everywhere it occurs."""

    def walk(node):
        out = {}
        for key, value in node.items():
            if key == "patient_id":
                out[key] = new_pid
            elif isinstance(value, list):
                out[key] = [walk(child) for child in value]
            else:
                out[key] = value
        return out

    return walk(chart)


def build_single():
    graph = hospital_schema()
    engine = MemoryEngine()
    graph.install(engine)
    populate_hospital(engine, HospitalConfig(patients=PATIENTS))
    session = Penguin(
        graph,
        engine=engine,
        install=False,
        journal=MemoryJournal(),
        audit=MemoryAuditLog(),
    )
    session.register_object(patient_chart_object(graph))
    return session


def build_sharded(num_shards=4):
    graph = hospital_schema()
    sharded = ShardedPenguin(graph, "PATIENT", num_shards=num_shards)
    populate_hospital(
        sharded_loader(sharded), HospitalConfig(patients=PATIENTS)
    )
    sharded.register_object(patient_chart_object(graph))
    return sharded


def cross_shard_pids(router, start=100, count=PATIENTS):
    """(old_pid, new_pid) with different owners under ``router``."""
    for pid in range(start, start + count):
        for candidate in range(60_000, 60_050):
            if router.shard_of((pid,)) != router.shard_of((candidate,)):
                return pid, candidate
    raise AssertionError("no cross-shard pair found")  # pragma: no cover


def run_workload(session, router):
    """The shared deterministic workload; works on either facade."""
    outcomes = []
    # Inserts: spread over the key space.
    for pid in (50_001, 50_002, 50_003, 50_004):
        session.insert(OBJECT, fresh_chart(pid, visits=2))
        outcomes.append(("insert", pid))
    # Same-key replace (stays on one shard).
    pid = 103
    chart = session.get(OBJECT, (pid,)).to_dict()
    chart["name"] = "Renamed In Place"
    session.replace(OBJECT, (pid,), chart)
    # Forced cross-shard re-home: the pivot key moves shards.
    old_pid, new_pid = cross_shard_pids(router)
    moved = rehome(session.get(OBJECT, (old_pid,)).to_dict(), new_pid)
    session.replace(OBJECT, (old_pid,), moved)
    # Deletes: one resident, one just-inserted.
    session.delete(OBJECT, (50_002,))
    session.delete(OBJECT, (104,))
    # A rejected update: duplicate pivot key.
    with pytest.raises(ReproError):
        session.insert(OBJECT, fresh_chart(105))
    return old_pid, new_pid


RELATIONS = (
    "PATIENT", "VISIT", "DIAGNOSIS", "PRESCRIPTION", "LAB_RESULT",
    "WARD", "PHYSICIAN", "MEDICATION",
)


class TestEquivalence:
    @pytest.fixture
    def pair(self):
        single = build_single()
        sharded = build_sharded()
        return single, sharded

    def test_initial_load_matches(self, pair):
        single, sharded = pair
        for relation in RELATIONS:
            assert sharded.all_rows(relation) == sorted(
                single.engine.scan(relation), key=repr
            ), relation

    def test_workload_states_and_audits_match(self, pair):
        single, sharded = pair
        run_workload(single, sharded.router)
        old_pid, new_pid = run_workload(sharded, sharded.router)

        # The re-homing really crossed shards.
        assert sharded.router.shard_of((old_pid,)) != sharded.router.shard_of(
            (new_pid,)
        )
        # Byte-equivalent relation states.
        for relation in RELATIONS:
            assert sharded.all_rows(relation) == sorted(
                single.engine.scan(relation), key=repr
            ), relation
        # Audit outcome multisets match (shard-agnostic).
        single_outcomes = sorted(
            (record.op, record.outcome) for record in single.audit.records()
        )
        assert sharded.audit_outcomes() == single_outcomes
        assert ("replace", "committed") in single_outcomes
        assert ("rolled_back" in {o for _, o in single_outcomes})

    def test_queries_merge_identically(self, pair):
        single, sharded = pair
        run_workload(single, sharded.router)
        run_workload(sharded, sharded.router)
        single_keys = sorted(
            repr(i.key) for i in single.query(OBJECT)
        )
        sharded_keys = [repr(i.key) for i in sharded.query(OBJECT)]
        assert sharded_keys == single_keys
        # Point reads agree too.
        for pid in (50_001, 103, 105):
            assert (
                sharded.get(OBJECT, (pid,)).to_dict()
                == single.get(OBJECT, (pid,)).to_dict()
            )
        assert sharded.get(OBJECT, (50_002,)) is None

    def test_cross_shard_rehoming_used_two_phase(self, pair):
        _, sharded = pair
        old_pid, new_pid = run_workload(sharded, sharded.router)
        labels = [
            entry.label
            for shard in sharded.shards
            for entry in shard.journal.entries()
        ]
        assert any(label.startswith("2pc:") for label in labels)
        # The moved patient lives only on its new owner.
        new_owner = sharded.router.shard_of((new_pid,))
        for shard in sharded.shards:
            rows = [
                row
                for row in shard.engine.scan("PATIENT")
                if row[0] == new_pid
            ]
            assert bool(rows) == (shard.shard_id == new_owner)
            assert not any(
                row[0] == old_pid for row in shard.engine.scan("PATIENT")
            )


class TestInvariants:
    def test_replicated_relations_stay_in_lockstep(self):
        sharded = build_sharded()
        run_workload(sharded, sharded.router)
        for relation in ("WARD", "PHYSICIAN", "MEDICATION"):
            reference = sorted(
                sharded.shard(0).engine.scan(relation), key=repr
            )
            for shard in sharded.shards[1:]:
                assert (
                    sorted(shard.engine.scan(relation), key=repr)
                    == reference
                ), f"{relation} diverged on shard {shard.shard_id}"

    def test_partitioned_rows_live_on_their_router_shard(self):
        sharded = build_sharded()
        run_workload(sharded, sharded.router)
        for shard in sharded.shards:
            for row in shard.engine.scan("PATIENT"):
                assert sharded.router.shard_of((row[0],)) == shard.shard_id

    def test_integrity_holds_per_shard(self):
        sharded = build_sharded()
        run_workload(sharded, sharded.router)
        assert sharded.check_integrity() == []

    def test_owner_of_matches_router(self):
        sharded = build_sharded()
        for pid in range(100, 100 + PATIENTS):
            assert sharded.owner_of(OBJECT, (pid,)) == (
                sharded.router.shard_of((pid,))
            )

    def test_range_router_deployment_works_too(self):
        graph = hospital_schema()
        from repro.shard import RangeRouter

        sharded = ShardedPenguin(
            graph, "PATIENT", router=RangeRouter([104, 108, 112])
        )
        populate_hospital(
            sharded_loader(sharded), HospitalConfig(patients=PATIENTS)
        )
        sharded.register_object(patient_chart_object(graph))
        assert sharded.num_shards == 4
        counts = [
            shard.engine.count("PATIENT") for shard in sharded.shards
        ]
        assert counts == [4, 4, 4, 0]  # pids 100..111 in ranges
        sharded.insert(OBJECT, fresh_chart(200))
        assert sharded.shard(3).engine.count("PATIENT") == 1


class TestMetricsLabels:
    def test_per_shard_series_stay_bounded(self):
        """Cardinality regression: shard labels come from topology, not
        request data — N shards can never mint more than N values."""
        with obs.use() as hub:
            sharded = build_sharded()
            run_workload(sharded, sharded.router)
            for _ in range(20):
                sharded.query(OBJECT)
            cluster = ClusterMetrics(hub)
            read_shards = cluster.label_values(
                "serve_reads_total", "shard"
            )
            write_shards = cluster.label_values(
                "serve_writes_total", "shard"
            )
            update_shards = cluster.label_values(
                "shard_updates_total", "shard"
            )
            all_ids = {str(i) for i in range(sharded.num_shards)}
            assert set(read_shards) == all_ids  # queries scatter everywhere
            assert set(write_shards) <= all_ids and write_shards
            assert set(update_shards) <= all_ids and update_shards
            text = cluster.render_text()
            assert 'shard="0"' in text
            assert "serve_reads_total" in text
            # serving counters live on per-shard component registries
            assert 'component="shard0"' in text

    def test_render_text_escapes_and_groups_shard_labels(self):
        with obs.use() as hub:
            hub.metrics.counter(
                "serve_reads_total", mode="engine", shard="0"
            ).inc(3)
            hub.metrics.counter(
                "serve_reads_total", mode="engine", shard="1"
            ).inc()
            text = hub.metrics.render_text()
            assert 'serve_reads_total{mode="engine",shard="0"} 3' in text
            assert 'serve_reads_total{mode="engine",shard="1"} 1' in text
