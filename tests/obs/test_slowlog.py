"""Unit tests for the threshold-gated slow-operation log."""

import pytest

from repro.obs.slowlog import SlowLog
from repro.obs.trace import Tracer
from tests.obs.test_trace import FakeClock


def finished_span(tracer):
    (root,) = tracer.take()
    return root


class TestSlowLog:
    def test_retains_only_slow_spans(self):
        slow = SlowLog(threshold=5.0)
        fast_tracer = Tracer(clock=FakeClock(step=1.0))
        with fast_tracer.span("fast"):
            pass
        slow_tracer = Tracer(clock=FakeClock(step=10.0))
        with slow_tracer.span("slow"):
            pass
        assert slow.consider(finished_span(fast_tracer)) is False
        assert slow.consider(finished_span(slow_tracer)) is True
        assert [entry.name for entry in slow.entries()] == ["slow"]
        assert slow.observed == 2
        assert slow.retained == 1

    def test_exactly_at_threshold_is_not_logged(self):
        """The boundary is exclusive: "slower than", not "as slow as"."""
        slow = SlowLog(threshold=1.0)
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("exact"):
            pass
        span = finished_span(tracer)
        assert span.duration == 1.0  # precondition: exactly on the line
        assert slow.consider(span) is False
        assert slow.retained == 0

    def test_epsilon_over_threshold_is_logged(self):
        slow = SlowLog(threshold=1.0)
        tracer = Tracer(clock=FakeClock(step=1.0 + 1e-6))
        with tracer.span("barely"):
            pass
        span = finished_span(tracer)
        assert span.duration > 1.0
        assert slow.consider(span) is True
        assert [entry.name for entry in slow.entries()] == ["barely"]

    def test_zero_threshold_retains_everything(self):
        slow = SlowLog(threshold=0.0)
        tracer = Tracer(clock=FakeClock())
        with tracer.span("anything"):
            pass
        assert slow.consider(finished_span(tracer)) is True

    def test_capacity_is_a_ring(self):
        slow = SlowLog(threshold=0.0, capacity=2)
        tracer = Tracer(clock=FakeClock())
        for index in range(3):
            with tracer.span(f"s{index}"):
                pass
            slow.consider(finished_span(tracer))
        assert [entry.name for entry in slow.entries()] == ["s1", "s2"]
        assert slow.retained == 3  # lifetime counter keeps counting

    def test_entry_carries_attributes_and_error(self):
        slow = SlowLog(threshold=0.0)
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("broken", relation="COURSES"):
                raise RuntimeError("disk on fire")
        slow.consider(finished_span(tracer))
        (entry,) = slow.entries()
        assert entry.attributes == {"relation": "COURSES"}
        assert "disk on fire" in entry.error
        assert "relation=COURSES" in entry.describe()
        assert entry.as_dict()["duration_ms"] == 1000.0

    def test_wired_through_tracer_on_root(self):
        tracer = Tracer(clock=FakeClock())
        slow = SlowLog(threshold=0.0)
        tracer.on_root.append(slow.consider)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert len(slow) == 1  # only the root is offered

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            SlowLog(threshold=-1)
        with pytest.raises(ValueError):
            SlowLog(capacity=0)
