"""Unit tests for the tracer: span trees, ring buffer, export."""

import io
import json
import threading

import pytest

from repro.obs.trace import NOOP_TRACER, Tracer


class FakeClock:
    """A deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


@pytest.fixture
def tracer():
    return Tracer(capacity=8, clock=FakeClock())


class TestSpanTree:
    def test_nesting_builds_a_tree(self, tracer):
        with tracer.span("root"):
            with tracer.span("child.a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child.b"):
                pass
        (root,) = tracer.roots()
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child.a", "child.b"]
        assert root.children[0].children[0].name == "grandchild"

    def test_attributes_at_open_and_via_set(self, tracer):
        with tracer.span("op", relation="COURSES") as span:
            span.set(ops=3, cache="hit")
        (root,) = tracer.roots()
        assert root.attributes == {
            "relation": "COURSES",
            "ops": 3,
            "cache": "hit",
        }

    def test_durations_come_from_the_clock(self, tracer):
        with tracer.span("timed"):
            pass
        (root,) = tracer.roots()
        assert root.duration == 1.0  # one clock step between push and pop

    def test_exception_is_recorded_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        (root,) = tracer.roots()
        assert root.error == "ValueError: boom"

    def test_find_and_iter(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        (root,) = tracer.roots()
        assert root.find("c").name == "c"
        assert root.find("zzz") is None
        assert [s.name for s in root.iter_spans()] == ["a", "b", "c"]

    def test_current_tracks_innermost(self, tracer):
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None


class TestRingBuffer:
    def test_capacity_evicts_oldest(self):
        tracer = Tracer(capacity=2, clock=FakeClock())
        for index in range(3):
            with tracer.span(f"span{index}"):
                pass
        assert [r.name for r in tracer.roots()] == ["span1", "span2"]
        assert tracer.dropped == 1

    def test_take_drains(self, tracer):
        with tracer.span("one"):
            pass
        assert len(tracer.take()) == 1
        assert tracer.roots() == ()

    def test_on_root_fires_only_for_roots(self, tracer):
        seen = []
        tracer.on_root.append(lambda span: seen.append(span.name))
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert seen == ["root"]


class TestDisabled:
    def test_disabled_tracer_hands_out_noop(self):
        with NOOP_TRACER.span("anything", x=1) as span:
            span.set(y=2)
        assert NOOP_TRACER.roots() == ()

    def test_reenabling_at_runtime(self):
        tracer = Tracer(clock=FakeClock(), enabled=False)
        with tracer.span("invisible"):
            pass
        tracer.enabled = True
        with tracer.span("visible"):
            pass
        assert [r.name for r in tracer.roots()] == ["visible"]


class TestThreads:
    def test_each_thread_gets_its_own_stack(self):
        tracer = Tracer(capacity=16, clock=FakeClock())
        barrier = threading.Barrier(4)

        def worker(index):
            barrier.wait()
            with tracer.span(f"thread{index}"):
                with tracer.span("inner"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        roots = tracer.roots()
        assert len(roots) == 4  # four independent roots, no cross-nesting
        assert all(len(root.children) == 1 for root in roots)


class TestExport:
    def test_render_tree_shape(self, tracer):
        with tracer.span("translate", op="insert"):
            with tracer.span("validate"):
                pass
        text = tracer.render(show_durations=False)
        assert text == "translate op=insert\n  validate"

    def test_normalized_strips_durations(self, tracer):
        with tracer.span("x"):
            pass
        (root,) = tracer.roots()
        assert "ms" in root.render()
        assert "ms" not in root.normalized()

    def test_jsonl_round_trip(self, tracer):
        with tracer.span("root", op="insert"):
            with tracer.span("child"):
                pass
        sink = io.StringIO()
        assert tracer.export_jsonl(sink) == 1
        (line,) = sink.getvalue().splitlines()
        data = json.loads(line)
        assert data["name"] == "root"
        assert data["attributes"] == {"op": "insert"}
        assert data["children"][0]["name"] == "child"

    def test_jsonl_export_parse_rebuilds_the_same_span_forest(
        self, tracer, tmp_path
    ):
        """Full round trip: export → parse → identical tree structure
        (names, attributes, errors, and child nesting for every root).
        """
        with tracer.span("translate", op="insert", object="course_info"):
            with tracer.span("validate"):
                pass
            with tracer.span("apply", relation="COURSES"):
                with tracer.span("statement"):
                    pass
        with pytest.raises(RuntimeError):
            with tracer.span("broken"):
                raise RuntimeError("boom")
        target = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(str(target)) == 2
        parsed = [
            json.loads(line)
            for line in target.read_text().splitlines()
            if line.strip()
        ]
        assert parsed == [root.to_dict() for root in tracer.roots()]

        def shape(node):
            return (
                node["name"],
                node.get("attributes", {}),
                node.get("error"),
                [shape(child) for child in node.get("children", [])],
            )

        assert shape(parsed[0]) == (
            "translate",
            {"op": "insert", "object": "course_info"},
            None,
            [
                ("validate", {}, None, []),
                (
                    "apply",
                    {"relation": "COURSES"},
                    None,
                    [("statement", {}, None, [])],
                ),
            ],
        )
        assert shape(parsed[1])[0] == "broken"
        assert "boom" in parsed[1]["error"]

    def test_jsonl_to_path(self, tracer, tmp_path):
        with tracer.span("root"):
            pass
        target = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(str(target)) == 1
        assert json.loads(target.read_text())["name"] == "root"
