"""Translator.explain: the would-be plan, without execution.

The acceptance bar: an explanation must *agree with the executed plan*
on relations touched and operation kinds, and must leave the engine
untouched.
"""

import pytest

from repro.core.updates.operations import (
    CompleteDeletion,
    CompleteInsertion,
    Replacement,
)
from repro.core.updates.translator import Translator
from repro.penguin import Penguin
from tests.core.updates.test_insertion import existing_student, new_course


@pytest.fixture
def translator(omega):
    return Translator(omega, verify_integrity=True)


def kinds_of(plan):
    counts = {}
    for op in plan.operations:
        counts[op.kind] = counts.get(op.kind, 0) + 1
    return counts


def snapshot(engine):
    return {
        name: sorted(map(repr, engine.scan(name)))
        for name in engine.relation_names()
    }


class TestExplainAgreesWithExecution:
    def test_insert(self, translator, university_engine):
        data = new_course(
            university_engine, student=existing_student(university_engine)
        )
        explanation = translator.explain(
            university_engine, CompleteInsertion(data)
        )
        executed = translator.insert(university_engine, data)
        assert explanation.relations_touched == executed.relations_touched()
        assert explanation.op_kinds == kinds_of(executed)

    def test_delete(self, translator, university_engine):
        translator.insert(
            university_engine, new_course(university_engine)
        )
        instance = translator.instantiate(university_engine, ("CS999",))
        explanation = translator.explain(
            university_engine, CompleteDeletion(instance)
        )
        executed = translator.delete(university_engine, instance)
        assert explanation.relations_touched == executed.relations_touched()
        assert explanation.op_kinds == kinds_of(executed)

    def test_replace(self, translator, university_engine):
        translator.insert(university_engine, new_course(university_engine))
        old = translator.instantiate(university_engine, ("CS999",))
        new = old.to_dict()
        new["title"] = "Renamed"
        explanation = translator.explain(
            university_engine, Replacement(old, new)
        )
        executed = translator.replace(university_engine, old, new)
        assert explanation.relations_touched == executed.relations_touched()
        assert explanation.op_kinds == kinds_of(executed)


class TestExplainIsSideEffectFree:
    def test_engine_untouched(self, translator, university_engine):
        before = snapshot(university_engine)
        translator.explain(
            university_engine,
            CompleteInsertion(new_course(university_engine)),
        )
        assert snapshot(university_engine) == before

    def test_changelog_untouched(self, translator, university_engine):
        mark = university_engine.changelog.mark()
        translator.explain(
            university_engine,
            CompleteInsertion(new_course(university_engine)),
        )
        assert university_engine.changelog.mark() == mark

    def test_rejection_surfaces_without_side_effects(
        self, translator, university_engine
    ):
        from repro.errors import UpdateRejectedError

        translator.insert(university_engine, new_course(university_engine))
        before = snapshot(university_engine)
        with pytest.raises(UpdateRejectedError):
            # Inserting the identical course again hits CASE 1 in the
            # island: the explanation raises like the execution would.
            translator.explain(
                university_engine,
                CompleteInsertion(new_course(university_engine)),
            )
        assert snapshot(university_engine) == before


class TestExplainReporting:
    def test_render_sections(self, translator, university_engine):
        explanation = translator.explain(
            university_engine,
            CompleteInsertion(new_course(university_engine)),
        )
        text = explanation.render()
        assert text.startswith("update translation on 'course_info'")
        assert "relations        : COURSES" in text
        assert "island           : COURSES, GRADES" in text
        assert "courses_department" in text
        assert "verify integrity : full post-translation check" in text
        assert "coalescing" in text

    def test_to_dict_round_trips_the_facts(self, translator, university_engine):
        explanation = translator.explain(
            university_engine,
            CompleteInsertion(new_course(university_engine)),
        )
        data = explanation.to_dict()
        assert data["object"] == "course_info"
        assert data["operation"] == "insert"
        assert data["relations_touched"] == list(explanation.relations_touched)
        assert data["raw_ops"] == len(explanation.plan)

    def test_islands_and_rules_reported(self, translator, university_engine):
        explanation = translator.explain(
            university_engine,
            CompleteInsertion(new_course(university_engine)),
        )
        assert explanation.island_relations == ("COURSES", "GRADES")
        assert any(
            "courses_department" in rule for rule in explanation.connections
        )


class TestExplainBatch:
    def test_batch_coalescing_reported(self, translator, university_engine):
        requests = [
            CompleteInsertion(
                new_course(university_engine, course_id=f"CS90{i}")
            )
            for i in range(3)
        ]
        explanation = translator.explain_batch(university_engine, requests)
        assert explanation.items == 3
        assert explanation.operation == "insert"
        assert explanation.raw_ops >= explanation.coalesced_ops
        assert explanation.op_kinds.get("insert", 0) >= 3

    def test_later_requests_see_earlier_effects(
        self, translator, university_engine
    ):
        data = new_course(university_engine)
        explanation = translator.explain_batch(
            university_engine,
            [CompleteInsertion(data), CompleteDeletion(data)],
        )
        assert explanation.operation == "mixed"
        # The delete translates against the buffered insert: both land
        # in the raw plan, and coalescing annihilates the pair.
        assert explanation.raw_ops >= 2
        assert explanation.coalesced_ops < explanation.raw_ops

    def test_empty_batch(self, translator, university_engine):
        explanation = translator.explain_batch(university_engine, [])
        assert explanation.operation == "empty"
        assert explanation.raw_ops == 0
        assert "no operations" in explanation.render()


class TestPenguinExplain:
    def test_explain_update_facade(self, university_graph):
        from repro.workloads.figures import course_info_object
        from repro.workloads.university import populate_university

        session = Penguin(university_graph)
        populate_university(session.engine)
        session.register_object(course_info_object(university_graph))
        explanation = session.explain_update(
            "course_info",
            CompleteInsertion(new_course(session.engine)),
        )
        assert explanation.object_name == "course_info"
        assert explanation.relations_touched == ("COURSES",)
