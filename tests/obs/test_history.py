"""Time travel (``as_of``) and replay verification against the audit log."""

import random

import pytest

from repro.errors import AuditError, UpdateError
from repro.obs.audit import COMMITTED, CRASHED, MemoryAuditLog, ROLLED_BACK
from repro.obs.history import as_of, replay, snapshot
from repro.penguin import Penguin
from repro.relational.faults import (
    FaultInjectingEngine,
    FaultPlan,
    SimulatedCrash,
)
from repro.relational.journal import MemoryJournal
from repro.relational.memory_engine import MemoryEngine
from repro.workloads.figures import course_info_object
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)
from repro.workloads.university import populate_university, university_schema

pytestmark = pytest.mark.audit


def new_course(course_id="CS999", title="View Objects", units=3):
    return {
        "course_id": course_id,
        "title": title,
        "units": units,
        "level": "graduate",
        "dept_name": "Computer Science",
        "DEPARTMENT": [],
        "CURRICULUM": [],
        "GRADES": [],
    }


def university_session(**kwargs):
    session = Penguin(
        university_schema(), audit=MemoryAuditLog(), **kwargs
    )
    populate_university(session.engine)
    session.register_object(course_info_object(session.graph))
    return session


class TestAsOf:
    def test_reconstructs_every_past_state(self):
        session = university_session()
        states = [snapshot(session.engine)]
        session.insert("course_info", new_course())
        states.append(snapshot(session.engine))
        session.replace(
            "course_info", ("CS999",), new_course(title="Revised")
        )
        states.append(snapshot(session.engine))
        session.delete("course_info", ("CS999",))
        states.append(snapshot(session.engine))
        for asn, expected in enumerate(states):
            assert session.as_of(asn) == expected

    def test_single_relation_projection(self):
        session = university_session()
        session.insert("course_info", new_course())
        courses = session.as_of(0, relation="COURSES")
        assert ("CS999",) not in courses
        live_courses = snapshot(session.engine)["COURSES"]
        assert set(courses) == set(live_courses) - {("CS999",)}
        # the live head, restricted to the same relation, has the row
        assert ("CS999",) in session.as_of(1, relation="COURSES")

    def test_future_asn_is_the_live_state(self):
        session = university_session()
        session.insert("course_info", new_course())
        assert session.as_of(session.audit.head_asn()) == snapshot(
            session.engine
        )

    def test_foreign_write_fails_verification(self):
        session = university_session()
        session.insert("course_info", new_course())
        schema = session.engine.schema("COURSES")
        row = session.engine.get("COURSES", ("CS999",))
        doctored = list(row)
        doctored[1] = "edited behind the audit trail"
        session.engine.replace("COURSES", schema.key_of(row), doctored)
        with pytest.raises(AuditError, match="bypassed the audit trail"):
            session.as_of(0)
        # Verification can be waived for forensics on a diverged head.
        state = as_of(
            session.audit, session.engine, 0, verify=False
        )
        assert ("CS999",) not in state["COURSES"]


class TestReplay:
    def test_figure4_round_trip_is_byte_identical(self):
        session = university_session()
        session.insert("course_info", new_course())
        session.replace(
            "course_info", ("CS999",), new_course(title="Revised")
        )
        session.delete("course_info", ("CS999",))
        report = session.replay_audit()
        assert report.ok, report.summary()
        assert report.replayed == [1, 2, 3]
        assert report.mismatches == []
        assert "byte-identical" in report.summary()
        assert report.as_dict()["ok"] is True

    def test_seeded_200_op_mixed_batch(self):
        session = university_session()
        rng = random.Random(2026)
        live = []
        next_id = 0
        for _ in range(200):
            roll = rng.random()
            if not live or roll < 0.5:
                course_id = f"RPL{next_id:04d}"
                next_id += 1
                session.insert("course_info", new_course(course_id))
                live.append(course_id)
            elif roll < 0.8:
                course_id = rng.choice(live)
                session.replace(
                    "course_info",
                    (course_id,),
                    new_course(course_id, units=rng.randint(1, 6)),
                )
            else:
                course_id = live.pop(rng.randrange(len(live)))
                session.delete("course_info", (course_id,))
        assert session.audit.head_asn() == 200
        report = session.replay_audit()
        assert report.ok, report.summary()
        assert len(report.replayed) == 200

    def test_non_committed_records_are_skipped(self):
        session = university_session()
        session.insert("course_info", new_course())
        with pytest.raises(UpdateError):
            session.insert("course_info", new_course())  # rolls back
        session.audit.append(
            op="insert",
            object_name="course_info",
            outcome="degraded_rejected",
            error="DegradedServiceError: refused",
        )
        report = session.replay_audit()
        assert report.ok, report.summary()
        assert report.replayed == [1]
        assert sorted(report.skipped) == [
            (2, ROLLED_BACK),
            (3, "degraded_rejected"),
        ]
        assert "2 non-committed" in report.summary()

    def test_replay_detects_divergence(self):
        session = university_session()
        session.insert("course_info", new_course())
        schema = session.engine.schema("COURSES")
        row = session.engine.get("COURSES", ("CS999",))
        doctored = list(row)
        doctored[1] = "diverged"
        session.engine.replace("COURSES", schema.key_of(row), doctored)
        report = session.replay_audit()
        assert not report.ok
        assert report.mismatches
        relation, key, expected, got = report.mismatches[0]
        assert (relation, key) == ("COURSES", ("CS999",))
        assert "diverged" in str(expected)  # live state is the 'expected'

    def test_replay_onto_caller_supplied_engine(self):
        session = university_session()
        session.insert("course_info", new_course())
        fresh = MemoryEngine()
        report = replay(session.audit, session.engine, fresh)
        assert report.ok
        assert fresh.get("COURSES", ("CS999",)) is not None


class TestChaosReplay:
    """Crashed and rolled-back updates are audited but excluded."""

    def hospital_session(self, crash_at=None):
        graph = hospital_schema()
        base = MemoryEngine()
        graph.install(base)
        populate_hospital(base, HospitalConfig(patients=3))
        engine = base
        if crash_at is not None:
            engine = FaultInjectingEngine(
                base, FaultPlan(seed=0).crash_at("mutation", at=crash_at)
            )
        session = Penguin(
            graph,
            engine=engine,
            install=False,
            journal=MemoryJournal(),
            audit=MemoryAuditLog(),
        )
        session.register_object(patient_chart_object(graph))
        return session

    def test_crash_mid_translation_audited_and_excluded(self):
        session = self.hospital_session(crash_at=2)
        pid = sorted(row[0] for row in session.engine.scan("PATIENT"))[0]
        with pytest.raises(SimulatedCrash):
            session.delete("patient_chart", (pid,))
        assert session.audit.record(1).outcome == CRASHED
        session.recover()  # reverts the torn translation
        # The interrupted delete had no journal entry yet, so it stays
        # crashed — and stays out of the replay.
        session.delete("patient_chart", (pid,))  # now succeeds
        records = session.audit.records()
        assert [r.outcome for r in records] == [CRASHED, COMMITTED]
        report = session.replay_audit()
        assert report.ok, report.summary()
        assert report.replayed == [2]
        assert report.skipped == [(1, CRASHED)]

    def test_mixed_chaos_workload_replays_clean(self):
        session = self.hospital_session()
        pids = sorted(row[0] for row in session.engine.scan("PATIENT"))
        session.delete("patient_chart", (pids[0],))
        duplicate = {
            "patient_id": pids[1],  # key collision at apply time
            "name": "Duplicate",
            "birth_year": 1970,
            "ward_name": None,
            "VISIT": [],
        }
        with pytest.raises(UpdateError):
            session.insert("patient_chart", duplicate)
        session.delete("patient_chart", (pids[1],))
        outcomes = [r.outcome for r in session.audit.records()]
        assert outcomes == [COMMITTED, ROLLED_BACK, COMMITTED]
        report = session.replay_audit()
        assert report.ok, report.summary()
        assert report.replayed == [1, 3]
