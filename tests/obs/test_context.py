"""Trace-context propagation: ids, traceparent, threads, asyncio."""

import asyncio
import threading

import pytest

import repro.obs as obs
from repro.obs.context import (
    TraceContext,
    activate,
    attach,
    current_context,
    current_request_id,
    current_trace_id,
    format_traceparent,
    new_request_id,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)


class TestIds:
    def test_widths_and_uniqueness(self):
        trace_ids = {new_trace_id() for _ in range(200)}
        span_ids = {new_span_id() for _ in range(200)}
        assert len(trace_ids) == 200
        assert len(span_ids) == 200
        assert all(len(t) == 32 for t in trace_ids)
        assert all(len(s) == 16 for s in span_ids)
        hexdigits = set("0123456789abcdef")
        assert all(set(t) <= hexdigits for t in trace_ids)

    def test_request_id_prefix(self):
        assert new_request_id().startswith("req-")


class TestTraceContext:
    def test_new_carries_request_id(self):
        ctx = TraceContext.new("req-42")
        assert ctx.request_id == "req-42"
        assert len(ctx.trace_id) == 32

    def test_child_keeps_trace_and_baggage(self):
        ctx = TraceContext.new("req-7")
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        assert child.request_id == "req-7"

    def test_dict_round_trip(self):
        ctx = TraceContext("a" * 32, "b" * 16, {"request_id": "req-1"})
        assert TraceContext.from_dict(ctx.as_dict()) == ctx


class TestTraceparent:
    def test_round_trip(self):
        ctx = TraceContext("ab" * 16, "cd" * 8)
        parsed = parse_traceparent(format_traceparent(ctx))
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-0123456789abcdef-01",
            "00-" + "g" * 32 + "-0123456789abcdef-01",  # non-hex
            "00-" + "0" * 32 + "-0123456789abcdef-01",  # all-zero trace
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span
            "ff-" + "a" * 32 + "-0123456789abcdef-01",  # invalid version
            "00-" + "a" * 32 + "-0123456789abcdef",  # missing flags
        ],
    )
    def test_malformed_is_none(self, header):
        assert parse_traceparent(header) is None

    def test_unknown_version_parses_leniently(self):
        parsed = parse_traceparent("42-" + "a" * 32 + "-" + "b" * 16 + "-00")
        assert parsed is not None
        assert parsed.trace_id == "a" * 32


class TestAmbientContext:
    def test_default_is_none(self):
        assert current_context() is None
        assert current_trace_id() is None
        assert current_request_id() is None

    def test_attach_none_is_noop(self):
        with attach(None) as got:
            assert got is None
            assert current_context() is None

    def test_attach_restores_previous(self):
        outer = TraceContext.new("req-outer")
        inner = TraceContext.new("req-inner")
        with attach(outer):
            with attach(inner):
                assert current_request_id() == "req-inner"
            assert current_request_id() == "req-outer"
        assert current_context() is None

    def test_activate_mints_trace(self):
        with activate(request_id="req-9", tenant="t1") as ctx:
            assert current_trace_id() == ctx.trace_id
            assert ctx.baggage["tenant"] == "t1"
        assert current_context() is None

    def test_fresh_thread_sees_no_context(self):
        seen = {}
        with activate(request_id="req-main"):

            def probe():
                seen["ctx"] = current_context()

            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["ctx"] is None

    def test_explicit_cross_thread_handoff(self):
        seen = {}
        ctx = TraceContext.new("req-handoff")

        def work():
            with attach(ctx):
                seen["trace"] = current_trace_id()

        worker = threading.Thread(target=work)
        worker.start()
        worker.join()
        assert seen["trace"] == ctx.trace_id


class TestRootSpanStamping:
    def test_root_span_takes_ambient_trace(self):
        with obs.use() as hub:
            with activate(request_id="req-stamp") as ctx:
                with hub.tracer.span("outer"):
                    with hub.tracer.span("inner"):
                        pass
            (root,) = hub.tracer.take()
            assert root.trace_id == ctx.trace_id
            assert root.span_id
            # children inherit at assembly time, not per-span
            assert root.children[0].trace_id is None

    def test_untraced_root_has_no_trace_id(self):
        with obs.use() as hub:
            with hub.tracer.span("bare"):
                pass
            (root,) = hub.tracer.take()
            assert root.trace_id is None


class TestAsyncioOverlap:
    def test_two_overlapping_requests_keep_separate_stacks(self):
        """Regression: thread-local span stacks collapsed overlapping
        asyncio requests (same loop thread) into one interleaved tree.
        contextvars give each task an isolated stack copy."""

        async def scenario(hub):
            gate_a = asyncio.Event()
            gate_b = asyncio.Event()

            async def request(name, my_gate, other_gate):
                with activate(request_id=f"req-{name}") as ctx:
                    with hub.tracer.span(f"http.{name}") as span:
                        my_gate.set()
                        await other_gate.wait()
                        with hub.tracer.span(f"work.{name}"):
                            await asyncio.sleep(0)
                    return ctx.trace_id, span

            return await asyncio.gather(
                request("a", gate_a, gate_b),
                request("b", gate_b, gate_a),
            )

        with obs.use() as hub:
            results = asyncio.run(scenario(hub))
            roots = hub.tracer.take()
        assert len(roots) == 2
        by_name = {root.name: root for root in roots}
        assert set(by_name) == {"http.a", "http.b"}
        # each request's child nested under its own root, not the
        # other in-flight request's
        assert [c.name for c in by_name["http.a"].children] == ["work.a"]
        assert [c.name for c in by_name["http.b"].children] == ["work.b"]
        traces = {trace for trace, _ in results}
        assert len(traces) == 2
        assert {root.trace_id for root in roots} == traces
