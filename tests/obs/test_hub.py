"""Tests for the module-level observability hub and its accessors."""

import repro.obs as obs
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.trace import NOOP_TRACER


class TestDefaultState:
    def test_disabled_by_default(self):
        obs.disable()
        assert obs.tracer() is NOOP_TRACER
        assert obs.metrics() is NULL_REGISTRY
        assert obs.slow_log() is None
        assert not obs.active().is_enabled


class TestConfigure:
    def test_configure_installs_live_hub(self):
        hub = obs.configure()
        try:
            assert obs.active() is hub
            assert hub.is_enabled
            with obs.tracer().span("probe"):
                obs.metrics().counter("probes").inc()
            assert len(hub.tracer.roots()) == 1
            assert hub.metrics.counter("probes").value == 1.0
        finally:
            obs.disable()

    def test_disable_restores_noop(self):
        obs.configure()
        obs.disable()
        assert obs.tracer() is NOOP_TRACER

    def test_slow_threshold_wires_slow_log(self):
        hub = obs.configure(slow_threshold=0.0)
        try:
            with obs.tracer().span("watched"):
                pass
            assert [e.name for e in hub.slow_log.entries()] == ["watched"]
        finally:
            obs.disable()


class TestUse:
    def test_use_scopes_and_restores(self):
        obs.disable()
        with obs.use() as hub:
            assert obs.active() is hub
            obs.metrics().counter("scoped").inc()
        assert obs.tracer() is NOOP_TRACER
        assert hub.metrics.counter("scoped").value == 1.0

    def test_use_restores_after_exception(self):
        obs.disable()
        try:
            with obs.use():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert obs.tracer() is NOOP_TRACER

    def test_use_accepts_explicit_hub(self):
        hub = obs.Observability.enabled()
        with obs.use(hub) as active:
            assert active is hub

    def test_nested_use(self):
        with obs.use() as outer:
            with obs.use() as inner:
                assert obs.active() is inner
            assert obs.active() is outer
