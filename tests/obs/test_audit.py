"""AuditLog backends and the translator's recording discipline."""

import json

import pytest

from repro.errors import AuditError, UpdateError
from repro.obs.audit import (
    COMMITTED,
    CRASHED,
    ROLLED_BACK,
    AuditLog,
    FileAuditLog,
    MemoryAuditLog,
)
from repro.penguin import Penguin
from repro.relational.journal import (
    MemoryJournal,
    plan_images,
)
from repro.relational.operations import UpdatePlan
from repro.workloads.figures import course_info_object
from repro.workloads.university import populate_university, university_schema

pytestmark = pytest.mark.audit

COURSE_KEY = ("CS999",)


def new_course(course_id="CS999", title="View Objects"):
    return {
        "course_id": course_id,
        "title": title,
        "units": 3,
        "level": "graduate",
        "dept_name": "Computer Science",
        "DEPARTMENT": [],
        "CURRICULUM": [],
        "GRADES": [],
    }


def audited_session(audit=None, journal=None):
    audit = audit if audit is not None else MemoryAuditLog()
    session = Penguin(university_schema(), journal=journal, audit=audit)
    populate_university(session.engine)
    session.register_object(course_info_object(session.graph))
    return session


def sample_plan(session):
    """A real translated plan + images (without applying anything)."""
    plan = session.translator("course_info").preview_insert(
        session.engine, new_course()
    )
    return plan, plan_images(session.engine, plan)


class TestAuditLogCore:
    def test_append_assigns_monotonic_asns(self):
        log = MemoryAuditLog()
        session = audited_session(audit=MemoryAuditLog())
        plan, images = sample_plan(session)
        first = log.append(
            "insert", "course_info", COMMITTED, plan=plan, images=images,
            island=("COURSES",), policy={"q": True}, user="keller",
        )
        second = log.append("delete", "course_info", COMMITTED)
        assert (first, second) == (1, 2)
        assert log.head_asn() == 2
        assert len(log) == 2
        record = log.record(1)
        assert record.op == "insert"
        assert record.island == ("COURSES",)
        assert record.user == "keller"
        assert record.policy == {"q": True}
        # The stored plan and images decode back to what went in.
        assert [op.describe() for op in record.plan()] == [
            op.describe() for op in plan
        ]
        assert record.images() == images

    def test_unknown_asn_and_outcome_raise(self):
        log = MemoryAuditLog()
        with pytest.raises(AuditError):
            log.record(7)
        with pytest.raises(AuditError):
            log.append("insert", "x", "exploded")
        log.append("insert", "x", COMMITTED)
        with pytest.raises(AuditError):
            log.resolve(1, "exploded")
        with pytest.raises(AuditError):
            log.resolve(99, ROLLED_BACK)

    def test_resolve_rewrites_outcome_and_bumps_version(self):
        log = MemoryAuditLog()
        asn = log.append("insert", "x", CRASHED)
        version = log.version
        log.resolve(asn, COMMITTED)
        assert log.record(asn).outcome == COMMITTED
        assert log.version == version + 1
        assert log.committed()[0].asn == asn

    def test_tail_returns_newest_records(self):
        log = MemoryAuditLog()
        for i in range(15):
            log.append("insert", f"o{i}", COMMITTED)
        assert [r.asn for r in log.tail(3)] == [13, 14, 15]

    def test_reconcile_folds_journal_verdicts(self):
        session = audited_session()
        plan, images = sample_plan(session)
        journal = MemoryJournal()
        committed_id = journal.begin(plan, images)
        journal.mark_committed(committed_id)
        aborted_id = journal.begin(plan, images)
        journal.mark_aborted(aborted_id)

        log = MemoryAuditLog()
        log.append(
            "insert", "course_info", CRASHED, journal_entry=committed_id
        )
        log.append(
            "insert", "course_info", CRASHED, journal_entry=aborted_id
        )
        log.append("insert", "course_info", CRASHED)  # no journal entry
        assert log.reconcile(journal) == 2
        assert log.record(1).outcome == COMMITTED
        assert log.record(2).outcome == ROLLED_BACK
        assert log.record(2).error == "reverted by recovery"
        assert log.record(3).outcome == CRASHED  # nothing to settle against
        assert log.reconcile(journal) == 0  # idempotent


class TestFileAuditLog:
    def test_reopen_reloads_records_and_resolutions(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = FileAuditLog(path)
        session = audited_session()
        plan, images = sample_plan(session)
        log.append(
            "insert", "course_info", CRASHED, plan=plan, images=images,
            island=("COURSES",), user="keller", journal_entry=4,
        )
        log.append("delete", "course_info", COMMITTED, items=3)
        log.resolve(1, COMMITTED)
        log.close()

        reopened = FileAuditLog(path)
        assert len(reopened) == 2
        assert reopened.head_asn() == 2
        first, second = reopened.records()
        assert first.outcome == COMMITTED  # the resolution marker folded
        assert first.journal_entry == 4
        assert first.images() == images
        assert second.items == 3
        # Appends continue from the reloaded ASN watermark.
        assert reopened.append("insert", "course_info", COMMITTED) == 3
        reopened.close()

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = FileAuditLog(path)
        log.append("insert", "course_info", COMMITTED)
        log.append("delete", "course_info", COMMITTED)
        log.close()
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"event":"record","asn":3,"op"')

        reopened = FileAuditLog(path)
        assert len(reopened) == 2  # the torn line is gone
        reopened.append("replace", "course_info", COMMITTED)
        reopened.close()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert [entry["asn"] for entry in lines] == [1, 2, 3]

    def test_corruption_before_the_tail_raises(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = FileAuditLog(path)
        log.append("insert", "course_info", COMMITTED)
        log.append("delete", "course_info", COMMITTED)
        log.close()
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-5]  # damage a non-final record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(AuditError, match="corrupt audit record"):
            FileAuditLog(path)

    def test_resolution_for_unknown_record_raises(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        path.write_text('{"event":"resolve","asn":9,"outcome":"committed"}\n')
        with pytest.raises(AuditError, match="unknown"):
            FileAuditLog(path)
        path.write_text('{"event":"gibberish"}\n')
        with pytest.raises(AuditError, match="unknown audit event"):
            FileAuditLog(path)


class TestTranslatorRecording:
    def test_single_updates_audited_with_full_context(self):
        session = audited_session()
        log = session.audit
        session.insert("course_info", new_course())
        session.replace(
            "course_info", COURSE_KEY, new_course(title="Replaced")
        )
        session.delete("course_info", COURSE_KEY)
        assert len(log) == 3
        ops = [(r.op, r.outcome) for r in log.records()]
        assert ops == [
            ("insert", COMMITTED),
            ("replace", COMMITTED),
            ("delete", COMMITTED),
        ]
        for record in log.records():
            assert record.object_name == "course_info"
            assert record.plan_records, "plan must be captured"
            assert record.image_records, "images must be captured"
            assert "COURSES" in record.island
            assert isinstance(record.policy, dict) and record.policy

    def test_previews_and_explains_are_not_audited(self):
        from repro.core.updates.operations import CompleteInsertion

        session = audited_session()
        translator = session.translator("course_info")
        translator.preview_insert(session.engine, new_course())
        session.explain_update("course_info", CompleteInsertion(new_course()))
        session.query("course_info")
        session.get("course_info", ("M100",))
        assert len(session.audit) == 0

    def test_failed_translation_audited_as_rolled_back(self):
        session = audited_session()
        session.insert("course_info", new_course())
        with pytest.raises(UpdateError):
            session.insert("course_info", new_course())  # duplicate key
        records = session.audit.records()
        assert [r.outcome for r in records] == [COMMITTED, ROLLED_BACK]
        assert records[-1].error
        # The rollback left no trace in the database, and the audit
        # trail still replays to the live state.
        assert session.replay_audit().ok

    def test_batch_audited_as_one_record_with_items(self):
        session = audited_session()
        batch = [new_course(f"CS90{i}") for i in range(4)]
        session.insert_many("course_info", batch)
        assert len(session.audit) == 1
        record = session.audit.record(1)
        assert record.items == 4
        assert record.outcome == COMMITTED
        assert len(record.plan_records) == 4

    def test_query_driven_updates_audited_once(self):
        session = audited_session()
        for i in range(3):
            session.insert("course_info", new_course(f"CS90{i}"))
        session.delete_where("course_info", "title = 'View Objects'")
        records = session.audit.records()
        assert records[-1].op == "delete_where"
        assert records[-1].items == 3
        assert records[-1].outcome == COMMITTED
        # inner per-instance deletes ran inside the transaction and
        # must not produce their own records
        assert len(records) == 4

    def test_journaled_path_links_audit_to_journal_entry(self):
        journal = MemoryJournal()
        session = audited_session(journal=journal)
        session.insert("course_info", new_course())
        record = session.audit.record(1)
        assert record.outcome == COMMITTED
        assert record.journal_entry is not None
        entry_ids = {entry.entry_id for entry in journal.entries()}
        assert record.journal_entry in entry_ids

    def test_for_user_attribution_lands_in_records(self):
        session = audited_session()
        translator = session.translator("course_info").for_user("keller")
        plan = UpdatePlan()  # reuse the session's engine directly
        del plan
        translator.insert(session.engine, new_course())
        assert session.audit.record(1).user == "keller"


class TestMaintenanceAttribution:
    def test_sync_attributed_to_triggering_asn(self):
        session = audited_session()
        view = session.materialize("course_info")
        session.query("course_info")  # initial fill, head ASN 0
        session.insert("course_info", new_course())
        session.query("course_info")  # sync absorbs the insert's records
        maintainer = view.maintainer
        head = session.audit.head_asn()
        assert head == 1
        assert maintainer.last_attributed_asn == head
        assert maintainer.attributions[head] >= 1

    def test_unaudited_view_keeps_no_attributions(self):
        session = Penguin(university_schema())
        populate_university(session.engine)
        session.register_object(course_info_object(session.graph))
        view = session.materialize("course_info")
        session.insert("course_info", new_course())
        session.query("course_info")
        assert view.maintainer.attributions == {}
        assert view.maintainer.last_attributed_asn == 0


def test_base_class_append_payload_is_noop():
    log = AuditLog()
    log.append("insert", "x", COMMITTED)
    log.close()
    assert log.head_asn() == 1
