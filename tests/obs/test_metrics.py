"""Unit tests for the metrics registry and its three instrument kinds."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0.0

    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7.0


class TestHistogram:
    def test_count_equals_observations(self):
        histogram = Histogram("h", buckets=(1, 10, 100))
        for value in (0.5, 5, 50, 500):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 555.5

    def test_overflow_lands_in_inf_bucket(self):
        histogram = Histogram("h", buckets=(1,))
        histogram.observe(99)
        assert histogram.bucket_counts() == {"le=1": 0, "le=+Inf": 1}

    def test_bucket_bounds_are_sorted(self):
        histogram = Histogram("h", buckets=(100, 1, 10))
        assert histogram.buckets == (1.0, 10.0, 100.0)

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_bucket_count_sum_equals_count(self):
        histogram = Histogram("h", buckets=DEFAULT_BUCKETS)
        for value in range(40):
            histogram.observe(value * 31 % 700)
        assert sum(histogram.bucket_counts().values()) == histogram.count


class TestRegistry:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc()
        assert registry.counter("hits").value == 2.0

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        registry.counter("ops", op="insert").inc()
        registry.counter("ops", op="delete").inc(2)
        assert registry.counter("ops", op="insert").value == 1.0
        assert registry.counter("ops", op="delete").value == 2.0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("x", a="1", b="2").inc()
        assert registry.counter("x", b="2", a="1").value == 1.0

    def test_counter_total_sums_family(self):
        registry = MetricsRegistry()
        registry.counter("ops", op="insert").inc(3)
        registry.counter("ops", op="delete").inc(4)
        registry.counter("other").inc(100)
        assert registry.counter_total("ops") == 7.0

    def test_histogram_total_count(self):
        registry = MetricsRegistry()
        registry.histogram("sizes", op="a").observe(1)
        registry.histogram("sizes", op="b").observe(2)
        assert registry.histogram_total_count("sizes") == 2

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.gauge("state").set(1)
        registry.histogram("sizes").observe(3)
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == 1.0
        assert snap["gauges"]["state"] == 1.0
        assert snap["histograms"]["sizes"]["count"] == 1

    def test_render_text_mentions_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("hits", object="omega").inc()
        registry.gauge("breaker_state").set(1)
        registry.histogram("sizes").observe(3)
        text = registry.render_text()
        assert 'hits{object="omega"} 1' in text
        assert "# TYPE breaker_state gauge" in text
        assert "sizes_count 1" in text
        assert 'sizes_bucket{le="+Inf"}' in text

    def test_render_text_escapes_hostile_label_values(self):
        """Prometheus exposition: ``\\``, ``"``, and newlines in label
        values must be escaped, never emitted raw (a raw newline would
        split the sample line; a raw quote would end the value early).
        """
        registry = MetricsRegistry()
        hostile = 'a"b\\c\nd'
        registry.counter("hits", object=hostile).inc()
        registry.histogram("sizes", object=hostile).observe(3)
        text = registry.render_text()
        escaped = 'a\\"b\\\\c\\nd'
        assert f'hits{{object="{escaped}"}} 1' in text
        # Histogram lines re-assemble the label block around ``le``;
        # the escaping must survive that path too.
        assert f'sizes_bucket{{object="{escaped}",le="5"}} 1' in text
        assert f'sizes_count{{object="{escaped}"}} 1' in text
        # No raw newline leaked into any sample line.
        assert all(
            line.startswith(("# TYPE", "hits", "sizes"))
            for line in text.splitlines()
        )

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_thread_safety_of_counter(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(1000):
                registry.counter("contended").inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("contended").value == 8000.0


class TestNullRegistry:
    def test_absorbs_everything(self):
        NULL_REGISTRY.counter("x", op="y").inc()
        NULL_REGISTRY.gauge("x").set(5)
        NULL_REGISTRY.histogram("x").observe(3)
        assert NULL_REGISTRY.snapshot()["counters"] == {}
        assert NULL_REGISTRY.counter("x").value == 0.0
