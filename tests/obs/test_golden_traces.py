"""Golden-trace regression tests for the canonical Figure-4 workload.

The committed fixtures under ``tests/obs/golden/`` pin the *shape* of
the observability output: the normalized span trees for a canonical
insert and delete, and the EXPLAIN text for the insert.  Durations are
stripped (``Span.normalized``), so the fixtures are byte-stable.

To regenerate after an intentional change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_golden_traces.py

then review the fixture diff like any other code change.
"""

import os
from pathlib import Path

import pytest

import repro.obs as obs
from repro.core.updates.operations import CompleteDeletion, CompleteInsertion
from repro.core.updates.translator import Translator
from tests.core.updates.test_insertion import existing_student, new_course

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = bool(os.environ.get("REGEN_GOLDEN"))


def check_golden(name, actual):
    path = GOLDEN_DIR / name
    if REGEN:
        path.write_text(actual + "\n")
        pytest.skip(f"regenerated {name}")
    expected = path.read_text().rstrip("\n")
    assert actual == expected, (
        f"{name} drifted from the committed fixture; if the change is "
        f"intentional, regenerate with REGEN_GOLDEN=1"
    )


@pytest.fixture
def traced(omega, university_engine):
    translator = Translator(omega, verify_integrity=True)
    with obs.use() as hub:
        yield translator, university_engine, hub


def take_normalized(hub):
    (root,) = hub.tracer.take()
    return root.normalized()


class TestGoldenTraces:
    def test_insert_span_tree(self, traced):
        translator, engine, hub = traced
        course = new_course(engine, student=existing_student(engine))
        hub.tracer.clear()
        translator.insert(engine, course)
        check_golden("figure4_insert_trace.txt", take_normalized(hub))

    def test_delete_span_tree(self, traced):
        translator, engine, hub = traced
        course = new_course(engine, student=existing_student(engine))
        translator.insert(engine, course)
        instance = translator.instantiate(engine, ("CS999",))
        hub.tracer.clear()
        translator.delete(engine, instance)
        check_golden("figure4_delete_trace.txt", take_normalized(hub))

    def test_insert_explain_text(self, traced):
        translator, engine, hub = traced
        course = new_course(engine, student=existing_student(engine))
        explanation = translator.explain(engine, CompleteInsertion(course))
        check_golden("figure4_insert_explain.txt", explanation.render())

    def test_delete_explain_text(self, traced):
        translator, engine, hub = traced
        course = new_course(engine, student=existing_student(engine))
        translator.insert(engine, course)
        instance = translator.instantiate(engine, ("CS999",))
        explanation = translator.explain(engine, CompleteDeletion(instance))
        check_golden("figure4_delete_explain.txt", explanation.render())
