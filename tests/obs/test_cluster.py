"""Cluster observability: merged metrics, quantiles, SLOs, assembly,
and the flight recorder."""

import json

import pytest

import repro.obs as obs
from repro.obs.cluster import (
    ClusterMetrics,
    FlightRecorder,
    SloTarget,
    SloTracker,
    TraceAssembler,
    histogram_quantile,
)
from repro.obs.context import TraceContext, activate, attach


class TestClusterMetrics:
    def test_component_series_gain_label(self):
        with obs.use() as hub:
            hub.metrics.counter("writes_total").inc(3)
            obs.component_metrics("shard0").counter("writes_total").inc(2)
            obs.component_metrics("shard1").counter("writes_total").inc(5)
            cluster = ClusterMetrics(hub)
            assert cluster.components() == ["shard0", "shard1"]
            assert cluster.counter_total("writes_total") == 10
            text = cluster.render_text()
            assert 'writes_total{component="shard0"} 2' in text
            assert "# TYPE writes_total counter" in text
            # the global series passes through unlabeled
            assert "\nwrites_total 3" in text

    def test_component_filter(self):
        with obs.use() as hub:
            hub.metrics.counter("ops_total").inc()
            obs.component_metrics("shard0").counter("ops_total").inc(7)
            cluster = ClusterMetrics(hub)
            assert cluster.counter_total("ops_total", "shard0") == 7
            snap = cluster.snapshot("shard0")
            assert list(snap["counters"]) == ['ops_total{component="shard0"}']

    def test_merged_histogram_adds_buckets(self):
        with obs.use():
            obs.component_metrics("a").histogram("lat_ms").observe(4)
            obs.component_metrics("b").histogram("lat_ms").observe(4)
            obs.component_metrics("b").histogram("lat_ms").observe(700)
            merged = ClusterMetrics().merged_histogram("lat_ms")
            assert merged["count"] == 3
            assert merged["buckets"]["le=5"] == 2

    def test_label_values_across_components(self):
        with obs.use():
            obs.component_metrics("shard0").counter(
                "serve_reads_total", shard="0"
            ).inc()
            obs.component_metrics("shard1").counter(
                "serve_reads_total", shard="1"
            ).inc()
            cluster = ClusterMetrics()
            assert cluster.label_values("serve_reads_total", "shard") == [
                "0",
                "1",
            ]


class TestHistogramQuantile:
    def histogram(self):
        return {
            "count": 100,
            "sum": 0.0,
            "bounds": (1.0, 10.0, 100.0),
            "buckets": {"le=1": 50, "le=10": 40, "le=100": 10, "le=+Inf": 0},
        }

    def test_interpolates_within_bucket(self):
        # rank 50 lands exactly at the first bucket's upper bound
        assert histogram_quantile(self.histogram(), 0.5) == pytest.approx(1.0)
        # p90: rank 90 is 40/40 of the (1, 10] bucket
        assert histogram_quantile(self.histogram(), 0.9) == pytest.approx(10.0)

    def test_inf_bucket_clamps(self):
        data = {
            "count": 10,
            "sum": 0.0,
            "bounds": (1.0, 10.0),
            "buckets": {"le=1": 0, "le=10": 0, "le=+Inf": 10},
        }
        assert histogram_quantile(data, 0.99) == 10.0

    def test_empty_is_none(self):
        data = {"count": 0, "sum": 0.0, "bounds": (1.0,), "buckets": {}}
        assert histogram_quantile(data, 0.5) is None

    def test_live_histogram(self):
        with obs.use() as hub:
            histogram = hub.metrics.histogram("q_ms")
            for value in (3, 3, 3, 900):
                histogram.observe(value)
            assert histogram_quantile(histogram, 0.5) <= 5

    def test_bad_quantile_raises(self):
        with pytest.raises(ValueError):
            histogram_quantile(self.histogram(), 1.5)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class TestSloTracker:
    def availability_target(self):
        return SloTarget.availability(
            "availability", "http_requests_total", objective=0.9
        )

    def test_attainment_and_burn(self):
        clock = FakeClock()
        with obs.use() as hub:
            tracker = SloTracker(
                [self.availability_target()],
                fast_window=60.0,
                slow_window=3600.0,
                clock=clock,
            )
            hub.metrics.counter("http_requests_total", status="200").inc(90)
            hub.metrics.counter("http_requests_total", status="500").inc(10)
            tracker.sample(hub=hub)
            clock.now += 30
            hub.metrics.counter("http_requests_total", status="200").inc(90)
            hub.metrics.counter("http_requests_total", status="500").inc(10)
            report = tracker.sample(hub=hub)
            entry = report["availability"]
            assert entry["attainment"] == pytest.approx(0.9)
            # 10% errors against a 10% budget: burn rate 1.0
            assert entry["burn"]["fast"] == pytest.approx(1.0)
            assert not entry["fast_burn"]
            gauges = hub.metrics.snapshot()["gauges"]
            assert 'slo_attainment{slo="availability"}' in gauges

    def test_fast_burn_fires_anomaly_once(self):
        clock = FakeClock()
        with obs.use() as hub:
            tracker = SloTracker(
                [self.availability_target()],
                fast_window=60.0,
                fast_burn_threshold=5.0,
                clock=clock,
            )
            tracker.sample(hub=hub)
            for _ in range(3):
                clock.now += 10
                hub.metrics.counter(
                    "http_requests_total", status="500"
                ).inc(50)
                tracker.sample(hub=hub)
            counters = hub.metrics.snapshot()["counters"]
            # transition-edge only: one anomaly despite three burning polls
            assert counters.get('anomalies_total{kind="slo_fast_burn"}') == 1

    def test_too_few_events_is_quiet(self):
        clock = FakeClock()
        with obs.use() as hub:
            tracker = SloTracker(
                [self.availability_target()], clock=clock
            )
            tracker.sample(hub=hub)
            clock.now += 10
            hub.metrics.counter("http_requests_total", status="500").inc(3)
            report = tracker.sample(hub=hub)
            assert report["availability"]["burn"]["fast"] is None
            assert not report["availability"]["fast_burn"]

    def test_latency_target_estimates_quantile(self):
        clock = FakeClock()
        with obs.use() as hub:
            target = SloTarget.latency(
                "write_latency", "req_ms", threshold_ms=50.0, objective=0.9
            )
            tracker = SloTracker([target], clock=clock)
            histogram = hub.metrics.histogram("req_ms")
            for _ in range(19):
                histogram.observe(4)
            histogram.observe(900)
            report = tracker.sample(hub=hub)
            entry = report["write_latency"]
            assert entry["attainment"] == pytest.approx(0.95)
            assert entry["threshold_ms"] == 50.0
            assert entry["p95_ms"] <= 260


class TestTraceAssembler:
    def test_fragments_group_by_trace(self):
        with obs.use() as hub:
            ctx = TraceContext.new("req-asm")
            with attach(ctx):
                with hub.tracer.span("http.request", request_id="req-asm"):
                    pass
            with attach(ctx):
                with hub.tracer.span("replica.apply", replica="r1"):
                    pass
            with activate(request_id="req-other"):
                with hub.tracer.span("http.request", request_id="req-other"):
                    pass
            assembler = TraceAssembler(hub.tracer)
            assert len(assembler.traces()) == 2
            assembled = assembler.assemble(request_id="req-asm")
            assert assembled.trace_id == ctx.trace_id
            assert len(assembled.fragments) == 2
            assert assembled.span_names() == ["http.request", "replica.apply"]
            assert assembled.request_id == "req-asm"

    def test_render_names_causal_parent(self):
        with obs.use() as hub:
            ctx = TraceContext.new("req-render")
            with attach(ctx):
                with hub.tracer.span("http.request", request_id="req-render"):
                    pass
            assembler = TraceAssembler(hub.tracer)
            text = assembler.assemble(request_id="req-render").render()
            assert text.startswith(f"trace {ctx.trace_id}")
            # the fragment names the context's span as its cause
            assert f"caused_by={ctx.span_id}" in text

    def test_assemble_unknown_is_none(self):
        with obs.use() as hub:
            assembler = TraceAssembler(hub.tracer)
            assert assembler.assemble(request_id="req-missing") is None
            with pytest.raises(ValueError):
                assembler.assemble()


class TestFlightRecorder:
    def test_trigger_writes_bundle(self, tmp_path):
        with obs.use() as hub:
            with activate(request_id="req-flight"):
                with hub.tracer.span("http.request", request_id="req-flight"):
                    pass
            hub.metrics.counter("writes_total").inc(4)
            recorder = FlightRecorder(str(tmp_path))
            recorder.add_source("notes", lambda: [{"k": "v"}])
            path = recorder.trigger("failover", {"shard": 0}, hub=hub)
            records = FlightRecorder.load(path)
            assert records[0]["anomaly"] == "failover"
            assert records[0]["detail"] == {"shard": 0}
            sections = {r.get("section") for r in records[1:]}
            assert {"spans", "metrics", "notes"} <= sections
            text = FlightRecorder.inspect(path)
            assert "anomaly: failover" in text
            assert "http.request" in text

    def test_rate_limit_per_kind(self, tmp_path):
        with obs.use() as hub:
            recorder = FlightRecorder(str(tmp_path), min_interval=3600.0)
            first = recorder.trigger("breaker_open", hub=hub)
            second = recorder.trigger("breaker_open", hub=hub)
            other = recorder.trigger("failover", hub=hub)
            assert first is not None
            assert second is None  # suppressed
            assert other is not None  # different kind, own budget
            assert recorder.suppressed == 1

    def test_anomaly_wiring_through_hub(self, tmp_path):
        with obs.use() as hub:
            recorder = FlightRecorder(str(tmp_path)).install(hub)
            obs.anomaly("quorum_revert", shard=1)
            assert recorder.latest() is not None
            counters = hub.metrics.snapshot()["counters"]
            assert (
                counters['anomalies_total{kind="quorum_revert"}'] == 1
            )
            assert (
                counters['flight_bundles_total{kind="quorum_revert"}'] == 1
            )

    def test_audit_source_tail(self, tmp_path):
        from repro.obs.audit import MemoryAuditLog

        with obs.use() as hub:
            log = MemoryAuditLog()
            with activate(request_id="req-audit"):
                log.append(
                    op="insert",
                    object_name="patient_chart",
                    outcome="committed",
                )
            recorder = FlightRecorder(str(tmp_path))
            recorder.add_audit_source("audit/shard0", log)
            path = recorder.trigger("torn_recovery", hub=hub)
            records = FlightRecorder.load(path)
            (section,) = [
                r for r in records if r.get("section") == "audit/shard0"
            ]
            assert section["data"][0]["op"] == "insert"
            assert section["data"][0]["trace"]  # audit -> trace link
            text = FlightRecorder.inspect(path)
            assert "patient_chart.insert committed" in text

    def test_dying_source_does_not_kill_dump(self, tmp_path):
        with obs.use() as hub:
            recorder = FlightRecorder(str(tmp_path))

            def boom():
                raise RuntimeError("stack is gone")

            recorder.add_source("sick", boom)
            path = recorder.trigger("failover", hub=hub)
            (section,) = [
                r
                for r in FlightRecorder.load(path)
                if r.get("section") == "sick"
            ]
            assert "RuntimeError" in section["data"]["error"]

    def test_bundle_is_valid_jsonl(self, tmp_path):
        with obs.use() as hub:
            recorder = FlightRecorder(str(tmp_path))
            path = recorder.trigger("failover", hub=hub)
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)
