"""Per-tuple provenance: chains, image history, and key re-homing."""

import pytest

from repro.errors import UpdateError
from repro.obs.audit import MemoryAuditLog
from repro.obs.lineage import LineageIndex
from repro.penguin import Penguin
from repro.workloads.figures import course_info_object
from repro.workloads.university import populate_university, university_schema

pytestmark = pytest.mark.audit


def new_course(course_id="CS999", title="View Objects"):
    return {
        "course_id": course_id,
        "title": title,
        "units": 3,
        "level": "graduate",
        "dept_name": "Computer Science",
        "DEPARTMENT": [],
        "CURRICULUM": [],
        "GRADES": [],
    }


@pytest.fixture
def session():
    session = Penguin(university_schema(), audit=MemoryAuditLog())
    populate_university(session.engine)
    session.register_object(course_info_object(session.graph))
    return session


def test_why_terminates_in_the_originating_view_update(session):
    session.insert("course_info", new_course())
    session.replace("course_info", ("CS999",), new_course(title="Revised"))
    chain = session.why("COURSES", ("CS999",))
    assert [link.asn for link in chain] == [1, 2]
    origin = chain[0]
    assert origin.record.op == "insert"
    assert origin.before is None  # came from nothing: the true origin
    assert origin.after is not None
    assert chain[-1].after[1] == "Revised"
    # Every tuple the workload wrote has a non-empty chain.
    lineage = session.lineage()
    for cell in lineage.cells():
        links = lineage.why(*cell)
        assert links
        assert links[0].record.outcome == "committed"


def test_history_is_the_exact_cell_image_sequence(session):
    session.insert("course_info", new_course())
    session.replace("course_info", ("CS999",), new_course(title="Revised"))
    session.delete("course_info", ("CS999",))
    links = session.tuple_history("COURSES", ("CS999",))
    assert [link.asn for link in links] == [1, 2, 3]
    assert links[0].before is None
    assert links[-1].after is None  # ends in deletion
    # Consecutive images agree: each after is the next link's before.
    for previous, following in zip(links, links[1:]):
        assert previous.after == following.before


def test_why_follows_key_rehoming(session):
    session.insert("course_info", new_course("CS999"))
    session.replace(
        "course_info", ("CS999",), new_course("CS998", title="Rehomed")
    )
    # The tuple now lives under a different key; its provenance must
    # still reach the original insert through the key-changing replace.
    chain = session.why("COURSES", ("CS998",))
    assert [link.asn for link in chain] == [1, 2]
    assert chain[0].record.op == "insert"
    assert chain[0].cell == ("COURSES", ("CS999",))
    assert chain[-1].cell == ("COURSES", ("CS998",))
    # history() stays cell-exact: only the re-homed key's own images.
    assert [link.asn for link in session.tuple_history("COURSES", ("CS998",))] == [2]


def test_rolled_back_updates_never_enter_chains(session):
    session.insert("course_info", new_course())
    with pytest.raises(UpdateError):
        session.insert("course_info", new_course())  # duplicate key
    assert len(session.audit) == 2  # the failure *is* audited
    chain = session.why("COURSES", ("CS999",))
    assert [link.asn for link in chain] == [1]


def test_unknown_cell_has_empty_chain(session):
    assert session.why("COURSES", ("NOPE",)) == []
    assert session.tuple_history("COURSES", ("NOPE",)) == []


def test_index_refreshes_as_the_log_grows(session):
    lineage = LineageIndex(session.audit)
    assert lineage.chain("COURSES", ("CS999",)) == []
    session.insert("course_info", new_course())
    assert lineage.chain("COURSES", ("CS999",)) == [1]
    session.delete("course_info", ("CS999",))
    assert lineage.chain("COURSES", ("CS999",)) == [1, 2]


def test_links_describe_renders_absent_images_as_empty_set(session):
    session.insert("course_info", new_course())
    session.delete("course_info", ("CS999",))
    first, last = session.tuple_history("COURSES", ("CS999",))
    assert "∅ ->" in first.describe()
    assert "-> ∅" in last.describe()
